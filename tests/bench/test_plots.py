"""Unit tests for .dat series export."""

from repro.bench.figures import FIGURES
from repro.bench.harness import AlgorithmRun
from repro.bench.plots import figure_dat, write_figure_dat


def runs_for(spec, axes=(2, 3)):
    out = []
    for algorithm in spec.algorithms:
        for axis in axes:
            out.append(
                AlgorithmRun(
                    workload="w",
                    algorithm=algorithm,
                    n_axes=axis,
                    n_facts=10,
                    simulated_seconds=0.5 * axis,
                    wall_seconds=0.01,
                    cells=3,
                    passes=1,
                )
            )
    return out


class TestFigureDat:
    def test_header_and_rows(self):
        spec = FIGURES["fig4"]
        text = figure_dat(spec, runs_for(spec))
        lines = text.strip().splitlines()
        assert lines[0].startswith("# fig4")
        assert lines[1] == "# axes " + " ".join(spec.algorithms)
        assert lines[2].startswith("2 ")
        assert len(lines) == 4

    def test_missing_points_are_nan(self):
        spec = FIGURES["fig4"]
        runs = [run for run in runs_for(spec) if run.algorithm != "TD"
                or run.n_axes != 3]
        text = figure_dat(spec, runs)
        assert "nan" in text

    def test_write_creates_file(self, tmp_path):
        spec = FIGURES["fig4"]
        path = write_figure_dat(str(tmp_path), spec, runs_for(spec))
        assert path.endswith("fig4.dat")
        content = open(path).read()
        assert content.startswith("# fig4")


class TestRunnerDatFlag:
    def test_runner_writes_dat(self, tmp_path, capsys):
        from repro.bench.runner import main

        code = main(
            [
                "--figure", "fig4", "--scale", "0.25", "--axes", "2",
                "--dat", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "fig4.dat").exists()
