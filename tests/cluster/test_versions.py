"""Version vectors: the consistency currency of the cluster."""

import pytest

from repro.cluster.versions import VersionVector
from repro.errors import ClusterError


class TestVersionVector:
    def test_zero(self):
        vector = VersionVector.zero(4)
        assert vector.versions == (0, 0, 0, 0)
        assert vector.n_shards == 4

    def test_zero_rejects_bad_shard_count(self):
        with pytest.raises(ClusterError):
            VersionVector.zero(0)

    def test_bump_is_persistent(self):
        vector = VersionVector.zero(3)
        bumped = vector.bump(1)
        assert bumped.versions == (0, 1, 0)
        assert vector.versions == (0, 0, 0)

    def test_indexing_and_iteration(self):
        vector = VersionVector((5, 7, 9))
        assert vector[1] == 7
        assert list(vector) == [5, 7, 9]

    def test_dominates(self):
        low = VersionVector((1, 2, 3))
        high = VersionVector((2, 2, 3))
        assert high.dominates(low)
        assert high.dominates(high)
        assert not low.dominates(high)

    def test_incomparable_vectors(self):
        left = VersionVector((1, 0))
        right = VersionVector((0, 1))
        assert not left.dominates(right)
        assert not right.dominates(left)

    def test_dominates_rejects_shard_count_mismatch(self):
        with pytest.raises(ClusterError):
            VersionVector.zero(2).dominates(VersionVector.zero(3))

    def test_str(self):
        assert str(VersionVector((0, 2, 1))) == "v[0,2,1]"

    def test_hashable_for_history_sets(self):
        assert VersionVector((1, 2)) in {VersionVector((1, 2))}
