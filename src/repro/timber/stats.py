"""I/O statistics, memory accounting and the deterministic cost model.

The paper reports cold-cache wall-clock seconds on a 2007 laptop; absolute
numbers are not reproducible, but the *shape* of every figure is driven by
two quantities that are: the number of page I/Os and the number of CPU
operations (comparisons, hash probes, counter updates).  The
:class:`CostModel` charges both and converts them into *simulated seconds*
with constants calibrated so that one random 8 KB page I/O costs about four
orders of magnitude more than one in-memory operation — the same regime as
the paper's disk-resident TIMBER installation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import MemoryBudgetExceeded


@dataclass
class IOStats:
    """Counters for the simulated storage layer."""

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "evictions": self.evictions,
        }

    @property
    def total_io(self) -> int:
        return self.page_reads + self.page_writes


@dataclass
class CostModel:
    """Deterministic cost accounting: CPU operations + page I/O.

    Attributes:
        cpu_op_cost: simulated seconds per elementary CPU operation.
        page_io_cost: simulated seconds per page read or write.
        cpu_ops: operations charged so far.
        io: the I/O statistics fed by the storage layer.
    """

    cpu_op_cost: float = 2e-7
    page_io_cost: float = 2e-3
    cpu_ops: int = 0
    io: IOStats = field(default_factory=IOStats)

    def charge_cpu(self, ops: int = 1) -> None:
        """Charge elementary CPU operations (comparisons, probes...)."""
        self.cpu_ops += ops

    def charge_read(self, pages: int = 1) -> None:
        self.io.page_reads += pages

    def charge_write(self, pages: int = 1) -> None:
        self.io.page_writes += pages

    def simulated_seconds(self) -> float:
        """Convert charged work into simulated wall-clock seconds."""
        return self.cpu_ops * self.cpu_op_cost + self.io.total_io * self.page_io_cost

    def reset(self) -> None:
        self.cpu_ops = 0
        self.io.reset()

    def snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {"cpu_ops": float(self.cpu_ops)}
        out.update({k: float(v) for k, v in self.io.snapshot().items()})
        out["simulated_seconds"] = self.simulated_seconds()
        return out


class MemoryBudget:
    """Tracks in-memory working-set size against a budget.

    The unit is an abstract *entry* (a counter cell, a fact row held in
    memory, a sort buffer slot); page-sized structures should convert via
    ``entries_per_page``.  When ``fail_on_overflow`` is set, exceeding the
    budget raises :class:`MemoryBudgetExceeded`; otherwise callers consult
    :meth:`would_overflow` and spill.
    """

    def __init__(
        self,
        capacity_entries: int,
        fail_on_overflow: bool = False,
        entries_per_page: int = 128,
    ) -> None:
        if capacity_entries <= 0:
            raise ValueError("memory budget must be positive")
        self.capacity_entries = capacity_entries
        self.fail_on_overflow = fail_on_overflow
        self.entries_per_page = entries_per_page
        self.used_entries = 0
        self.high_water = 0

    def acquire(self, entries: int) -> None:
        self.used_entries += entries
        self.high_water = max(self.high_water, self.used_entries)
        if self.fail_on_overflow and self.used_entries > self.capacity_entries:
            raise MemoryBudgetExceeded(
                f"memory budget exceeded: {self.used_entries} > "
                f"{self.capacity_entries} entries"
            )

    def release(self, entries: int) -> None:
        self.used_entries = max(0, self.used_entries - entries)

    def release_all(self) -> None:
        self.used_entries = 0

    def would_overflow(self, extra_entries: int) -> bool:
        return self.used_entries + extra_entries > self.capacity_entries

    @property
    def remaining(self) -> int:
        return max(0, self.capacity_entries - self.used_entries)

    def pages(self, entries: Optional[int] = None) -> int:
        """How many pages the given entry count occupies (ceil)."""
        count = self.used_entries if entries is None else entries
        return -(-count // self.entries_per_page)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryBudget {self.used_entries}/{self.capacity_entries} "
            f"high={self.high_water}>"
        )
