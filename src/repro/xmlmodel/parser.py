"""A hand-written recursive-descent parser for the XML subset we support.

Supported constructs: the XML declaration, elements with attributes
(single- or double-quoted), character data, the five predefined entities
plus decimal/hex character references, CDATA sections, comments, processing
instructions, and a DOCTYPE declaration (skipped; an internal subset is
tolerated and ignored by this parser — use :mod:`repro.schema.dtd_parser`
to parse DTDs).

Not supported (by design, like many warehouse loaders): namespaces beyond
treating ``ns:tag`` as an opaque name, external entities, and DTD-driven
entity expansion.

The parser is deliberately strict: mismatched tags, stray ``<``, duplicate
attributes and unterminated constructs raise :class:`XmlParseError` with a
line/column position.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import XmlParseError
from repro.xmlmodel.nodes import Document, Element

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Cursor:
    """Position tracker over the input text."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def line_col(self) -> Tuple[int, int]:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return line, column


class XmlParser:
    """Recursive-descent parser producing a :class:`Document`."""

    def __init__(self, text: str, name: str = "") -> None:
        self._cur = _Cursor(text)
        self._name = name

    # ------------------------------------------------------------------
    def parse(self) -> Document:
        """Parse the whole input and return a Document."""
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if not self._cur.eof():
            self._fail("trailing content after document element")
        return Document(root, name=self._name)

    # ------------------------------------------------------------------
    # error helper
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        line, column = self._cur.line_col()
        raise XmlParseError(message, line=line, column=column)

    # ------------------------------------------------------------------
    # prolog / misc
    # ------------------------------------------------------------------
    def _skip_whitespace(self) -> None:
        cur = self._cur
        while not cur.eof() and cur.peek() in " \t\r\n":
            cur.advance()

    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        if self._cur.startswith("<?xml"):
            end = self._cur.text.find("?>", self._cur.pos)
            if end < 0:
                self._fail("unterminated XML declaration")
            self._cur.pos = end + 2
        self._skip_misc()
        if self._cur.startswith("<!DOCTYPE"):
            self._skip_doctype()
        self._skip_misc()

    def _skip_misc(self) -> None:
        """Skip whitespace, comments and PIs between markup."""
        while True:
            self._skip_whitespace()
            if self._cur.startswith("<!--"):
                self._skip_comment()
            elif self._cur.startswith("<?"):
                self._skip_pi()
            else:
                return

    def _skip_comment(self) -> None:
        end = self._cur.text.find("-->", self._cur.pos + 4)
        if end < 0:
            self._fail("unterminated comment")
        self._cur.pos = end + 3

    def _skip_pi(self) -> None:
        end = self._cur.text.find("?>", self._cur.pos + 2)
        if end < 0:
            self._fail("unterminated processing instruction")
        self._cur.pos = end + 2

    def _skip_doctype(self) -> None:
        # Skip "<!DOCTYPE ... >" balancing an optional internal subset [...].
        cur = self._cur
        cur.advance(len("<!DOCTYPE"))
        depth = 0
        while not cur.eof():
            char = cur.peek()
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth < 0:
                    self._fail("unbalanced ']' in DOCTYPE")
            elif char == ">" and depth == 0:
                cur.advance()
                return
            cur.advance()
        self._fail("unterminated DOCTYPE declaration")

    # ------------------------------------------------------------------
    # names / attributes
    # ------------------------------------------------------------------
    def _parse_name(self) -> str:
        cur = self._cur
        if cur.eof() or not _is_name_start(cur.peek()):
            self._fail("expected a name")
        begin = cur.pos
        cur.advance()
        while not cur.eof() and _is_name_char(cur.peek()):
            cur.advance()
        return cur.text[begin : cur.pos]

    def _parse_attributes(self, tag: str) -> dict:
        attrs: dict = {}
        cur = self._cur
        while True:
            self._skip_whitespace()
            if cur.eof() or cur.peek() in "/>":
                return attrs
            name = self._parse_name()
            self._skip_whitespace()
            if cur.peek() != "=":
                self._fail(f"expected '=' after attribute {name!r} of <{tag}>")
            cur.advance()
            self._skip_whitespace()
            quote = cur.peek()
            if quote not in "\"'":
                self._fail(f"attribute {name!r} value must be quoted")
            cur.advance()
            end = cur.text.find(quote, cur.pos)
            if end < 0:
                self._fail(f"unterminated value for attribute {name!r}")
            raw = cur.text[cur.pos : end]
            cur.pos = end + 1
            if name in attrs:
                self._fail(f"duplicate attribute {name!r} on <{tag}>")
            attrs[name] = self._expand_entities(raw)

    # ------------------------------------------------------------------
    # entities
    # ------------------------------------------------------------------
    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out = []
        index = 0
        while index < len(raw):
            char = raw[index]
            if char != "&":
                out.append(char)
                index += 1
                continue
            semi = raw.find(";", index + 1)
            if semi < 0:
                self._fail("unterminated entity reference")
            entity = raw[index + 1 : semi]
            out.append(self._decode_entity(entity))
            index = semi + 1
        return "".join(out)

    def _decode_entity(self, entity: str) -> str:
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity]
        if entity.startswith("#x") or entity.startswith("#X"):
            try:
                return chr(int(entity[2:], 16))
            except ValueError:
                self._fail(f"bad character reference &{entity};")
        if entity.startswith("#"):
            try:
                return chr(int(entity[1:]))
            except ValueError:
                self._fail(f"bad character reference &{entity};")
        self._fail(f"unknown entity &{entity};")
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # elements / content
    # ------------------------------------------------------------------
    def _parse_element(self) -> Element:
        cur = self._cur
        if cur.peek() != "<":
            self._fail("expected '<' to open an element")
        cur.advance()
        tag = self._parse_name()
        attrs = self._parse_attributes(tag)
        element = Element(tag, attrs=attrs)
        self._skip_whitespace()
        if cur.startswith("/>"):
            cur.advance(2)
            return element
        if cur.peek() != ">":
            self._fail(f"malformed start tag <{tag}>")
        cur.advance()
        self._parse_content(element)
        return element

    def _parse_content(self, element: Element) -> None:
        cur = self._cur
        while True:
            if cur.eof():
                self._fail(f"unexpected end of input inside <{element.tag}>")
            if cur.startswith("</"):
                cur.advance(2)
                closing = self._parse_name()
                if closing != element.tag:
                    self._fail(
                        f"mismatched closing tag </{closing}> for <{element.tag}>"
                    )
                self._skip_whitespace()
                if cur.peek() != ">":
                    self._fail(f"malformed closing tag </{closing}>")
                cur.advance()
                return
            if cur.startswith("<!--"):
                self._skip_comment()
            elif cur.startswith("<![CDATA["):
                element.append_text(self._parse_cdata())
            elif cur.startswith("<?"):
                self._skip_pi()
            elif cur.peek() == "<":
                element.append(self._parse_element())
            else:
                element.append_text(self._parse_text())

    def _parse_cdata(self) -> str:
        cur = self._cur
        cur.advance(len("<![CDATA["))
        end = cur.text.find("]]>", cur.pos)
        if end < 0:
            self._fail("unterminated CDATA section")
        raw = cur.text[cur.pos : end]
        cur.pos = end + 3
        return raw

    def _parse_text(self) -> str:
        cur = self._cur
        begin = cur.pos
        while not cur.eof() and cur.peek() != "<":
            cur.advance()
        return self._expand_entities(cur.text[begin : cur.pos])


def parse(text: str, name: str = "") -> Document:
    """Parse an XML string into a :class:`Document`."""
    from repro.obs import current_tracer

    with current_tracer().span(
        "xml.parse", category="parse", doc=name, chars=len(text)
    ):
        return XmlParser(text, name=name).parse()


def parse_file(path: str, name: Optional[str] = None) -> Document:
    """Parse an XML file (UTF-8) into a :class:`Document`."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse(text, name=name if name is not None else path)
