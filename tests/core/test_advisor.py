"""Direct tests for the Sec. 4.6 advisor on derived table statistics."""

from repro.core.advisor import recommend_for_table
from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from tests.conftest import small_workload


def recommend(table, disjoint, covered, memory=4000):
    oracle = PropertyOracle.from_flags(table.lattice, disjoint, covered)
    return recommend_for_table(table, oracle, memory), oracle


class TestRecommendForTable:
    def test_small_cube_gets_columnar_counter(self):
        table = small_workload(n_facts=40, n_axes=3).fact_table()
        rec, _ = recommend(table, False, False, memory=100_000)
        # The single-pass counter strategy, in its vectorized columnar
        # implementation (same semantics, same cost regime, faster).
        assert rec.algorithm == "COLUMNAR"

    def test_dense_summarizable_gets_tdoptall(self):
        # 400 facts over a 4^3-value domain: the top cuboid has far
        # fewer cells than facts, i.e. a dense cube.
        table = small_workload(
            n_facts=400, n_axes=3, density="dense"
        ).fact_table()
        rec, _ = recommend(table, True, True, memory=100)
        assert rec.algorithm == "TDOPTALL"

    def test_sparse_disjoint_gets_bucopt(self):
        table = small_workload(
            n_facts=400, n_axes=5, density="sparse"
        ).fact_table()
        rec, _ = recommend(table, True, False, memory=200)
        assert rec.algorithm == "BUCOPT"

    def test_nothing_holds_gets_safe_buc(self):
        table = small_workload(
            n_facts=400, n_axes=5, density="sparse",
            coverage=False, disjoint=False,
        ).fact_table()
        rec, _ = recommend(table, False, False, memory=200)
        assert rec.algorithm == "BUC"

    def test_recommendation_is_always_runnable_and_correct_when_honest(self):
        """Whatever the advisor picks with a *truthful* oracle must
        reproduce NAIVE."""
        for coverage in (True, False):
            for disjoint in (True, False):
                table = small_workload(
                    n_facts=80, coverage=coverage, disjoint=disjoint,
                    seed=21,
                ).fact_table()
                oracle = PropertyOracle.from_data(table)
                rec = recommend_for_table(table, oracle, 4000)
                result = compute_cube(
                    table, rec.algorithm, oracle=oracle,
                    memory_entries=4000,
                )
                reference = compute_cube(table, "NAIVE")
                assert result.same_contents(reference), rec

    def test_rationales_cite_the_paper(self):
        table = small_workload(n_facts=40).fact_table()
        rec, _ = recommend(table, True, True, memory=100_000)
        assert "Sec" in rec.rationale or "Fig" in rec.rationale
