"""Integration tests: every concrete claim in the paper's narrative.

Each test quotes the paper's statement it verifies against Figure 1 and
Query 1.
"""

from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.datagen.publications import figure1_document, query1


def cube():
    table = extract_fact_table(figure1_document(), query1())
    return table, compute_cube(table, "NAIVE")


class TestSection1Motivation:
    def test_group_by_year_publisher_misses_third_publication(self):
        """'the group-by year, publisher will not contain the third
        publication'"""
        table, result = cube()
        cuboid = result.cuboid_by_description(
            "$n:LND, $p:rigid, $y:rigid"
        )
        total = sum(cuboid.values())
        assert total == 3.0  # pub1 once, pub2 twice; pub3 and pub4 absent

    def test_rollup_from_finer_misses_count(self):
        """'if we employ the result of this finer group-by to determine
        yearly count ... we will miss the count of the third
        publication'"""
        table, result = cube()
        finer = result.cuboid_by_description("$n:LND, $p:rigid, $y:rigid")
        coarser = result.cuboid_by_description("$n:LND, $p:LND, $y:rigid")
        rolled_2003 = sum(
            value for (publisher, year), value in finer.items()
            if year == "2003"
        )
        assert rolled_2003 == 1.0
        assert coarser[("2003",)] == 2.0  # the roll-up misses pub3

    def test_first_publication_in_two_author_groups(self):
        """'The first publication is a member of both the groups
        (John, p1, 2003) and (Jane, p1, 2003).'"""
        _, result = cube()
        top = result.cuboid_by_description(
            "$n:rigid, $p:rigid, $y:rigid"
        )
        assert top[("John", "p1", "2003")] == 1.0
        assert top[("Jane", "p1", "2003")] == 1.0

    def test_group_p1_2003_counts_one_but_rollup_says_two(self):
        """'the group (p1, 2003) contains only the first publication and
        its count should be one. However, the roll-up from the finer
        level groups mentioned each count as one; added up, the result
        is two, which is wrong.'"""
        _, result = cube()
        correct = result.cuboid_by_description(
            "$n:LND, $p:rigid, $y:rigid"
        )
        assert correct[("p1", "2003")] == 1.0
        finer = result.cuboid_by_description(
            "$n:rigid, $p:rigid, $y:rigid"
        )
        wrong_rollup = sum(
            value for (name, publisher, year), value in finer.items()
            if (publisher, year) == ("p1", "2003")
        )
        assert wrong_rollup == 2.0


class TestSection21Grouping:
    def test_simple_year_pattern_groups(self):
        """'we get three groups. The first, for year 2003, has the first
        and third publications ... The fourth publication did not match
        the specified tree pattern'"""
        _, result = cube()
        years = result.cuboid_by_description("$n:LND, $p:LND, $y:rigid")
        assert years == {
            ("2003",): 2.0, ("2004",): 1.0, ("2005",): 1.0,
        }


class TestSection22Relaxation:
    def test_pcad_makes_all_four_match_author(self):
        """'the relaxed pattern publication//author will match all four
        publications'"""
        table, result = cube()
        relaxed = result.cuboid_by_description(
            "$n:PC-AD, $p:LND, $y:LND"
        )
        assert sum(relaxed.values()) == 5.0  # pub1 twice (2 authors)
        assert set(relaxed) == {
            ("John",), ("Jane",), ("Smith",), ("Anna",),
        }


class TestFigure2MostRelaxed:
    def test_most_relaxed_point_covers_everything(self):
        """One evaluation of the most relaxed pattern covers the lattice:
        the bottom cuboid counts every publication."""
        _, result = cube()
        bottom = result.cuboid_by_description("$n:LND, $p:LND, $y:LND")
        assert bottom == {(): 4.0}

    def test_publisher_descendant_covers_pub4(self):
        """$p uses //publisher so pub4's pubData/publisher matches even
        rigidly."""
        _, result = cube()
        publishers = result.cuboid_by_description(
            "$n:LND, $p:rigid, $y:LND"
        )
        assert publishers[("p3",)] == 1.0


class TestFigure3Lattice:
    def test_thirty_points(self):
        table, _ = cube()
        assert table.lattice.size() == 30

    def test_every_cuboid_computed(self):
        table, result = cube()
        assert len(result.cuboids) == 30
        for point, cuboid in result.cuboids.items():
            for key in cuboid:
                assert len(key) == len(table.lattice.kept_axes(point))
