"""The Sec. 4.4 scaling experiment as a first-class driver.

The paper scales the sparse coverage-fails/disjointness-holds setting
from 10^4 to 10^5 input trees (Fig. 4 vs Fig. 5) and observes that (a)
running time grows proportionately and (b) the optimized variants'
benefit grows with scale, while (c) COUNTER starts thrashing at fewer
axes as the input grows.  ``run_scaling`` sweeps the fact count at a
fixed axis count and returns the series to check all three claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import run_config
from repro.datagen.workload import WorkloadConfig

DEFAULT_SCALES: Tuple[int, ...] = (100, 200, 400, 800)
SCALING_ALGORITHMS: Tuple[str, ...] = (
    "COUNTER", "BUC", "BUCOPT", "TD", "TDOPT",
)


@dataclass(frozen=True)
class ScalingResult:
    """algorithm -> [(n_facts, simulated seconds)] plus pass counts."""

    series: Dict[str, List[Tuple[int, float]]]
    passes: Dict[str, List[Tuple[int, int]]]

    def growth_factor(self, algorithm: str) -> float:
        """time(largest scale) / time(smallest scale)."""
        points = self.series[algorithm]
        return points[-1][1] / points[0][1]

    def optimization_gain(
        self, safe: str, optimized: str
    ) -> List[Tuple[int, float]]:
        """Absolute (safe - optimized) saving per scale point."""
        safe_by_n = dict(self.series[safe])
        out = []
        for n_facts, optimized_time in self.series[optimized]:
            out.append((n_facts, safe_by_n[n_facts] - optimized_time))
        return out


def run_scaling(
    scales: Sequence[int] = DEFAULT_SCALES,
    n_axes: int = 4,
    algorithms: Sequence[str] = SCALING_ALGORITHMS,
    memory_entries: int = 4000,
) -> ScalingResult:
    """Sweep the fact count in the Fig. 4/5 setting."""
    series: Dict[str, List[Tuple[int, float]]] = {
        name: [] for name in algorithms
    }
    passes: Dict[str, List[Tuple[int, int]]] = {
        name: [] for name in algorithms
    }
    for n_facts in scales:
        config = WorkloadConfig(
            kind="treebank",
            n_facts=n_facts,
            n_axes=n_axes,
            density="sparse",
            coverage=False,
            disjoint=True,
        )
        for run in run_config(config, algorithms, memory_entries=memory_entries):
            series[run.algorithm].append(
                (n_facts, run.simulated_seconds)
            )
            passes[run.algorithm].append((n_facts, run.passes))
    return ScalingResult(series=series, passes=passes)


def format_scaling(result: ScalingResult) -> str:
    """ASCII rendering of the scaling series."""
    scales = [n for n, _ in next(iter(result.series.values()))]
    lines = [
        "== scaling (Sec. 4.4): sparse, coverage fails, disjointness holds",
        "   sim-seconds by # of facts",
        "   " + " ".join(
            ["algorithm".ljust(10)] + [f"{n:>10}" for n in scales]
        ),
    ]
    for name, points in result.series.items():
        cells = dict(points)
        lines.append(
            "   " + " ".join(
                [name.ljust(10)]
                + [f"{cells[n]:>10.3f}" for n in scales]
            )
        )
    thrash = {
        name: [entry for entry in points if entry[1] > 1]
        for name, points in result.passes.items()
    }
    for name, entries in thrash.items():
        if entries:
            first = entries[0]
            lines.append(
                f"   note: {name} goes multi-pass from {first[0]} facts "
                f"({first[1]} passes)"
            )
    return "\n".join(lines)
