"""Unit tests for the annotated fact table."""

from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.lattice import CubeLattice
from repro.patterns.relaxation import Relaxation


def lattice_2axes():
    return CubeLattice(
        [
            AxisSpec.from_path(
                "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
            ),
            AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
        ]
    )


def row(fact, a_values, b_values, measure=1.0):
    return FactRow(
        fact_id=(0, fact),
        measure=measure,
        axes=(tuple(a_values), tuple(b_values)),
    )


# Masks: axis $a has states [rigid, {PC-AD}]: rigid bit 1, pcad bit 2.
RIGID_AND_PCAD = 0b11
PCAD_ONLY = 0b10


class TestAnnotatedValue:
    def test_matches(self):
        value = AnnotatedValue("x", PCAD_ONLY)
        assert not value.matches(0)
        assert value.matches(1)


class TestKeyCombinations:
    def test_single_values(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(1, [AnnotatedValue("x", RIGID_AND_PCAD)],
                [AnnotatedValue("u", 1)])
        assert table.key_combinations(r, lattice.top) == [("x", "u")]

    def test_cross_product(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(
            1,
            [AnnotatedValue("x", 0b11), AnnotatedValue("y", 0b11)],
            [AnnotatedValue("u", 1), AnnotatedValue("v", 1)],
        )
        keys = table.key_combinations(r, lattice.top)
        assert sorted(keys) == [
            ("x", "u"), ("x", "v"), ("y", "u"), ("y", "v"),
        ]

    def test_dropped_axis_excluded_from_key(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(1, [AnnotatedValue("x", 0b11)], [AnnotatedValue("u", 1)])
        point = (lattice.axis_states[0].dropped_index, 0)
        assert table.key_combinations(r, point) == [("u",)]

    def test_bottom_single_group(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(1, [], [])
        assert table.key_combinations(r, lattice.bottom) == [()]

    def test_missing_value_excludes_fact(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(1, [], [AnnotatedValue("u", 1)])
        assert table.key_combinations(r, lattice.top) == []
        assert not table.participates(r, lattice.top)

    def test_state_gated_value(self):
        lattice = lattice_2axes()
        table = FactTable(lattice, [])
        r = row(1, [AnnotatedValue("x", PCAD_ONLY)],
                [AnnotatedValue("u", 1)])
        assert table.key_combinations(r, lattice.top) == []
        pcad_point = (1, 0)
        assert table.key_combinations(r, pcad_point) == [("x", "u")]


class TestObservedProperties:
    def test_disjointness(self):
        lattice = lattice_2axes()
        single = row(1, [AnnotatedValue("x", 0b11)], [AnnotatedValue("u", 1)])
        multi = row(
            2,
            [AnnotatedValue("x", 0b11), AnnotatedValue("y", 0b11)],
            [AnnotatedValue("u", 1)],
        )
        assert FactTable(lattice, [single]).observed_disjointness(
            lattice.top
        )
        assert not FactTable(lattice, [multi]).observed_disjointness(
            lattice.top
        )

    def test_coverage_edge(self):
        lattice = lattice_2axes()
        gap = row(1, [], [AnnotatedValue("u", 1)])
        table = FactTable(lattice, [gap])
        finer = lattice.top
        coarser = (lattice.axis_states[0].dropped_index, 0)
        assert not table.observed_coverage(finer, coarser)
        full = row(2, [AnnotatedValue("x", 0b11)], [AnnotatedValue("u", 1)])
        assert FactTable(lattice, [full]).observed_coverage(finer, coarser)

    def test_axis_cardinality(self):
        lattice = lattice_2axes()
        rows = [
            row(1, [AnnotatedValue("x", 0b11)], []),
            row(2, [AnnotatedValue("y", PCAD_ONLY)], []),
        ]
        table = FactTable(lattice, rows)
        assert table.axis_cardinality(0, 0) == 1   # rigid sees only x
        assert table.axis_cardinality(0, 1) == 2   # PC-AD sees both
