"""Golden regression test for the columnar physical layout.

The committed snapshot (``tests/core/golden/columnar_fig1.json``) pins
the full encoding of the paper's Figure 1 workload — dictionaries,
code/mask/offset columns, per-state null masks — plus every finalized
cuboid the sweep emits for it.  A layout or kernel change that alters
any of this shows up as a diff here, so it is deliberate.

Regenerate after an intentional layout change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.datagen.publications import figure1_document, query1
    from repro.core.extract import extract_fact_table
    from repro.core.cube import compute_cube, ExecutionOptions

    table = extract_fact_table(figure1_document(), query1())
    golden = {
        "source": "figure1_document() x query1()",
        "encoding": table.columnar().snapshot(),
        "cuboids": {
            table.lattice.describe(point): sorted(
                [list(key), value] for key, value in cuboid.items()
            )
            for point, cuboid in compute_cube(
                table, ExecutionOptions(algorithm="COLUMNAR")
            ).cuboids.items()
        },
    }
    with open(
        "tests/core/golden/columnar_fig1.json", "w", encoding="utf-8"
    ) as fh:
        json.dump(golden, fh, indent=2, ensure_ascii=False, sort_keys=True)
        fh.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.extract import extract_fact_table
from repro.datagen.publications import figure1_document, query1

GOLDEN_PATH = Path(__file__).parent / "golden" / "columnar_fig1.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def table():
    return extract_fact_table(figure1_document(), query1())


class TestColumnarGolden:
    def test_encoding_matches_snapshot(self, golden, table):
        assert table.columnar().snapshot() == golden["encoding"]

    def test_cuboids_match_snapshot(self, golden, table):
        result = compute_cube(table, ExecutionOptions(algorithm="COLUMNAR"))
        got = {
            table.lattice.describe(point): sorted(
                [list(key), value] for key, value in cuboid.items()
            )
            for point, cuboid in result.cuboids.items()
        }
        assert got == golden["cuboids"]

    def test_snapshot_covers_null_masks(self, golden):
        for axis in golden["encoding"]["axes"]:
            assert axis["null_masks"], axis["axis"]
            for mask in axis["null_masks"].values():
                assert len(mask) == golden["encoding"]["n_rows"]

    def test_dict_engine_agrees_with_snapshot(self, golden, table):
        """The golden is also a NAIVE golden — the two engines pin each
        other."""
        result = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        got = {
            table.lattice.describe(point): sorted(
                [list(key), value] for key, value in cuboid.items()
            )
            for point, cuboid in result.cuboids.items()
        }
        assert got == golden["cuboids"]
