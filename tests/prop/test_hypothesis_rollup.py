"""Property-based soundness: whenever the roll-up checker says a
derivation is safe, performing it must equal direct computation — and
the incremental cube must always equal a recompute."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import compute_cube
from repro.core.incremental import IncrementalCube
from repro.core.lattice import CubeLattice
from repro.core.properties import PropertyOracle
from repro.core.rollup import derivable, rollup
from repro.patterns.relaxation import Relaxation

VALUES = ["u", "v", "w"]


@st.composite
def random_table(draw):
    axes = [
        AxisSpec.from_path(
            "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
        ),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]
    lattice = CubeLattice(axes)
    rows = []
    for number in range(draw(st.integers(min_value=0, max_value=10))):
        a_values = []
        for value in draw(
            st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
        ):
            a_values.append(
                AnnotatedValue(value, 0b11 if draw(st.booleans()) else 0b10)
            )
        b_values = [
            AnnotatedValue(value, 0b1)
            for value in draw(
                st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
            )
        ]
        rows.append(
            FactRow((0, number), 1.0, (tuple(a_values), tuple(b_values)))
        )
    return FactTable(lattice, rows)


@given(random_table())
@settings(max_examples=50, deadline=None)
def test_derivable_implies_rollup_correct(table):
    cube = compute_cube(table, "NAIVE")
    oracle = PropertyOracle.from_data(table)
    lattice = table.lattice
    for source in lattice.points():
        for target in lattice.points():
            ok, _ = derivable(lattice, source, target, oracle)
            if not ok or source == target:
                continue
            rolled = rollup(cube, source, target, oracle)
            assert rolled == cube.cuboids[target], (
                lattice.describe(source),
                lattice.describe(target),
            )


@given(random_table())
@settings(max_examples=40, deadline=None)
def test_incremental_equals_recompute(table):
    rows = list(table.rows)
    live = IncrementalCube(
        FactTable(table.lattice, [], aggregate=table.aggregate)
    )
    live.insert(rows)
    reference = compute_cube(
        FactTable(table.lattice, rows, aggregate=table.aggregate), "NAIVE"
    )
    assert live.as_result().same_contents(reference)


@given(random_table())
@settings(max_examples=40, deadline=None)
def test_insert_then_delete_all_is_empty(table):
    rows = list(table.rows)
    live = IncrementalCube(
        FactTable(table.lattice, [], aggregate=table.aggregate)
    )
    live.insert(rows)
    live.delete(rows)
    assert all(
        not cuboid for cuboid in live.as_result().cuboids.values()
    )
