"""The X^3 cube operator: query model, lattice, extraction, algorithms.

Public surface re-exported here:

- :class:`~repro.core.axes.AxisSpec` — one ``X^3`` clause entry: a path
  binding plus its permitted relaxations;
- :class:`~repro.core.query.X3Query` — the full cube specification;
- :func:`~repro.core.xq_parser.parse_x3_query` — the paper's FLWOR text
  syntax (Query 1);
- :class:`~repro.core.lattice.CubeLattice` — the relaxed-cube lattice of
  Fig. 3;
- :func:`~repro.core.extract.extract_fact_table` — one evaluation of the
  most relaxed fully instantiated pattern, annotated per binding;
- :func:`~repro.core.cube.compute_cube` — run any registered algorithm;
- :mod:`repro.core.algorithms` — COUNTER, BUC(+OPT/CUST), TD(+OPT/OPTALL/
  CUST) and the NAIVE oracle.
"""

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import (
    CostSnapshot,
    CubeResult,
    ExecutionOptions,
    compute_cube,
)
from repro.core.extract import extract_fact_table
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.query import X3Query
from repro.core.xq_parser import parse_x3_query

__all__ = [
    "AggregateSpec",
    "AxisSpec",
    "AnnotatedValue",
    "FactRow",
    "FactTable",
    "CostSnapshot",
    "CubeResult",
    "ExecutionOptions",
    "compute_cube",
    "CubeLattice",
    "LatticePoint",
    "X3Query",
    "parse_x3_query",
]
