"""Golden regression test for the columnar BUC/TD kernel mechanics.

The committed snapshot (``tests/core/golden/buc_td_fig1.json``) pins,
for the paper's Figure 1 workload:

- every first-level BUC partition refinement — ``partition_slices`` over
  the full row set for each (axis, state) pair, exclusive and safe —
  the exact refined row buffers, code-range slices, and decoded labels;
- TD's bottom-point group-id build (mixed-radix gids, decoded keys,
  folded COUNT values) and every axis-dropping roll-up remap from it.

A kernel or layout change that alters any of this shows up as a diff
here, so it is deliberate.  Regenerate after an intentional change::

    PYTHONPATH=src:. python - <<'PY'
    import json
    from tests.core.test_buc_td_golden import GOLDEN_PATH, build_snapshot
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(build_snapshot(), fh, indent=2,
                  ensure_ascii=False, sort_keys=True)
        fh.write("\n")
    PY
"""

import itertools
import json
from array import array
from pathlib import Path

import pytest

from repro.core.algorithms.base import ExecutionContext
from repro.core.algorithms.topdown import _columnar_build, _rollup_columnar
from repro.core.columnar import make_group_decoder
from repro.core.extract import extract_fact_table
from repro.datagen.publications import figure1_document, query1

GOLDEN_PATH = Path(__file__).parent / "golden" / "buc_td_fig1.json"


def _table():
    return extract_fact_table(figure1_document(), query1())


def buc_partition_snapshot(table):
    """Every first-level BUC refinement of the full Figure-1 row set."""
    encoded = table.columnar()
    rows = array("q", range(encoded.n_rows))
    out = []
    for position, states in enumerate(table.lattice.axis_states):
        dictionary = encoded.columns[position].dictionary
        for state in range(len(states.states)):
            for exclusive in (False, True):
                refined, slices = encoded.partition_slices(
                    rows, 0, len(rows), position, state, exclusive
                )
                out.append(
                    {
                        "axis": position,
                        "state": states.describe(state),
                        "exclusive": exclusive,
                        "refined": list(refined),
                        "slices": [
                            {
                                "label": dictionary[code],
                                "start": start,
                                "end": end,
                            }
                            for code, start, end in slices
                        ],
                    }
                )
    return out


def td_group_id_snapshot(table):
    """TD's detailed (all-rigid) build plus every axis-dropping gid
    remap from it."""
    lattice = table.lattice
    fn = table.aggregate.fn
    context = ExecutionContext(table, None, None)
    encoded = table.columnar()
    cells, axes = _columnar_build(
        context, encoded, lattice.top, fn,
        augmented=True, identity_ops=1,
    )
    decode = make_group_decoder(
        [(dictionary, radix) for _, dictionary, radix in axes]
    )
    snapshot = {
        "detailed": {
            "point": lattice.describe(lattice.top),
            "radices": [radix for _, _, radix in axes],
            "cells": [
                {
                    "gid": gid,
                    "key": list(decode(gid)),
                    "value": fn.finalize(state),
                }
                for gid, state in sorted(cells.items())
            ],
        },
        "rollups": [],
    }
    n_axes = len(lattice.axis_states)
    dropped = [states.dropped_index for states in lattice.axis_states]
    for size in range(1, n_axes + 1):
        for drop in itertools.combinations(range(n_axes), size):
            point = tuple(
                dropped[axis] if axis in drop else lattice.top[axis]
                for axis in range(n_axes)
            )
            rolled, rolled_axes = _rollup_columnar(
                context, cells, axes, point, lattice, fn
            )
            decode_point = make_group_decoder(
                [(dictionary, radix) for _, dictionary, radix in rolled_axes]
            )
            snapshot["rollups"].append(
                {
                    "point": lattice.describe(point),
                    "cells": [
                        {
                            "gid": gid,
                            "key": list(decode_point(gid)),
                            "value": fn.finalize(state),
                        }
                        for gid, state in sorted(rolled.items())
                    ],
                }
            )
    return snapshot


def build_snapshot():
    table = _table()
    return {
        "source": "figure1_document() x query1()",
        "buc_partitions": buc_partition_snapshot(table),
        "td_group_ids": td_group_id_snapshot(table),
    }


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def table():
    return _table()


class TestBucTdGolden:
    def test_buc_partitions_match_snapshot(self, golden, table):
        assert buc_partition_snapshot(table) == golden["buc_partitions"]

    def test_td_group_ids_match_snapshot(self, golden, table):
        assert td_group_id_snapshot(table) == golden["td_group_ids"]

    def test_partitions_are_stable_buckets(self, golden):
        """Within every slice the refined row indices are ascending —
        the stable-bucketing invariant that keeps fold order (and every
        finalized float) identical to NAIVE."""
        for partition in golden["buc_partitions"]:
            refined = partition["refined"]
            for entry in partition["slices"]:
                bucket = refined[entry["start"] : entry["end"]]
                assert bucket == sorted(bucket), partition

    def test_rollup_values_conserve_count(self, golden):
        """Every roll-up of the COUNT cube redistributes the detailed
        point's total count (same facts, coarser groups)."""
        detailed_total = sum(
            cell["value"]
            for cell in golden["td_group_ids"]["detailed"]["cells"]
        )
        for rollup in golden["td_group_ids"]["rollups"]:
            total = sum(cell["value"] for cell in rollup["cells"])
            assert total == detailed_total, rollup["point"]
