"""The NAIVE oracle: canonical per-cuboid grouping.

Not in the paper's line-up — it exists as ground truth.  Every correct
algorithm must produce exactly its cuboids; the optimized variants are
*expected* to differ from it when their required property fails (and the
tests assert both directions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.groupby import Cuboid, cuboid_from_rows
from repro.core.lattice import LatticePoint


class NaiveAlgorithm(CubeAlgorithm):
    name = "NAIVE"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        fn = table.aggregate.fn
        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            context.charge_base_scan()
            cuboids[point] = cuboid_from_rows(table, table.rows, point, fn)
            context.cost.charge_cpu(len(cuboids[point]))
            context.bump("groups", len(cuboids[point]))
        return cuboids, 1
