"""Tests for the deterministic closed-loop load generator."""

import json

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.publications import figure1_document, query1
from repro.obs.live import LiveTelemetry
from repro.serve import CubeServer
from repro.server import (
    CubeCatalog,
    LoadGenerator,
    LogicalCube,
    TenantAuth,
    X3Api,
    X3HttpServer,
)
from repro.server.loadgen import KIND_WEIGHTS, sample_queries


@pytest.fixture()
def table():
    return extract_fact_table(figure1_document(), query1())


def front_door(table, **api_kwargs):
    server = CubeServer(table, PropertyOracle.from_data(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", table.lattice), server
    )
    return X3HttpServer(X3Api(catalog, **api_kwargs))


class TestSampleQueries:
    def test_deterministic_per_seed(self, table):
        first = sample_queries(table.lattice, 50, 11)
        again = sample_queries(table.lattice, 50, 11)
        other = sample_queries(table.lattice, 50, 12)
        assert first == again
        assert first != other

    def test_covers_the_kind_mix(self, table):
        plan = sample_queries(table.lattice, 200, 3)
        ops = {op for op, _, _ in plan}
        assert ops == {kind for kind, _ in KIND_WEIGHTS}

    def test_transform_ops_carry_operands(self, table):
        for op, _, body in sample_queries(table.lattice, 200, 5):
            if op == "slice":
                assert body["axis"].startswith("$")
                assert body["value"]
            elif op == "dice":
                assert body["filters"]


class TestLoadGenerator:
    def test_run_against_live_server(self, table, tmp_path):
        telemetry = LiveTelemetry()
        with front_door(table) as front:
            generator = LoadGenerator(
                front.host,
                front.port,
                "pubs",
                table.lattice,
                clients=2,
                requests_per_client=10,
                seed=3,
                telemetry=telemetry,
            )
            report = generator.run()
        assert report.requests == 20
        assert set(report.statuses) == {200}
        assert report.ok == 20 and report.shed == 0
        assert report.modeled_quantiles[0.95] >= 0.0
        assert "20 requests from 2 clients" in report.summary()

        target = tmp_path / "latency.jsonl"
        assert report.write_jsonl(str(target)) == 20
        lines = [
            json.loads(line)
            for line in target.read_text().splitlines()
        ]
        assert len(lines) == 20
        assert all(line["status"] == 200 for line in lines)

        explains = sum(1 for r in report.records if r.op == "explain")
        assert telemetry.snapshot().requests == 20 - explains

    def test_modeled_quantiles_reproducible_cold(self, table):
        """With a zero cache budget every request recomputes, so the
        modeled latency of each request depends only on its point —
        the quantiles are identical run to run regardless of thread
        interleaving."""

        def one_run():
            server = CubeServer(
                table, PropertyOracle.from_data(table), cache_cells=0
            )
            catalog = CubeCatalog()
            catalog.register(
                LogicalCube.from_lattice("pubs", table.lattice), server
            )
            with X3HttpServer(X3Api(catalog)) as front:
                return LoadGenerator(
                    front.host,
                    front.port,
                    "pubs",
                    table.lattice,
                    clients=3,
                    requests_per_client=8,
                    seed=7,
                ).run()

        first, second = one_run(), one_run()
        assert first.modeled_quantiles == second.modeled_quantiles
        assert first.statuses == second.statuses

    def test_sends_bearer_token(self, table):
        with front_door(
            table, auth=TenantAuth({"tok": "acme"})
        ) as front:
            authed = LoadGenerator(
                front.host,
                front.port,
                "pubs",
                table.lattice,
                clients=1,
                requests_per_client=5,
                token="tok",
            ).run()
            anonymous = LoadGenerator(
                front.host,
                front.port,
                "pubs",
                table.lattice,
                clients=1,
                requests_per_client=5,
            ).run()
        assert set(authed.statuses) == {200}
        assert set(anonymous.statuses) == {401}

    def test_rejects_nonpositive_shape(self, table):
        with pytest.raises(ValueError):
            LoadGenerator("h", 1, "c", table.lattice, clients=0)
        with pytest.raises(ValueError):
            LoadGenerator(
                "h", 1, "c", table.lattice, requests_per_client=0
            )
