"""Benchmarks for the extension features built on the paper's Sec. 3.6
and 3.7 discussions and its stated future work.

A4 — iceberg pruning: BUC's monotone-COUNT pruning saves real work.
A5 — schema-driven lattice pruning: coincident points are computed once.
A6 — materialized views: answering the lattice from chosen views beats
     per-point recomputation.
A7 — incremental maintenance: appending a small delta beats recompute.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.core.bindings import FactTable
from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.incremental import IncrementalCube, split_rows
from repro.core.materialize import MaterializedCube, select_views
from repro.core.properties import PropertyOracle
from repro.core.prune import compute_cube_pruned
from repro.datagen.publications import query1, random_publications
from repro.datagen.workload import WorkloadConfig, build_workload
from repro.schema.dtd import Cardinality, Dtd


@pytest.fixture(scope="module")
def dense_table():
    workload = build_workload(
        WorkloadConfig(
            kind="treebank",
            n_facts=300,
            n_axes=4,
            density="dense",
            coverage=True,
            disjoint=True,
        )
    )
    return workload.fact_table()


class TestA4Iceberg:
    def test_iceberg_buc(self, benchmark, dense_table):
        result = bench_once(
            benchmark,
            lambda: compute_cube(dense_table, "BUC", min_support=10),
        )
        benchmark.extra_info["simulated_seconds"] = result.simulated_seconds

    def test_pruning_saves_cost(self, dense_table):
        full = compute_cube(dense_table, "BUC")
        iceberg = compute_cube(dense_table, "BUC", min_support=10)
        assert iceberg.cost["cpu_ops"] < full.cost["cpu_ops"]
        assert iceberg.total_cells() < full.total_cells()


class TestA5LatticePruning:
    @staticmethod
    def _schema() -> Dtd:
        dtd = Dtd()
        dtd.declare_element(
            "database", children=[("publication", Cardinality.STAR)]
        )
        dtd.declare_element(
            "publication",
            children=[
                ("author", Cardinality.STAR),
                ("publisher", Cardinality.OPTIONAL),
                ("year", Cardinality.PLUS),
            ],
            attributes=["id"],
        )
        dtd.declare_element("author", children=[("name", Cardinality.ONE)])
        dtd.declare_element("name", has_text=True)
        dtd.declare_element("publisher", attributes=["id"])
        dtd.declare_element("year", has_text=True)
        return dtd

    @pytest.fixture(scope="class")
    def pub_table(self):
        doc = random_publications(
            300,
            p_missing_publisher=0.2,
            p_extra_author=0.3,
            p_nested_author=0,
            p_pubdata=0,
            p_second_year=0.1,
        )
        return extract_fact_table(doc, query1())

    def test_pruned_cube(self, benchmark, pub_table):
        result, saved = bench_once(
            benchmark,
            lambda: compute_cube_pruned(
                pub_table, self._schema(), "publication", algorithm="BUC"
            ),
        )
        benchmark.extra_info["points_saved"] = saved
        assert saved > 0

    def test_pruning_saves_cost_and_stays_correct(self, pub_table):
        full = compute_cube(pub_table, "BUC")
        pruned, saved = compute_cube_pruned(
            pub_table, self._schema(), "publication", algorithm="BUC"
        )
        assert saved > 0
        assert pruned.same_contents(full)
        assert pruned.cost["cpu_ops"] < full.cost["cpu_ops"]


class TestA6Materialization:
    def test_materialized_answering(self, benchmark, dense_table):
        oracle = PropertyOracle.from_flags(dense_table.lattice, True, True)
        selection = select_views(dense_table, oracle, space_budget=3000)
        materialized = MaterializedCube(dense_table, selection, oracle)

        def answer_everything():
            return [
                materialized.cuboid(point)
                for point in dense_table.lattice.points()
            ]

        bench_once(benchmark, answer_everything)
        benchmark.extra_info["views"] = len(selection.chosen)

    def test_views_beat_recompute(self, dense_table):
        """Answering the whole lattice from views must cost less
        (simulated) than NAIVE's per-point recomputation: compare the
        materialization pass plus roll-ups against NAIVE."""
        oracle = PropertyOracle.from_flags(dense_table.lattice, True, True)
        selection = select_views(dense_table, oracle, space_budget=3000)
        assert selection.coverage_ratio() > 0.9
        naive = compute_cube(dense_table, "NAIVE")
        build_cost = compute_cube(
            dense_table, "BUC", points=list(selection.chosen)
        ).simulated_seconds
        assert build_cost < naive.simulated_seconds


class TestA7Incremental:
    def test_incremental_insert(self, benchmark, dense_table):
        initial, delta = split_rows(dense_table, 0.9)
        live = IncrementalCube(
            FactTable(
                dense_table.lattice,
                list(initial),
                aggregate=dense_table.aggregate,
            )
        )
        bench_once(benchmark, lambda: live.insert(list(delta)))
        benchmark.extra_info["delta_rows"] = len(delta)

    def test_delta_cheaper_than_recompute(self, dense_table):
        import time

        initial, delta = split_rows(dense_table, 0.9)
        live = IncrementalCube(
            FactTable(
                dense_table.lattice,
                list(initial),
                aggregate=dense_table.aggregate,
            )
        )
        begin = time.perf_counter()
        live.insert(list(delta))
        incremental_wall = time.perf_counter() - begin

        begin = time.perf_counter()
        reference = compute_cube(dense_table, "COUNTER")
        recompute_wall = time.perf_counter() - begin

        assert live.as_result().same_contents(reference)
        assert incremental_wall < recompute_wall
