"""Fig. 9 — dense cubes, neither property holds.  The paper ran the
optimized variants anyway 'just to see what the running time would be':
BUCOPT/TDOPT buy little despite wrong results, TDOPTALL is very fast
(and wrong), COUNTER is comparable at low dimensions then melts down."""

import pytest

from benchmarks.conftest import bench_once
from repro.core.cube import compute_cube

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPT", "TDOPTALL"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_algorithm(benchmark, dense_nocov_nodisj, algorithm):
    result = bench_once(benchmark, lambda: dense_nocov_nodisj.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    assert result.total_cells() > 0


def test_fig9_shape(dense_nocov_nodisj):
    sim = {name: dense_nocov_nodisj.simulated(name) for name in ALGORITHMS}
    # The wrong-but-timed optimized variants buy little over the safe ones
    # ... except TDOPTALL, which "did very well indeed".
    assert sim["BUCOPT"] > sim["BUC"] / 3
    assert sim["TDOPT"] > sim["TD"] / 10
    assert sim["TDOPTALL"] < sim["TD"] / 10
    assert sim["TDOPTALL"] < sim["BUC"]


def test_fig9_optimized_results_are_wrong(dense_nocov_nodisj):
    reference = compute_cube(dense_nocov_nodisj.table, "NAIVE")
    for name in ("BUCOPT", "TDOPT", "TDOPTALL"):
        assert not dense_nocov_nodisj.run(name).same_contents(reference), (
            f"{name} should be incorrect in the fig9 regime"
        )
    for name in ("COUNTER", "BUC", "TD"):
        assert dense_nocov_nodisj.run(name).same_contents(reference)
