"""Witness-tree enumeration: match a tree pattern against data.

Two backends with identical semantics:

- :func:`match_document` — in-memory, walking :class:`Element` trees;
- :func:`match_db` — against a :class:`~repro.timber.database.TimberDB`,
  finding candidate elements through the tag index with region-interval
  lookups (the per-edge work a structural join performs), charging the
  DB's cost model.

Semantics:

- a non-optional pattern node must bind to exactly one element (attribute
  nodes bind to an attribute *value*); witnesses enumerate every
  combination of bindings (the second publication of Fig. 1, with two
  ``year`` children, yields two witnesses);
- an *optional* node (LND applied, Fig. 2's ``*`` edges) binds ``None``
  when nothing matches — a left outer join — and every node beneath an
  unmatched optional node is ``None`` too.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern
from repro.timber.database import TimberDB
from repro.timber.node_store import NodeRecord
from repro.timber.tag_index import Posting
from repro.xmlmodel.nodes import Document, Element

Binding = Union[Element, NodeRecord, str, None]


@dataclass(frozen=True)
class Witness:
    """One witness tree: bindings aligned with ``pattern.nodes()`` order.

    ``by_label`` gives the labelled sub-bindings queries care about.
    """

    bindings: Tuple[Binding, ...]
    labels: Tuple[str, ...]

    def by_label(self, label: str) -> Binding:
        try:
            return self.bindings[self.labels.index(label)]
        except ValueError:
            raise KeyError(label) from None

    def value_of(self, label: str) -> Optional[str]:
        """Grouping value of a labelled binding (text / attr / None)."""
        binding = self.by_label(label)
        return binding_value(binding)

    @property
    def root_binding(self) -> Binding:
        return self.bindings[0]


def binding_value(binding: Binding) -> Optional[str]:
    """Grouping value of a binding: attribute string, element text, None."""
    if binding is None:
        return None
    if isinstance(binding, str):
        return binding
    if isinstance(binding, Element):
        return binding.text
    return binding.text  # NodeRecord


# ----------------------------------------------------------------------
# in-memory matcher
# ----------------------------------------------------------------------

def match_document(doc: Document, pattern: TreePattern) -> List[Witness]:
    """All witnesses of ``pattern`` in one document."""
    nodes = pattern.nodes()
    labels = tuple(node.label for node in nodes)
    order = {id(node): position for position, node in enumerate(nodes)}
    out: List[Witness] = []

    if pattern.root_axis is EdgeAxis.DESCENDANT:
        candidates = [
            node
            for node in doc.root.iter_subtree()
            if pattern.root.test in ("*", node.tag)
        ]
    else:
        candidates = (
            [doc.root] if pattern.root.test in ("*", doc.root.tag) else []
        )
    if pattern.root.value_test is not None:
        candidates = [
            node
            for node in candidates
            if node.text == pattern.root.value_test
        ]

    for candidate in candidates:
        for partial in _bind_subtree(pattern.root, candidate):
            bindings: List[Binding] = [None] * len(nodes)
            for pattern_node, binding in partial.items():
                bindings[order[pattern_node]] = binding
            out.append(Witness(tuple(bindings), labels))
    return out


def _element_candidates(context: Element, node: PatternNode) -> List[Element]:
    if node.axis is EdgeAxis.CHILD:
        pool: Sequence[Element] = context.children
    else:
        pool = list(context.iter_descendants())
    out = [
        element
        for element in pool
        if node.test in ("*", element.tag)
    ]
    if node.value_test is not None:
        out = [element for element in out if element.text == node.value_test]
    return out


def _attribute_candidates(context: Element, node: PatternNode) -> List[str]:
    name = node.attribute_name
    if node.axis is EdgeAxis.CHILD:
        value = context.attrs.get(name)
        out = [value] if value is not None else []
    else:
        out = []
        for descendant in context.iter_descendants():
            value = descendant.attrs.get(name)
            if value is not None:
                out.append(value)
    if node.value_test is not None:
        out = [value for value in out if value == node.value_test]
    return out


def _bind_subtree(
    node: PatternNode, element: Element
) -> Iterator[Dict[int, Binding]]:
    """Enumerate bindings of the subtree rooted at ``node`` given that
    ``node`` itself is bound to ``element``.  Keys are ``id(pattern_node)``."""
    base: Dict[int, Binding] = {id(node): element}
    yield from _extend_with_children(node, element, base, 0)


def _extend_with_children(
    node: PatternNode,
    element: Element,
    acc: Dict[int, Binding],
    child_index: int,
) -> Iterator[Dict[int, Binding]]:
    if child_index >= len(node.children):
        yield dict(acc)
        return
    child = node.children[child_index]
    matched_any = False
    if child.is_attribute:
        for value in _attribute_candidates(element, child):
            matched_any = True
            acc[id(child)] = value
            yield from _extend_with_children(node, element, acc, child_index + 1)
            del acc[id(child)]
    else:
        for candidate in _element_candidates(element, child):
            for sub in _bind_subtree(child, candidate):
                matched_any = True
                acc.update(sub)
                yield from _extend_with_children(
                    node, element, acc, child_index + 1
                )
                for key in sub:
                    del acc[key]
    if not matched_any:
        if not child.optional:
            return
        # Left outer join: the whole child subtree binds None.
        nulls = {id(desc): None for desc in child.iter_subtree()}
        acc.update(nulls)
        yield from _extend_with_children(node, element, acc, child_index + 1)
        for key in nulls:
            del acc[key]


# ----------------------------------------------------------------------
# database matcher
# ----------------------------------------------------------------------

class _PostingsView:
    """Sorted postings of one tag with region-interval lookup."""

    def __init__(self, postings: List[Posting]) -> None:
        self.postings = postings
        self.keys = [posting.sort_key for posting in postings]

    def within(self, anc: Posting) -> List[Posting]:
        """Postings strictly inside the ancestor's region."""
        lo = bisect_right(self.keys, (anc.doc_id, anc.start))
        hi = bisect_left(self.keys, (anc.doc_id, anc.end))
        return [
            posting
            for posting in self.postings[lo:hi]
            if posting.end <= anc.end
        ]


def match_db(db: TimberDB, pattern: TreePattern) -> List[Witness]:
    """All witnesses of ``pattern`` across every document in the DB.

    Uses the tag index to stream candidates per pattern node (charged to
    the DB cost model) and region-encoding interval lookups per edge.
    """
    nodes = pattern.nodes()
    labels = tuple(node.label for node in nodes)
    order = {id(node): position for position, node in enumerate(nodes)}
    views: Dict[int, _PostingsView] = {}
    value_indexed: set = set()
    for node in nodes:
        if node.is_attribute or node.test == "*":
            continue
        if node.value_test is not None:
            # Value-index lookup: only postings with the wanted text.
            views[id(node)] = _PostingsView(
                db.postings_with_value(node.test, node.value_test)
            )
            value_indexed.add(id(node))
        else:
            views[id(node)] = _PostingsView(db.postings(node.test))

    if pattern.root.test == "*":
        root_candidates = [
            posting for tag in db.tags() for posting in db.postings(tag)
        ]
        root_candidates.sort(key=lambda posting: posting.sort_key)
    else:
        root_candidates = views[id(pattern.root)].postings
    if pattern.root_axis is EdgeAxis.CHILD:
        root_candidates = [
            posting for posting in root_candidates if posting.level == 0
        ]
    if (
        pattern.root.value_test is not None
        and id(pattern.root) not in value_indexed
    ):
        root_candidates = [
            posting
            for posting in root_candidates
            if db.record_of(posting).text == pattern.root.value_test
        ]

    out: List[Witness] = []
    for candidate in root_candidates:
        db.cost.charge_cpu()
        for partial in _db_bind_subtree(
            db, views, pattern.root, candidate, value_indexed
        ):
            bindings: List[Binding] = [None] * len(nodes)
            for node_key, binding in partial.items():
                bindings[order[node_key]] = binding
            out.append(Witness(tuple(bindings), labels))
    return out


def _db_candidates(
    db: TimberDB,
    views: Dict[int, _PostingsView],
    context: Posting,
    node: PatternNode,
    value_indexed: set,
) -> List[Posting]:
    if node.test == "*":
        raise NotImplementedError("wildcard inner nodes are not indexed")
    view = views[id(node)]
    inside = view.within(context)
    db.cost.charge_cpu(len(inside) + 1)
    if node.axis is EdgeAxis.CHILD:
        inside = [
            posting
            for posting in inside
            if posting.level == context.level + 1
        ]
    # Nodes served by the value index are already filtered; anything
    # else with a predicate is checked against the stored record.
    if node.value_test is not None and id(node) not in value_indexed:
        inside = [
            posting
            for posting in inside
            if db.record_of(posting).text == node.value_test
        ]
    return inside


def _db_attribute_candidates(
    db: TimberDB, context: Posting, node: PatternNode
) -> List[str]:
    name = node.attribute_name
    if node.axis is EdgeAxis.CHILD:
        record = db.record_of(context)
        value = record.attr(name)
        out = [value] if value is not None else []
    else:
        out = []
        for record in db.store.subtree_of(context.doc_id, context.node_id):
            if record.node_id == context.node_id:
                continue
            value = record.attr(name)
            if value is not None:
                out.append(value)
    if node.value_test is not None:
        out = [value for value in out if value == node.value_test]
    return out


def _db_bind_subtree(
    db: TimberDB,
    views: Dict[int, _PostingsView],
    node: PatternNode,
    posting: Posting,
    value_indexed: set,
) -> Iterator[Dict[int, Binding]]:
    base: Dict[int, Binding] = {id(node): db.record_of(posting)}
    yield from _db_extend(db, views, node, posting, base, 0, value_indexed)


def _db_extend(
    db: TimberDB,
    views: Dict[int, _PostingsView],
    node: PatternNode,
    posting: Posting,
    acc: Dict[int, Binding],
    child_index: int,
    value_indexed: set,
) -> Iterator[Dict[int, Binding]]:
    if child_index >= len(node.children):
        yield dict(acc)
        return
    child = node.children[child_index]
    matched_any = False
    if child.is_attribute:
        for value in _db_attribute_candidates(db, posting, child):
            matched_any = True
            acc[id(child)] = value
            yield from _db_extend(
                db, views, node, posting, acc, child_index + 1,
                value_indexed,
            )
            del acc[id(child)]
    else:
        for candidate in _db_candidates(
            db, views, posting, child, value_indexed
        ):
            for sub in _db_bind_subtree(
                db, views, child, candidate, value_indexed
            ):
                matched_any = True
                acc.update(sub)
                yield from _db_extend(
                    db, views, node, posting, acc, child_index + 1,
                    value_indexed,
                )
                for key in sub:
                    del acc[key]
    if not matched_any:
        if not child.optional:
            return
        nulls = {id(desc): None for desc in child.iter_subtree()}
        acc.update(nulls)
        yield from _db_extend(
            db, views, node, posting, acc, child_index + 1, value_indexed
        )
        for key in nulls:
            del acc[key]
