"""Run cube algorithms over workloads and collect measurements.

Each run reports two time measures:

- ``simulated_seconds`` — the deterministic cost model (CPU operations +
  page I/O), which is what reproduces the *shape* of the paper's figures
  independent of host speed;
- ``wall_seconds`` — real elapsed time of the Python execution, captured
  for completeness and used by the pytest-benchmark targets.

Runs optionally validate results against the NAIVE oracle; for the
optimized variants on property-violating inputs the validation is
*expected* to fail (the paper timed those runs anyway, Fig. 9 — so do
we, recording ``correct=False``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, compute_cube
from repro.core.properties import PropertyOracle
from repro.datagen.workload import Workload, WorkloadConfig, build_workload


@dataclass
class AlgorithmRun:
    """One (workload, algorithm) measurement."""

    workload: str
    algorithm: str
    n_axes: int
    n_facts: int
    simulated_seconds: float
    wall_seconds: float
    cells: int
    passes: int
    correct: Optional[bool] = None
    dnf: bool = False

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "axes": self.n_axes,
            "facts": self.n_facts,
            "sim_seconds": round(self.simulated_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cells": self.cells,
            "passes": self.passes,
            "correct": self.correct,
            "dnf": self.dnf,
        }


def run_algorithm(
    table: FactTable,
    algorithm: str,
    oracle: Optional[PropertyOracle] = None,
    memory_entries: Optional[int] = None,
    reference: Optional[CubeResult] = None,
    workload_name: str = "",
    n_facts: int = 0,
    dnf_simulated_limit: Optional[float] = None,
) -> AlgorithmRun:
    """Time one algorithm over an extracted fact table."""
    begin = time.perf_counter()
    result = compute_cube(
        table, algorithm, oracle=oracle, memory_entries=memory_entries
    )
    wall = time.perf_counter() - begin
    correct = (
        result.same_contents(reference) if reference is not None else None
    )
    dnf = (
        dnf_simulated_limit is not None
        and result.simulated_seconds > dnf_simulated_limit
    )
    return AlgorithmRun(
        workload=workload_name,
        algorithm=algorithm,
        n_axes=table.lattice.axis_count,
        n_facts=n_facts or len(table),
        simulated_seconds=result.simulated_seconds,
        wall_seconds=wall,
        cells=result.total_cells(),
        passes=result.passes,
        correct=correct,
        dnf=dnf,
    )


def run_workload(
    workload: Workload,
    algorithms: Sequence[str],
    memory_entries: Optional[int] = None,
    validate: bool = False,
    dnf_simulated_limit: Optional[float] = None,
) -> List[AlgorithmRun]:
    """Extract once, then time each algorithm (the paper's protocol)."""
    table = workload.fact_table()
    oracle = workload.oracle(table)
    reference = compute_cube(table, "NAIVE") if validate else None
    runs: List[AlgorithmRun] = []
    for algorithm in algorithms:
        runs.append(
            run_algorithm(
                table,
                algorithm,
                oracle=oracle,
                memory_entries=memory_entries,
                reference=reference,
                workload_name=workload.name,
                n_facts=len(table),
                dnf_simulated_limit=dnf_simulated_limit,
            )
        )
    return runs


def run_config(
    config: WorkloadConfig,
    algorithms: Sequence[str],
    memory_entries: Optional[int] = None,
    validate: bool = False,
    dnf_simulated_limit: Optional[float] = None,
) -> List[AlgorithmRun]:
    """Build the workload from its config, then run."""
    return run_workload(
        build_workload(config),
        algorithms,
        memory_entries=memory_entries,
        validate=validate,
        dnf_simulated_limit=dnf_simulated_limit,
    )
