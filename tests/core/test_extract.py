"""Unit tests for fact-table extraction (both backends).

The masks asserted here encode the paper's Figure 1 walk-through; the
axis state order for $n is [rigid, PC-AD, SP, PC-AD+SP] (bits 1,2,4,8)
and for $p [rigid, PC-AD] (bits 1,2).
"""

import pytest

from repro.core.extract import (
    extract_fact_table,
    extract_from_db,
    extract_from_documents,
)
from repro.datagen.publications import figure1_document, query1
from repro.timber.database import TimberDB
from repro.xmlmodel.serializer import serialize


@pytest.fixture(scope="module")
def table():
    return extract_from_documents([figure1_document()], query1())


def row_by_pub(table, pub_id):
    # Figure 1 publications carry @id 1..4; fact rows are in doc order.
    return table.rows[pub_id - 1]


class TestFigure1Annotations:
    def test_four_facts(self, table):
        assert len(table) == 4

    def test_pub1_all_rigid(self, table):
        row = row_by_pub(table, 1)
        names = {v.value: v.mask for v in row.axes[0]}
        assert names == {"John": 0b1111, "Jane": 0b1111}
        assert [v.value for v in row.axes[1]] == ["p1"]
        assert [v.value for v in row.axes[2]] == ["2003"]

    def test_pub2_two_years(self, table):
        row = row_by_pub(table, 2)
        assert sorted(v.value for v in row.axes[2]) == ["2004", "2005"]

    def test_pub3_name_needs_pcad(self, table):
        row = row_by_pub(table, 3)
        (smith,) = row.axes[0]
        assert smith.value == "Smith"
        assert not smith.matches(0)   # rigid misses it
        assert smith.matches(1)       # PC-AD finds it
        assert not smith.matches(2)   # SP alone: author prefix fails
        assert smith.matches(3)       # SP+PC-AD finds it
        assert row.axes[1] == ()      # no publisher at all

    def test_pub4_publisher_found_year_not(self, table):
        row = row_by_pub(table, 4)
        assert [v.value for v in row.axes[1]] == ["p3"]
        assert row.axes[2] == ()      # year hides under pubData; $y is LND-only

    def test_masks_monotone_upward(self, table):
        # A value matching a state also matches every superset state.
        for row in table.rows:
            for position, states in enumerate(table.lattice.axis_states):
                for annotated in row.axes[position]:
                    for i, state_i in enumerate(states.states):
                        for j, state_j in enumerate(states.states):
                            if state_i <= state_j and annotated.matches(i):
                                assert annotated.matches(j)

    def test_count_measures_are_one(self, table):
        assert all(row.measure == 1.0 for row in table.rows)

    def test_aggregate_attached(self, table):
        assert table.aggregate.function == "COUNT"


class TestBackendEquivalence:
    def test_db_matches_memory(self):
        doc = figure1_document()
        query = query1()
        memory = extract_from_documents([doc], query)
        db = TimberDB()
        db.load(serialize(doc))
        stored = extract_from_db(db, query)
        assert len(memory) == len(stored)
        for mine, theirs in zip(memory.rows, stored.rows):
            assert mine.measure == theirs.measure
            for my_axis, their_axis in zip(mine.axes, theirs.axes):
                assert sorted((v.value, v.mask) for v in my_axis) == sorted(
                    (v.value, v.mask) for v in their_axis
                )

    def test_dispatch(self):
        doc = figure1_document()
        assert len(extract_fact_table(doc, query1())) == 4
        assert len(extract_fact_table([doc, doc], query1())) == 8
        db = TimberDB()
        db.load(serialize(doc))
        assert len(extract_fact_table(db, query1())) == 4

    def test_db_extraction_charges_cost(self):
        db = TimberDB()
        db.load(serialize(figure1_document()))
        db.build_index()
        db.reset_cost()
        extract_from_db(db, query1())
        assert db.cost.cpu_ops > 0


class TestMeasures:
    def test_sum_measure_extraction(self):
        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.query import X3Query
        from repro.xmlmodel.parser import parse

        doc = parse(
            '<r><sale price="10"><region>EU</region></sale>'
            '<sale price="5"><region>US</region></sale>'
            '<sale><region>US</region></sale></r>'
        )
        query = X3Query(
            fact_tag="sale",
            axes=(AxisSpec.from_path("$r", "region"),),
            aggregate=AggregateSpec("SUM", "@price"),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        assert [row.measure for row in table.rows] == [10.0, 5.0, 0.0]

    def test_non_numeric_measures_skipped(self):
        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.query import X3Query
        from repro.xmlmodel.parser import parse

        doc = parse('<r><sale price="oops"><region>EU</region></sale></r>')
        query = X3Query(
            fact_tag="sale",
            axes=(AxisSpec.from_path("$r", "region"),),
            aggregate=AggregateSpec("SUM", "@price"),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        assert table.rows[0].measure == 0.0
