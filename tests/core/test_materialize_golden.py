"""Golden regression tests for the view-selection advisor.

The greedy benefit-per-space heuristic of :func:`select_views` is
deterministic on a fixed workload; these goldens pin the exact chosen
view sets on two controlled workloads so refactors of the advisor (or
of the cost/size estimation feeding it) can't silently change plans.
The companion invariant checks every answered lattice point against a
direct ``compute_cube``.
"""

import pytest

from repro.core.cube import compute_cube
from repro.core.materialize import MaterializedCube, select_views
from repro.core.properties import PropertyOracle
from repro.testing import messy_workload, small_workload

# Committed expected selections — regenerate only deliberately, with:
#   PYTHONPATH=src python -c "from tests.core.test_materialize_golden \
#       import _selection; print(_selection('clean')[2])"
GOLDEN_CLEAN = (
    "$m1:rigid, $m2:rigid, $m3:rigid",
    "$m1:rigid, $m2:rigid, $m3:LND",
    "$m1:rigid, $m2:LND, $m3:rigid",
    "$m1:rigid, $m2:LND, $m3:LND",
    "$m1:LND, $m2:rigid, $m3:rigid",
    "$m1:LND, $m2:rigid, $m3:LND",
    "$m1:LND, $m2:LND, $m3:rigid",
    "$m1:LND, $m2:LND, $m3:LND",
)
GOLDEN_CLEAN_SPACE = 112

GOLDEN_MESSY = (
    "$m1:rigid, $m2:rigid, $m3:rigid",
    "$m1:rigid, $m2:rigid, $m3:PC-AD",
    "$m1:rigid, $m2:rigid, $m3:LND",
    "$m1:rigid, $m2:PC-AD, $m3:LND",
    "$m1:rigid, $m2:LND, $m3:rigid",
    "$m1:rigid, $m2:LND, $m3:PC-AD",
    "$m1:rigid, $m2:LND, $m3:LND",
    "$m1:PC-AD, $m2:rigid, $m3:LND",
    "$m1:PC-AD, $m2:PC-AD, $m3:LND",
    "$m1:PC-AD, $m2:LND, $m3:rigid",
    "$m1:PC-AD, $m2:LND, $m3:PC-AD",
    "$m1:PC-AD, $m2:LND, $m3:LND",
    "$m1:LND, $m2:rigid, $m3:rigid",
    "$m1:LND, $m2:rigid, $m3:PC-AD",
    "$m1:LND, $m2:rigid, $m3:LND",
    "$m1:LND, $m2:PC-AD, $m3:rigid",
    "$m1:LND, $m2:PC-AD, $m3:PC-AD",
    "$m1:LND, $m2:PC-AD, $m3:LND",
    "$m1:LND, $m2:LND, $m3:rigid",
    "$m1:LND, $m2:LND, $m3:PC-AD",
    "$m1:LND, $m2:LND, $m3:LND",
)
GOLDEN_MESSY_SPACE = 283


def _selection(which):
    if which == "clean":
        workload, budget = (
            small_workload(n_facts=100, coverage=True, disjoint=True),
            400,
        )
    else:
        workload, budget = messy_workload(n_facts=80), 300
    table = workload.fact_table()
    oracle = PropertyOracle.from_data(table)
    selection = select_views(table, oracle, space_budget=budget)
    described = tuple(
        table.lattice.describe(point) for point in selection.chosen
    )
    return table, oracle, described, selection


class TestGoldenSelections:
    def test_clean_workload_selection(self):
        _, _, described, selection = _selection("clean")
        assert described == GOLDEN_CLEAN
        assert selection.space_used == GOLDEN_CLEAN_SPACE
        assert selection.space_used <= selection.space_budget
        assert selection.coverage_ratio() == pytest.approx(1.0)

    def test_messy_workload_selection(self):
        _, _, described, selection = _selection("messy")
        assert described == GOLDEN_MESSY
        assert selection.space_used == GOLDEN_MESSY_SPACE
        assert selection.space_used <= selection.space_budget
        # messy summarizability limits what the chosen views can serve
        assert 0.0 < selection.coverage_ratio() < 1.0


class TestAnsweringInvariant:
    @pytest.mark.parametrize("which", ["clean", "messy"])
    def test_every_point_matches_direct_compute(self, which):
        table, oracle, _, selection = _selection(which)
        materialized = MaterializedCube(table, selection, oracle)
        reference = compute_cube(table, "NAIVE")
        for point in table.lattice.points():
            assert materialized.cuboid(point) == reference.cuboids[point], (
                table.lattice.describe(point)
            )
