"""Engine benchmarks: serial vs. parallel cube execution on the largest
workload config.

Wall-clock numbers depend on the host (this suite often runs in a 1-CPU
container, where thread-pool wall time cannot beat serial).  The
reproducible acceptance signal is the *modeled* speedup: total
cost-model work divided by the critical path (busiest worker's
simulated seconds), which is deterministic for a given workload and
partition plan.
"""

import pytest

from benchmarks.conftest import bench_once

SPEEDUP_TARGET = 1.5
WORKERS = 4


@pytest.fixture(scope="module")
def reference(dense_cov_disj):
    return dense_cov_disj.run("NAIVE")


def test_engine_serial_baseline(benchmark, dense_cov_disj, reference):
    result = bench_once(
        benchmark, lambda: dense_cov_disj.run("NAIVE", workers=1)
    )
    assert result.same_contents(reference)
    assert result.cost.speedup_estimate == pytest.approx(1.0)


@pytest.mark.parametrize("engine", ["thread", "process"])
def test_engine_parallel_speedup(benchmark, dense_cov_disj, reference, engine):
    result = bench_once(
        benchmark,
        lambda: dense_cov_disj.run("NAIVE", workers=WORKERS, engine=engine),
    )
    assert result.same_contents(reference)
    metrics = result.metrics
    assert metrics is not None
    assert metrics.requested_workers == WORKERS
    # Modeled speedup: deterministic, host-independent.
    assert result.cost.speedup_estimate > SPEEDUP_TARGET, (
        f"modeled speedup {result.cost.speedup_estimate:.2f}x "
        f"<= {SPEEDUP_TARGET}x "
        f"(critical path {result.cost.parallel_simulated_seconds:.3f}s "
        f"of {result.cost.simulated_seconds:.3f}s total)"
    )


def test_engine_speedup_on_every_figure_workload(
    sparse_nocov_disj, dense_nocov_disj, sparse_cov_disj, dense_cov_disj
):
    """The >1.5x modeled-speedup bar holds across the paper's settings,
    not just the largest one."""
    for prepared in (
        sparse_nocov_disj,
        dense_nocov_disj,
        sparse_cov_disj,
        dense_cov_disj,
    ):
        result = prepared.run("NAIVE", workers=WORKERS, engine="thread")
        assert result.cost.speedup_estimate > SPEEDUP_TARGET, prepared.config
