"""The X^3 query objects: the cube specification and the serving API.

Two layers live here:

- :class:`X3Query` — the structured form of the paper's augmented FLWOR
  expression (Query 1).  It knows how to render itself back to that
  syntax, how to build its cube lattice, and how to build the grouping
  tree pattern (rigid and most-relaxed) that Sec. 2 defines.
- The **unified serving API**: one frozen :class:`Query` request, one
  :class:`QueryResult` envelope, and the :class:`CubeBackend` protocol
  both runtime surfaces (:class:`repro.serve.CubeServer` and
  :class:`repro.cluster.ClusterCoordinator`) satisfy.  Before this
  contract existed the two backends duplicated the ``cuboid`` /
  ``cuboid_versioned`` / ``cell`` / ``slice`` / ``dice`` method shapes
  with positional ``PointSpec`` arguments and no shared type; the HTTP
  front door (:mod:`repro.server`), the CLIs and the tests all speak
  :class:`Query` now, and the old positional signatures survive only as
  deprecated shims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.axes import AxisSpec
from repro.core.aggregates import AggregateSpec
from repro.core.bindings import FactRow, GroupKey
from repro.core.lattice import CubeLattice, LatticePoint
from repro.errors import InvalidQuery, QueryError, StaleVersion
from repro.obs.events import RungDecision
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern
from repro.patterns.relaxation import Relaxation, most_relaxed_pattern


@dataclass(frozen=True)
class X3Query:
    """A full cube specification.

    Attributes:
        fact_tag: tag of the fact elements (e.g. ``publication``); facts
            are matched anywhere in the documents (``//fact_tag``).
        fact_id_path: path from the fact to its identifier, ``"@id"`` by
            default; node identity is used when the path binds nothing.
        axes: the grouping axes.
        aggregate: the RETURN clause.
        document: display name of the source (``doc("book.xml")``).
    """

    fact_tag: str
    axes: Tuple[AxisSpec, ...]
    aggregate: AggregateSpec = field(default_factory=AggregateSpec)
    fact_id_path: str = "@id"
    document: str = "book.xml"

    def __post_init__(self) -> None:
        if not self.fact_tag:
            raise QueryError("fact tag must be non-empty")
        if not self.axes:
            raise QueryError("an X^3 query needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate axis names in {names}")

    # ------------------------------------------------------------------
    def lattice(self) -> CubeLattice:
        return CubeLattice(self.axes)

    def relaxation_specs(self) -> Dict[str, Set[Relaxation]]:
        return {axis.name: set(axis.relaxations) for axis in self.axes}

    # ------------------------------------------------------------------
    # tree patterns (Sec. 2)
    # ------------------------------------------------------------------
    def rigid_pattern(self) -> TreePattern:
        """The grouping tree pattern of the query text (Fig. 3 (a))."""
        root = PatternNode(self.fact_tag, label="$fact")
        if self.fact_id_path:
            root.add(PatternNode(f"@{self.fact_id_path.lstrip('@')}"))
        for axis in self.axes:
            cursor = root
            for position, (edge, test) in enumerate(axis.steps):
                is_binding = position == len(axis.steps) - 1
                node = PatternNode(
                    test,
                    axis=edge,
                    label=axis.name if is_binding else "",
                )
                cursor.add(node)
                cursor = node
        pattern = TreePattern(root, root_axis=EdgeAxis.DESCENDANT)
        pattern.validate()
        return pattern

    def most_relaxed(self) -> TreePattern:
        """The most relaxed fully instantiated pattern (Fig. 2)."""
        return most_relaxed_pattern(
            self.rigid_pattern(), self.relaxation_specs()
        )

    # ------------------------------------------------------------------
    def to_flwor(self) -> str:
        """Render back to the paper's augmented FLWOR syntax."""
        lines = [f'for $b in doc("{self.document}")//{self.fact_tag},']
        for position, axis in enumerate(self.axes):
            comma = "," if position < len(self.axes) - 1 else ""
            path = axis.path_text()
            sep = "" if path.startswith("/") else "/"
            lines.append(f"    {axis.name} in $b{sep}{path}{comma}")
        id_expr = f"$b/{self.fact_id_path}" if self.fact_id_path else "$b"
        for position, axis in enumerate(self.axes):
            names = ", ".join(
                sorted((r.value for r in axis.relaxations))
            )
            prefix = f"X^3 {id_expr} by " if position == 0 else "       "
            comma = "," if position < len(self.axes) - 1 else ""
            lines.append(f"{prefix}{axis.name} ({names}){comma}")
        measure = self.aggregate.measure_path
        inner = f"$b/{measure}" if measure else "$b"
        lines.append(f"return {self.aggregate.function.upper()}({inner}).")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_flwor()


# ======================================================================
# the unified serving API: Query / QueryResult / CubeBackend
# ======================================================================

#: Spec of the lattice point a query targets: the point itself or its
#: description string (``"$n:LND, $y:rigid"``).
PointSpec = Union[LatticePoint, str]

#: Query kinds the serving API accepts.  ``aggregate`` returns the
#: cuboid at the target point; ``drilldown`` refines the point one
#: relaxation step *finer* on one axis first; ``cell`` / ``slice`` /
#: ``dice`` post-process the resolved cuboid.
QUERY_KINDS = ("aggregate", "drilldown", "cell", "slice", "dice")


@dataclass(frozen=True)
class Query:
    """One serving request, the single request shape of every backend.

    Attributes:
        point: target lattice point (or its description string).
        kind: one of :data:`QUERY_KINDS`.
        axis: axis name (``"$y"``) — the drilldown axis, or the sliced
            axis.
        value: the slice value.
        key: the group key a ``cell`` query asks for.
        filters: dice predicates as ``(axis name, allowed values)``
            pairs; a cell survives when every named axis's key component
            is among the allowed values.
        measure: expected aggregate function name (``"COUNT"``); when
            set, the backend rejects the query unless it matches the
            cube's aggregate — a cheap schema check for remote callers.
        read_version: minimum version token the answer must reflect
            (read-your-writes).  A 1-vector against a single server, a
            per-shard vector against a cluster; :class:`StaleVersion`
            when the backend has not caught up.
        deadline_seconds: modeled-latency budget; the result's
            ``deadline_exceeded`` flag reports an overrun (the answer is
            still returned — the model's time base is simulated, so
            cancelling mid-flight would fake urgency, not model it).
    """

    point: PointSpec
    kind: str = "aggregate"
    axis: Optional[str] = None
    value: Optional[str] = None
    key: Optional[GroupKey] = None
    filters: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    measure: Optional[str] = None
    read_version: Optional[Tuple[int, ...]] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise InvalidQuery(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{QUERY_KINDS}"
            )
        if self.key is not None:
            object.__setattr__(self, "key", tuple(self.key))
        object.__setattr__(
            self,
            "filters",
            tuple(
                (axis, tuple(values)) for axis, values in self.filters
            ),
        )
        if self.read_version is not None:
            object.__setattr__(
                self, "read_version", tuple(self.read_version)
            )
        if self.kind == "drilldown" and not self.axis:
            raise InvalidQuery("drilldown needs an axis name")
        if self.kind == "slice" and (not self.axis or self.value is None):
            raise InvalidQuery("slice needs an axis name and a value")
        if self.kind == "dice" and not self.filters:
            raise InvalidQuery("dice needs at least one filter")
        if self.kind == "cell" and self.key is None:
            raise InvalidQuery("cell needs a group key")

    # ------------------------------------------------------------------
    # wire form
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Query":
        """Build from the HTTP JSON body (:class:`InvalidQuery` on any
        malformed field — transports map it to a 400)."""
        if not isinstance(payload, Mapping):
            raise InvalidQuery(
                f"query body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "point", "kind", "axis", "value", "key", "filters",
            "measure", "read_version", "deadline_seconds",
        }
        unknown = set(payload) - known
        if unknown:
            raise InvalidQuery(
                f"unknown query fields {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        point = payload.get("point")
        if not isinstance(point, str) or not point.strip():
            raise InvalidQuery(
                "query needs a non-empty 'point' description string"
            )
        try:
            filters = tuple(
                (str(axis), tuple(str(v) for v in values))
                for axis, values in dict(
                    payload.get("filters") or {}
                ).items()
            )
            key = payload.get("key")
            if key is not None:
                key = tuple(
                    None if part is None else str(part) for part in key
                )
            read_version = payload.get("read_version")
            if read_version is not None:
                read_version = tuple(int(v) for v in read_version)
            deadline = payload.get("deadline_seconds")
            if deadline is not None:
                deadline = float(deadline)
        except (TypeError, ValueError) as error:
            raise InvalidQuery(f"malformed query field: {error}") from None
        return cls(
            point=point,
            kind=str(payload.get("kind", "aggregate")),
            axis=payload.get("axis"),
            value=payload.get("value"),
            key=key,
            filters=filters,
            measure=payload.get("measure"),
            read_version=read_version,
            deadline_seconds=deadline,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON wire form (round-trips through :meth:`from_dict`
        when ``point`` is a description string)."""
        out: Dict[str, Any] = {"point": self.point, "kind": self.kind}
        if self.axis is not None:
            out["axis"] = self.axis
        if self.value is not None:
            out["value"] = self.value
        if self.key is not None:
            out["key"] = list(self.key)
        if self.filters:
            out["filters"] = {
                axis: list(values) for axis, values in self.filters
            }
        if self.measure is not None:
            out["measure"] = self.measure
        if self.read_version is not None:
            out["read_version"] = list(self.read_version)
        if self.deadline_seconds is not None:
            out["deadline_seconds"] = self.deadline_seconds
        return out


@dataclass(frozen=True)
class QueryResult:
    """One answered :class:`Query`: payload plus provenance envelope.

    The payload is a cuboid mapping for ``aggregate`` / ``drilldown`` /
    ``slice`` / ``dice`` and a single cell value (or ``None``) for
    ``cell``.  The envelope carries everything a remote caller needs to
    trust and reuse the answer: the version token it is exact at, the
    sound-source rung that produced it with the full ladder trail, and
    the modeled cost actually paid.
    """

    kind: str
    point: str  #: described lattice point actually served
    payload: Union[Dict[GroupKey, float], float, None]
    version: Tuple[int, ...]  #: version token the answer is exact at
    tier: str  #: resolving rung ("scatter-gather" on a cluster)
    rungs: Tuple[RungDecision, ...]
    modeled_seconds: float
    cells: int  #: size of the resolved cuboid, pre-transform
    deadline_exceeded: bool = False
    trace_id: str = ""  #: 32-hex trace id when the request was sampled

    def as_cuboid(self) -> Dict[GroupKey, float]:
        if not isinstance(self.payload, dict):
            raise InvalidQuery(
                f"{self.kind} result holds a cell value, not a cuboid"
            )
        return self.payload

    def as_cell(self) -> Optional[float]:
        if isinstance(self.payload, dict):
            raise InvalidQuery(
                f"{self.kind} result holds a cuboid, not a cell value"
            )
        return self.payload

    def to_dict(self) -> Dict[str, Any]:
        """The JSON wire form the HTTP layer returns."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "point": self.point,
            "version": list(self.version),
            "tier": self.tier,
            "modeled_seconds": self.modeled_seconds,
            "cells": self.cells,
            "deadline_exceeded": self.deadline_exceeded,
            "rungs": [decision.to_dict() for decision in self.rungs],
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if isinstance(self.payload, dict):
            out["groups"] = [
                {"key": list(key), "value": value}
                for key, value in sorted(
                    self.payload.items(),
                    key=lambda item: tuple(
                        (part is None, part) for part in item[0]
                    ),
                )
            ]
        else:
            out["value"] = self.payload
        return out


@dataclass(frozen=True)
class ShardPlan:
    """One shard's contribution to a cluster query plan."""

    shard: int
    replica: int  #: the healthy replica that would answer
    tier: str  #: the rung that replica's ladder would resolve at
    rungs: Tuple[RungDecision, ...] = ()


@dataclass(frozen=True)
class QueryExplanation:
    """The backend's plan for a query, without executing it.

    For a single server this wraps the sound-source ladder walk of
    :meth:`repro.serve.CubeServer.explain`; for a cluster it is the
    scatter plan — which replica each shard would ask, and the rung that
    replica would answer from — assembled from the replicas' own
    ladders.
    """

    backend: str  #: "serve" or "cluster"
    kind: str
    point: str
    version: Tuple[int, ...]
    tier: str
    rungs: Tuple[RungDecision, ...]
    shards: Tuple[ShardPlan, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "kind": self.kind,
            "point": self.point,
            "version": list(self.version),
            "tier": self.tier,
            "rungs": [decision.to_dict() for decision in self.rungs],
            "shards": [
                {
                    "shard": plan.shard,
                    "replica": plan.replica,
                    "tier": plan.tier,
                    "rungs": [
                        decision.to_dict() for decision in plan.rungs
                    ],
                }
                for plan in self.shards
            ],
        }


@runtime_checkable
class CubeBackend(Protocol):
    """What every cube-serving backend speaks: the serving contract.

    :class:`repro.serve.CubeServer` and
    :class:`repro.cluster.ClusterCoordinator` both satisfy it (enforced
    by a conformance test parametrized over the two), and the HTTP
    front door (:mod:`repro.server`) is written against it alone.
    """

    lattice: CubeLattice

    def query(self, query: Query) -> QueryResult:
        """Answer one :class:`Query` (the only read path)."""
        ...

    def explain_query(self, query: Query) -> QueryExplanation:
        """The plan for ``query``, without executing it."""
        ...

    def version_token(self) -> Tuple[int, ...]:
        """The current version token reads can be fenced against."""
        ...

    def insert(self, rows: Sequence[FactRow]) -> object:
        """Ingest delta facts; returns the backend's version token."""
        ...

    def delete(self, rows: Sequence[FactRow]) -> object:
        """Retract delta facts; returns the backend's version token."""
        ...


# ----------------------------------------------------------------------
# shared resolution helpers (used by both backends)
# ----------------------------------------------------------------------
def resolve_point_spec(lattice: CubeLattice, spec: PointSpec) -> LatticePoint:
    """Resolve a point spec against a lattice (:class:`InvalidQuery` on
    unknown axes/states or a point outside the lattice)."""
    if isinstance(spec, str):
        try:
            return lattice.point_by_description(spec)
        except KeyError as error:
            raise InvalidQuery(
                f"bad point description {spec!r}: "
                f"{error.args[0] if error.args else error}"
            ) from None
    point = tuple(spec)
    if len(point) != lattice.axis_count or not all(
        0 <= state < states.state_count
        for state, states in zip(point, lattice.axis_states)
    ):
        raise InvalidQuery(
            f"point {point!r} is not in this cube's lattice"
        )
    return point


def axis_index(lattice: CubeLattice, axis: str) -> int:
    """Position of a named axis (:class:`InvalidQuery` when unknown)."""
    for position, spec in enumerate(lattice.axes):
        if spec.name == axis:
            return position
    raise InvalidQuery(
        f"unknown axis {axis!r}; this cube has "
        f"{[spec.name for spec in lattice.axes]}"
    )


def drilldown_point(
    lattice: CubeLattice, point: LatticePoint, axis: str
) -> LatticePoint:
    """The target of a drilldown: one relaxation step *finer* on one
    axis (the smallest such predecessor, deterministically).

    :class:`InvalidQuery` when the axis is unknown or already at its
    finest (rigid) state.
    """
    position = axis_index(lattice, axis)
    candidates = sorted(
        finer
        for finer in lattice.predecessors(point)
        if finer[position] != point[position]
    )
    if not candidates:
        raise InvalidQuery(
            f"axis {axis!r} is already at its finest state at "
            f"{lattice.describe(point)}; cannot drill down"
        )
    return candidates[0]


def kept_axis_name(
    lattice: CubeLattice, point: LatticePoint, axis_index: int
) -> str:
    """Inverse of :func:`_kept_axis_index`: the axis name behind a
    kept-axis position (the coordinate system of the legacy positional
    ``slice``/``dice`` signatures)."""
    kept = lattice.kept_axes(point)
    if not 0 <= axis_index < len(kept):
        raise InvalidQuery(
            f"kept-axis index {axis_index} out of range for "
            f"{lattice.describe(point)} ({len(kept)} kept axes)"
        )
    return lattice.axes[kept[axis_index]].name


def _kept_axis_index(
    lattice: CubeLattice, point: LatticePoint, axis: str
) -> int:
    """Map an axis name to its index among the point's *kept* axes (the
    coordinate system of cuboid group keys)."""
    position = axis_index(lattice, axis)
    kept = lattice.kept_axes(point)
    if position not in kept:
        raise InvalidQuery(
            f"axis {axis!r} is dropped (LND) at "
            f"{lattice.describe(point)}; it has no key component to "
            f"filter on"
        )
    return kept.index(position)


def resolve_target(lattice: CubeLattice, query: Query) -> LatticePoint:
    """The lattice point a query actually reads (drilldown refines)."""
    point = resolve_point_spec(lattice, query.point)
    if query.kind == "drilldown":
        assert query.axis is not None  # enforced by __post_init__
        return drilldown_point(lattice, point, query.axis)
    return point


def check_read_version(
    requested: Optional[Tuple[int, ...]], answered: Tuple[int, ...]
) -> None:
    """Enforce a read-your-writes floor: every component of the
    answered token must have caught up to the requested one."""
    if requested is None:
        return
    if len(requested) != len(answered):
        raise InvalidQuery(
            f"read_version has {len(requested)} component(s); this "
            f"backend's version token has {len(answered)}"
        )
    if any(have < want for have, want in zip(answered, requested)):
        raise StaleVersion(requested, answered)


def finish_query(
    lattice: CubeLattice,
    query: Query,
    point: LatticePoint,
    cuboid: Dict[GroupKey, float],
    version: Tuple[int, ...],
    tier: str,
    rungs: Tuple[RungDecision, ...],
    modeled_seconds: float,
) -> QueryResult:
    """Apply the query's kind-specific view of the resolved cuboid and
    wrap it in the result envelope (shared by both backends)."""
    from repro.core.rollup import dice_cuboid, slice_cuboid

    check_read_version(query.read_version, version)
    payload: Union[Dict[GroupKey, float], float, None]
    if query.kind == "cell":
        assert query.key is not None
        payload = cuboid.get(query.key)
    elif query.kind == "slice":
        assert query.axis is not None and query.value is not None
        payload = slice_cuboid(
            cuboid,
            _kept_axis_index(lattice, point, query.axis),
            query.value,
        )
    elif query.kind == "dice":
        predicates = {
            _kept_axis_index(lattice, point, axis): values
            for axis, values in query.filters
        }
        payload = dice_cuboid(cuboid, predicates)
    else:  # aggregate / drilldown: the cuboid itself
        payload = cuboid
    return QueryResult(
        kind=query.kind,
        point=lattice.describe(point),
        payload=payload,
        version=version,
        tier=tier,
        rungs=rungs,
        modeled_seconds=modeled_seconds,
        cells=len(cuboid),
        deadline_exceeded=(
            query.deadline_seconds is not None
            and modeled_seconds > query.deadline_seconds
        ),
    )
