"""Cube results and the top-level ``compute_cube`` entry point."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.bindings import FactTable, GroupKey
from repro.core.groupby import Cuboid
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.errors import CubeError


@dataclass
class CubeResult:
    """The full cube: one cuboid per lattice point, plus run metadata.

    Attributes:
        lattice: the lattice the cube was computed over.
        cuboids: point -> (group key -> aggregate value).
        algorithm: name of the algorithm that produced it.
        cost: cost-model snapshot taken right after the run.
        passes: number of data passes (COUNTER reports thrashing here).
    """

    lattice: CubeLattice
    cuboids: Dict[LatticePoint, Cuboid]
    algorithm: str = ""
    cost: Dict[str, float] = field(default_factory=dict)
    passes: int = 1
    aggregate: str = "COUNT"

    # ------------------------------------------------------------------
    def cuboid(self, point: LatticePoint) -> Cuboid:
        try:
            return self.cuboids[point]
        except KeyError:
            raise CubeError(
                f"no cuboid at {self.lattice.describe(point)}"
            ) from None

    def cuboid_by_description(self, text: str) -> Cuboid:
        return self.cuboid(self.lattice.point_by_description(text))

    def cell(self, point: LatticePoint, key: GroupKey) -> Optional[float]:
        return self.cuboids.get(point, {}).get(key)

    def total_cells(self) -> int:
        return sum(len(cuboid) for cuboid in self.cuboids.values())

    @property
    def simulated_seconds(self) -> float:
        return float(self.cost.get("simulated_seconds", 0.0))

    # ------------------------------------------------------------------
    def same_contents(self, other: "CubeResult", tol: float = 1e-9) -> bool:
        """Value equality of every cuboid (used to validate algorithms)."""
        if set(self.cuboids) != set(other.cuboids):
            return False
        for point, cuboid in self.cuboids.items():
            other_cuboid = other.cuboids[point]
            if set(cuboid) != set(other_cuboid):
                return False
            for key, value in cuboid.items():
                if abs(value - other_cuboid[key]) > tol:
                    return False
        return True

    def diff(self, other: "CubeResult") -> List[str]:
        """Human-readable differences (first few) for test messages."""
        out: List[str] = []
        for point in self.cuboids:
            mine = self.cuboids.get(point, {})
            theirs = other.cuboids.get(point, {})
            for key in set(mine) | set(theirs):
                left, right = mine.get(key), theirs.get(key)
                if left != right:
                    out.append(
                        f"{self.lattice.describe(point)} {key}: "
                        f"{left} != {right}"
                    )
                    if len(out) >= 10:
                        return out
        return out

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {len(self.cuboids)} cuboids, "
            f"{self.total_cells()} cells, "
            f"{self.simulated_seconds:.3f} sim-s, passes={self.passes}"
        )


def compute_cube(
    table: FactTable,
    algorithm: str = "NAIVE",
    oracle: Optional[PropertyOracle] = None,
    memory_entries: Optional[int] = None,
    points: Optional[Sequence[LatticePoint]] = None,
    min_support: float = 0.0,
) -> CubeResult:
    """Compute the cube of an extracted fact table.

    Args:
        table: the annotated fact table (see
            :func:`repro.core.extract.extract_fact_table`).
        algorithm: one of the registered algorithm names
            (see :func:`repro.core.algorithms.registry.available`).
        oracle: property oracle for the optimized/customized variants;
            defaults to the pessimistic oracle (no property assumed).
        memory_entries: operator memory budget (entries); defaults to a
            budget that comfortably fits small cubes.
        points: restrict computation to these lattice points (default:
            the whole lattice).
        min_support: iceberg threshold — only groups with COUNT >= this
            value are reported; BUC additionally prunes its recursion
            (COUNT is monotone under refinement).  COUNT cubes only.
    """
    from repro.core.algorithms.registry import get_algorithm

    return get_algorithm(algorithm).run(
        table,
        oracle=oracle,
        memory_entries=memory_entries,
        points=points,
        min_support=min_support,
    )
