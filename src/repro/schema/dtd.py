"""A DTD-flavoured schema model.

We keep exactly the information the paper's property inference (Sec. 3.7)
needs: for each element type, which child element types it may contain and
with what cardinality, plus attribute declarations.  Content *order* and
alternation groups are not modelled — they do not affect summarizability.

Cardinality follows the DTD occurrence indicators:

- ``ONE``      (no indicator)  exactly one,
- ``OPTIONAL`` (``?``)         zero or one,
- ``STAR``     (``*``)         zero or more,
- ``PLUS``     (``+``)         one or more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SchemaError


class Cardinality(Enum):
    """DTD occurrence indicator for a child element type."""

    ONE = ""
    OPTIONAL = "?"
    STAR = "*"
    PLUS = "+"

    @property
    def may_be_absent(self) -> bool:
        """Can a conforming parent lack this child entirely?"""
        return self in (Cardinality.OPTIONAL, Cardinality.STAR)

    @property
    def may_repeat(self) -> bool:
        """Can a conforming parent have more than one such child?"""
        return self in (Cardinality.STAR, Cardinality.PLUS)

    @staticmethod
    def from_indicator(indicator: str) -> "Cardinality":
        for card in Cardinality:
            if card.value == indicator:
                return card
        raise SchemaError(f"unknown occurrence indicator {indicator!r}")

    @staticmethod
    def join(first: "Cardinality", second: "Cardinality") -> "Cardinality":
        """Least upper bound: the loosest constraint covering both."""
        absent = first.may_be_absent or second.may_be_absent
        repeat = first.may_repeat or second.may_repeat
        if absent and repeat:
            return Cardinality.STAR
        if absent:
            return Cardinality.OPTIONAL
        if repeat:
            return Cardinality.PLUS
        return Cardinality.ONE


@dataclass
class AttributeDecl:
    """An attribute declaration (name, required?)."""

    name: str
    required: bool = False


@dataclass
class ElementDecl:
    """Declaration of one element type.

    Attributes:
        tag: element type name.
        children: child tag -> cardinality.
        attributes: attribute name -> declaration.
        has_text: whether #PCDATA is allowed.
    """

    tag: str
    children: Dict[str, Cardinality] = field(default_factory=dict)
    attributes: Dict[str, AttributeDecl] = field(default_factory=dict)
    has_text: bool = False

    def child_cardinality(self, tag: str) -> Optional[Cardinality]:
        return self.children.get(tag)

    def allows_child(self, tag: str) -> bool:
        return tag in self.children


class Dtd:
    """A set of element declarations with path-level reasoning helpers."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        self._decls: Dict[str, ElementDecl] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare(self, decl: ElementDecl) -> ElementDecl:
        """Add (or replace) an element declaration."""
        self._decls[decl.tag] = decl
        if self.root is None:
            self.root = decl.tag
        return decl

    def declare_element(
        self,
        tag: str,
        children: Optional[Iterable[Tuple[str, Cardinality]]] = None,
        has_text: bool = False,
        attributes: Optional[Iterable[str]] = None,
    ) -> ElementDecl:
        """Convenience builder used by tests and data generators."""
        decl = ElementDecl(tag, has_text=has_text)
        for child_tag, card in children or ():
            decl.children[child_tag] = card
        for attr in attributes or ():
            decl.attributes[attr] = AttributeDecl(attr)
        return self.declare(decl)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, tag: str) -> Optional[ElementDecl]:
        return self._decls.get(tag)

    def __contains__(self, tag: str) -> bool:
        return tag in self._decls

    @property
    def tags(self) -> List[str]:
        return list(self._decls)

    # ------------------------------------------------------------------
    # path reasoning (used by Sec. 3.7 property inference)
    # ------------------------------------------------------------------
    def child_paths(self, from_tag: str, to_tag: str) -> bool:
        """Is ``to_tag`` declared as a direct child of ``from_tag``?"""
        decl = self.get(from_tag)
        return bool(decl and decl.allows_child(to_tag))

    def reachable_tags(self, from_tag: str, max_hops: int = 64) -> Set[str]:
        """All tags reachable from ``from_tag`` through declared children."""
        out: Set[str] = set()
        frontier = [from_tag]
        hops = 0
        while frontier and hops < max_hops:
            next_frontier: List[str] = []
            for tag in frontier:
                decl = self.get(tag)
                if decl is None:
                    continue
                for child in decl.children:
                    if child not in out:
                        out.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
            hops += 1
        return out

    def descendant_step_cardinality(
        self, from_tag: str, to_tag: str, max_depth: int = 16
    ) -> Optional[Cardinality]:
        """Cardinality of ``from_tag//to_tag`` implied by the declarations.

        Walks every declared downward path from ``from_tag`` to ``to_tag``
        of length <= ``max_depth``; the result joins the per-path products
        and accounts for multiple distinct paths (which make the step
        repeatable).  Returns None when ``to_tag`` is unreachable.
        Recursive schemas that can reach ``to_tag`` through a cycle are
        conservatively reported as ``STAR``.
        """
        paths = self._paths_between(from_tag, to_tag, max_depth)
        if paths is None:
            return Cardinality.STAR  # cycle encountered: be conservative
        if not paths:
            return None
        per_path: List[Cardinality] = []
        for path in paths:
            product = Cardinality.ONE
            for card in path:
                product = _sequence_product(product, card)
            per_path.append(product)
        result = per_path[0]
        for card in per_path[1:]:
            # Two alternative routes both existing means values can repeat;
            # join then upgrade repetition.
            result = Cardinality.join(result, card)
            repeat = (
                Cardinality.STAR
                if result.may_be_absent
                else Cardinality.PLUS
            )
            result = Cardinality.join(result, repeat)
        return result

    def _paths_between(
        self, from_tag: str, to_tag: str, max_depth: int
    ) -> Optional[List[List[Cardinality]]]:
        """Cardinality sequences of every declared path from/to; None on
        cycles that reach ``to_tag``."""
        paths: List[List[Cardinality]] = []
        saw_cycle = [False]

        def walk(tag: str, trail: List[Cardinality], visited: Tuple[str, ...]) -> None:
            if len(trail) > max_depth:
                return
            decl = self.get(tag)
            if decl is None:
                return
            for child, card in decl.children.items():
                if child == to_tag:
                    paths.append(trail + [card])
                if child in visited:
                    if to_tag in self.reachable_tags(child) or child == to_tag:
                        saw_cycle[0] = True
                    continue
                walk(child, trail + [card], visited + (child,))

        walk(from_tag, [], (from_tag,))
        if saw_cycle[0]:
            return None
        return paths

    def unique_path(self, from_tag: str, to_tag: str) -> bool:
        """True when every declared path from ``from_tag`` to ``to_tag``
        goes through the same tag sequence (used for SP-equivalence: e.g.
        'every path from publication to name goes through author')."""
        paths = self._tag_paths_between(from_tag, to_tag, max_depth=16)
        return len(paths) == 1

    def _tag_paths_between(
        self, from_tag: str, to_tag: str, max_depth: int
    ) -> List[Tuple[str, ...]]:
        paths: List[Tuple[str, ...]] = []

        def walk(tag: str, trail: Tuple[str, ...]) -> None:
            if len(trail) > max_depth:
                return
            decl = self.get(tag)
            if decl is None:
                return
            for child in decl.children:
                if child == to_tag:
                    paths.append(trail + (child,))
                if child not in trail and child != to_tag:
                    walk(child, trail + (child,))

        walk(from_tag, ())
        return paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dtd root={self.root!r} elements={len(self._decls)}>"


def _sequence_product(outer: Cardinality, inner: Cardinality) -> Cardinality:
    """Cardinality of a two-step path: outer child then inner child."""
    absent = outer.may_be_absent or inner.may_be_absent
    repeat = outer.may_repeat or inner.may_repeat
    if absent and repeat:
        return Cardinality.STAR
    if absent:
        return Cardinality.OPTIONAL
    if repeat:
        return Cardinality.PLUS
    return Cardinality.ONE
