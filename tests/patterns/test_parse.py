"""Unit tests for the tree-pattern textual syntax."""

import pytest

from repro.errors import PatternParseError
from repro.patterns.parse import parse_pattern, parse_steps
from repro.patterns.pattern import EdgeAxis


class TestParsePattern:
    def test_bare_name(self):
        pattern = parse_pattern("publication")
        assert pattern.root.test == "publication"
        assert pattern.root_axis is EdgeAxis.CHILD

    def test_double_slash_root(self):
        pattern = parse_pattern("//publication")
        assert pattern.root_axis is EdgeAxis.DESCENDANT

    def test_spine(self):
        pattern = parse_pattern("//a/b//c")
        b = pattern.root.children[0]
        c = b.children[0]
        assert b.axis is EdgeAxis.CHILD
        assert c.axis is EdgeAxis.DESCENDANT

    def test_predicates(self):
        pattern = parse_pattern("//a[/b][.//c]")
        tests = [child.test for child in pattern.root.children]
        axes = [child.axis for child in pattern.root.children]
        assert tests == ["b", "c"]
        assert axes == [EdgeAxis.CHILD, EdgeAxis.DESCENDANT]

    def test_dot_slash_predicate(self):
        pattern = parse_pattern("publication[./author][.//name]")
        axes = [child.axis for child in pattern.root.children]
        assert axes == [EdgeAxis.CHILD, EdgeAxis.DESCENDANT]

    def test_labels(self):
        pattern = parse_pattern("//a[/b=$x]/c=$y")
        assert set(pattern.labelled()) == {"$x", "$y"}

    def test_optional_flag(self):
        pattern = parse_pattern("//a/b?")
        assert pattern.root.children[0].optional

    def test_attribute_leaf(self):
        pattern = parse_pattern("//a[/@id=$i]")
        leaf = pattern.root.children[0]
        assert leaf.is_attribute and leaf.label == "$i"

    def test_nested_predicates(self):
        pattern = parse_pattern("//a[/b[/c][/d]]/e")
        b = pattern.root.children[0]
        assert [child.test for child in b.children] == ["c", "d"]
        assert pattern.root.children[1].test == "e"

    def test_query1_shape(self):
        text = "//publication[/@id][/author/name=$n][//publisher/@id=$p][/year=$y]"
        pattern = parse_pattern(text)
        assert pattern.size() == 7
        assert set(pattern.labelled()) == {"$n", "$p", "$y"}

    @pytest.mark.parametrize(
        "bad",
        ["", "//", "//a[", "//a]", "//a[/b", "//a/", "//a[=$x]", "//a b"],
    )
    def test_malformed(self, bad):
        with pytest.raises(PatternParseError):
            parse_pattern(bad)


class TestParseSteps:
    def test_child_chain(self):
        steps = parse_steps("author/name")
        assert steps == [
            (EdgeAxis.CHILD, "author"), (EdgeAxis.CHILD, "name"),
        ]

    def test_leading_descendant(self):
        steps = parse_steps("//publisher/@id")
        assert steps == [
            (EdgeAxis.DESCENDANT, "publisher"), (EdgeAxis.CHILD, "@id"),
        ]

    def test_attribute_must_be_last(self):
        with pytest.raises(PatternParseError):
            parse_steps("a/@id/b")

    def test_single_attribute(self):
        assert parse_steps("@id") == [(EdgeAxis.CHILD, "@id")]
