"""Fig. 6 — dense cubes, 10^5 trees, coverage fails / disjointness holds.

The paper's DNF observation (COUNTER/TD/TDOPT could not finish 7 axes in
10,000 s) appears here as the axis-count blow-up assertion: their cost
grows much faster than BUC's between 3 and 5 axes.
"""

import pytest

from benchmarks.conftest import PreparedWorkload, bench_once
from repro.datagen.workload import WorkloadConfig

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_algorithm(benchmark, dense_nocov_disj, algorithm):
    result = bench_once(benchmark, lambda: dense_nocov_disj.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    benchmark.extra_info["passes"] = result.passes
    assert result.total_cells() > 0


def test_fig6_shape(dense_nocov_disj):
    sim = {name: dense_nocov_disj.simulated(name) for name in ALGORITHMS}
    # TD family melts down; BUC survives.
    assert sim["TD"] > 5 * sim["BUC"]
    assert sim["TDOPT"] > sim["BUC"]


def test_fig6_axis_blowup():
    """TD's growth rate between 3 and 5 axes far exceeds BUC's — the
    mechanism behind the paper's 7-axis DNFs."""

    def prepared(n_axes):
        return PreparedWorkload(
            WorkloadConfig(
                kind="treebank",
                n_facts=150,
                n_axes=n_axes,
                density="dense",
                coverage=False,
                disjoint=True,
            )
        )

    small, large = prepared(3), prepared(5)
    td_growth = large.simulated("TD") / small.simulated("TD")
    buc_growth = large.simulated("BUC") / small.simulated("BUC")
    assert td_growth > 2 * buc_growth


def test_fig6_counter_thrashes_at_high_axes():
    workload = PreparedWorkload(
        WorkloadConfig(
            kind="treebank",
            n_facts=300,
            n_axes=5,
            density="dense",
            coverage=False,
            disjoint=True,
        )
    )
    assert workload.run("COUNTER").passes > 1
