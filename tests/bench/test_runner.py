"""Unit tests for the x3-bench CLI."""

from repro.bench.runner import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["--figure", "fig4"])
        assert args.figure == "fig4"

    def test_defaults(self):
        args = build_parser().parse_args(["--all"])
        assert args.scale == 1.0
        assert args.memory is None
        assert not args.validate


class TestMain:
    def test_no_selection_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_single_figure_runs(self, capsys):
        code = main(["--figure", "fig4", "--scale", "0.25", "--axes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "BUC" in out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "runs.csv"
        code = main(
            [
                "--figure", "fig4", "--scale", "0.25", "--axes", "2",
                "--csv", str(target),
            ]
        )
        assert code == 0
        content = target.read_text()
        assert content.startswith("workload,algorithm")
        assert "BUC" in content


class TestScalingFlag:
    def test_scaling_runs(self, capsys, monkeypatch):
        from repro.bench import scaling as scaling_module

        original = scaling_module.run_scaling

        def tiny_scaling(**kwargs):
            return original(
                scales=(40, 80), n_axes=2,
                algorithms=("BUC",), memory_entries=2000,
            )

        monkeypatch.setattr(scaling_module, "run_scaling", tiny_scaling)
        assert main(["--scaling"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out
        assert "BUC" in out


class TestTraceOut:
    def test_figure_run_writes_chrome_trace(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        code = main(
            [
                "--figure", "fig4", "--scale", "0.25", "--axes", "2",
                "--trace-out", str(target),
            ]
        )
        assert code == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        document = json.loads(target.read_text())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert events
        categories = {e["cat"] for e in events}
        assert "algorithm" in categories and "engine" in categories


class TestTraceValidation:
    def test_valid_trace_accepted(self, tmp_path, capsys):
        from repro.bench.runner import validate_trace_file

        target = tmp_path / "trace.json"
        target.write_text(
            '{"traceEvents": [{"ph": "X", "name": "s", "cat": "c",'
            ' "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}'
        )
        assert validate_trace_file(str(target)) is None
        assert "smoke trace OK: 1 spans" in capsys.readouterr().out

    def test_malformed_json_rejected(self, tmp_path):
        from repro.bench.runner import validate_trace_file

        target = tmp_path / "trace.json"
        target.write_text("{not json")
        assert "not valid JSON" in validate_trace_file(str(target))

    def test_missing_file_rejected(self, tmp_path):
        from repro.bench.runner import validate_trace_file

        problem = validate_trace_file(str(tmp_path / "absent.json"))
        assert "cannot read" in problem

    def test_empty_trace_rejected(self, tmp_path):
        from repro.bench.runner import validate_trace_file

        target = tmp_path / "trace.json"
        target.write_text('{"traceEvents": []}')
        assert "no complete spans" in validate_trace_file(str(target))

    def test_wrong_shape_rejected(self, tmp_path):
        from repro.bench.runner import validate_trace_file

        target = tmp_path / "trace.json"
        target.write_text('{"spans": 3}')
        assert "traceEvents" in validate_trace_file(str(target))

    def test_smoke_with_trace_out_validates(self, tmp_path, capsys):
        target = tmp_path / "smoke-trace.json"
        assert main(["--smoke", "--trace-out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "smoke trace OK" in out
