"""The ``x3-bench`` command line interface.

Examples::

    x3-bench --figure fig5                 # one figure, default scale
    x3-bench --all                         # every figure
    x3-bench --figure fig6 --scale 2 --axes 2 3 4 5 6 7
    x3-bench --figure fig10 --validate     # also check against NAIVE
    x3-bench --all --csv results.csv
    x3-bench --figure fig6 --workers 4 --engine thread
    x3-bench --smoke                       # CI smoke: serial vs parallel

Also runnable as ``python -m repro.bench.runner``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Union

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import (
    DUEL_FACTS,
    AlgorithmRun,
    run_buc_td_duel,
    run_columnar_duel,
    run_smoke,
)
from repro.bench.report import format_figure, format_runs_csv, format_smoke
from repro.core.cube import ENGINE_CHOICES

#: Version tag stamped into every ``BENCH_<name>.json`` artifact.
BENCH_ARTIFACT_SCHEMA = "x3-bench/v1"


def bench_artifact_path(
    name: str, root: Union[str, pathlib.Path, None] = None
) -> pathlib.Path:
    """The canonical path of one bench artifact: ``BENCH_<name>.json``.

    ``root`` defaults to the current working directory (CI runs every
    tool from the repository root); benchmark tests pass the repo root
    explicitly.
    """
    base = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    return base / f"BENCH_{name}.json"


def write_bench_artifact(
    name: str,
    payload: Dict[str, Any],
    root: Union[str, pathlib.Path, None] = None,
) -> pathlib.Path:
    """Write one benchmark artifact under the unified naming scheme.

    Every benchmark writer in the repository — the engine smoke, the
    figure sweeps, the serve and cluster benchmark suites, the perf
    gate — routes its JSON output through here so artifacts share one
    name pattern (``BENCH_<name>.json``), one schema tag and one
    serialization (sorted keys would churn diffs: insertion order is
    kept, matching how each payload is assembled).
    """
    path = bench_artifact_path(name, root)
    document = {
        "artifact": name,
        "schema": BENCH_ARTIFACT_SCHEMA,
        **payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path


def runs_payload(runs: List[AlgorithmRun]) -> Dict[str, Any]:
    """A JSON-ready payload for a list of algorithm runs."""
    return {"runs": [run.as_row() for run in runs]}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-bench",
        description=(
            "Regenerate the evaluation figures of 'X^3: A Cube Operator"
            " for XML OLAP' (ICDE 2007)."
        ),
    )
    parser.add_argument(
        "--figure",
        choices=sorted(FIGURES),
        help="run a single figure",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every figure"
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="run the Sec. 4.4 scaling experiment",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="fact-count multiplier (default 1.0)",
    )
    parser.add_argument(
        "--axes",
        type=int,
        nargs="+",
        help="restrict the axis sweep (e.g. --axes 2 3 4)",
    )
    parser.add_argument(
        "--memory",
        type=int,
        default=None,
        help="operator memory budget in entries (default: per figure)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check every run against the NAIVE oracle",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size for the parallel engine (default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine (default auto: serial for 1 worker,"
        " thread pool otherwise)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke benchmark (serial vs parallel on a small"
        " workload) and exit non-zero on any result mismatch",
    )
    parser.add_argument(
        "--duel-facts",
        type=int,
        default=DUEL_FACTS,
        metavar="N",
        help="fact count for the columnar-vs-dict duel appended to the"
        f" smoke run (default {DUEL_FACTS}; 0 disables the duel)",
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        help="write the run's BENCH_<name>.json artifact into DIR"
        " (BENCH_engine.json for --smoke, BENCH_figures.json for"
        " figure runs) via the unified artifact scheme",
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="also dump all runs as CSV"
    )
    parser.add_argument(
        "--dat",
        metavar="DIR",
        help="also write gnuplot-ready .dat series per figure",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace the whole benchmark run and write a Chrome"
        " trace_event JSON file (chrome://tracing / Perfetto)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace_out:
        from repro import obs

        with obs.trace() as tracer:
            status = _run(args)
        report = tracer.trace()
        report.write_chrome(args.trace_out)
        print(
            f"wrote Chrome trace ({len(report.records)} spans) to"
            f" {args.trace_out}"
        )
        problem = validate_trace_file(args.trace_out)
        if problem is not None:
            print(f"trace INVALID: {problem}", file=sys.stderr)
            return 1
        return status
    return _run(args)


def validate_trace_file(path: str) -> Optional[str]:
    """Check a written Chrome trace is well-formed and non-trivial.

    Returns ``None`` when the file holds at least one complete
    (``ph == "X"``) span, otherwise a description of the problem.  This
    is the gate CI relies on: a benchmark run that silently produced an
    empty or malformed trace must fail the job, not upload garbage.
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        return f"cannot read {path}: {error}"
    except json.JSONDecodeError as error:
        return f"{path} is not valid JSON: {error}"
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return f"{path} has no traceEvents array"
    spans = [
        event
        for event in events
        if isinstance(event, dict) and event.get("ph") == "X"
    ]
    if not spans:
        return f"{path} contains no complete spans"
    print(f"smoke trace OK: {len(spans)} spans")
    return None


def _run(args: argparse.Namespace) -> int:
    if args.smoke:
        runs = run_smoke(workers=max(2, args.workers))
        print(format_smoke(runs))
        duel_summary: Optional[Dict[str, Any]] = None
        buc_td_summary: Optional[Dict[str, Any]] = None
        if args.duel_facts > 0:
            duel_runs, duel_summary = run_columnar_duel(args.duel_facts)
            runs.extend(duel_runs)
            print(
                "columnar duel @ {facts} facts: modeled {modeled}x,"
                " wall {wall}x vs COUNTER (identical={identical})".format(
                    facts=duel_summary["facts"],
                    modeled=duel_summary["modeled_speedup"],
                    wall=duel_summary["wall_speedup"],
                    identical=duel_summary["identical"],
                )
            )
            buc_td_runs, buc_td_summary = run_buc_td_duel(args.duel_facts)
            runs.extend(buc_td_runs)
            for name in ("buc", "td"):
                print(
                    "{algo} duel @ {facts} facts: modeled {modeled}x,"
                    " wall {wall}x vs dict kernel"
                    " (identical={identical})".format(
                        algo=name.upper(),
                        facts=buc_td_summary["facts"],
                        modeled=buc_td_summary[f"{name}_modeled_speedup"],
                        wall=buc_td_summary[f"{name}_wall_speedup"],
                        identical=buc_td_summary[f"{name}_identical"],
                    )
                )
        if args.artifact_dir:
            payload = runs_payload(runs)
            if duel_summary is not None:
                payload["columnar_duel"] = duel_summary
            if buc_td_summary is not None:
                payload["buc_td_duel"] = buc_td_summary
            path = write_bench_artifact("engine", payload, args.artifact_dir)
            print(f"wrote {path}")
        failed = [run for run in runs if run.correct is False]
        if failed:
            names = sorted({run.algorithm for run in failed})
            print(
                f"smoke FAILED: wrong results from {', '.join(names)}",
                file=sys.stderr,
            )
            return 1
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(format_runs_csv(runs) + "\n")
            print(f"wrote {len(runs)} runs to {args.csv}")
        return 0
    if not args.figure and not args.all and not args.scaling:
        build_parser().print_help()
        return 2
    if args.scaling:
        from repro.bench.scaling import format_scaling, run_scaling

        print(format_scaling(run_scaling()))
        print()
        if not args.figure and not args.all:
            return 0
    figure_ids = sorted(FIGURES) if args.all else [args.figure]
    all_runs: List[AlgorithmRun] = []
    for figure_id in figure_ids:
        spec, runs = run_figure(
            figure_id,
            scale=args.scale,
            axes=args.axes,
            memory_entries=args.memory,
            validate=args.validate,
            workers=args.workers,
            engine=args.engine,
        )
        all_runs.extend(runs)
        print(format_figure(spec, runs))
        print()
        if args.dat:
            from repro.bench.plots import write_figure_dat

            path = write_figure_dat(args.dat, spec, runs)
            print(f"wrote {path}")
    if args.artifact_dir and all_runs:
        payload = {"figures": figure_ids, **runs_payload(all_runs)}
        path = write_bench_artifact(
            "figures", payload, args.artifact_dir
        )
        print(f"wrote {path}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(format_runs_csv(all_runs) + "\n")
        print(f"wrote {len(all_runs)} runs to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
