"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — the shared most-relaxed-pattern evaluation: extracting the annotated
     fact table once is far cheaper than matching a separate relaxed
     pattern per lattice point (the Sec. 3.4 argument for Fig. 2).
A2 — identity tracking: what the fact-id bookkeeping costs when
     disjointness actually holds (BUC vs BUCOPT, TD vs TDOPT).
A3 — buffer sensitivity: the memory budget drives external-sort I/O in
     the TD family.
"""

import pytest

from benchmarks.conftest import bench_once
from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.datagen.workload import WorkloadConfig, build_workload
from repro.patterns.match import match_document
from repro.patterns.relaxation import most_relaxed_pattern


@pytest.fixture(scope="module")
def clean_workload():
    return build_workload(
        WorkloadConfig(
            kind="treebank",
            n_facts=200,
            n_axes=3,
            density="dense",
            coverage=True,
            disjoint=True,
        )
    )


class TestA1SharedExtraction:
    def test_shared_extraction(self, benchmark, clean_workload):
        """One annotated extraction feeds every cuboid."""
        result = bench_once(
            benchmark,
            lambda: extract_fact_table(
                clean_workload.documents, clean_workload.query
            ),
        )
        assert len(result) == 200

    def test_per_cuboid_matching_is_slower(self, clean_workload):
        """Matching the pattern separately per lattice point does
        lattice-size times the work of the one shared extraction."""
        import time

        begin = time.perf_counter()
        extract_fact_table(clean_workload.documents, clean_workload.query)
        shared = time.perf_counter() - begin

        pattern = most_relaxed_pattern(
            clean_workload.query.rigid_pattern(),
            clean_workload.query.relaxation_specs(),
        )
        lattice_size = clean_workload.query.lattice().size()
        begin = time.perf_counter()
        for _ in range(lattice_size):
            for doc in clean_workload.documents:
                match_document(doc, pattern)
        per_cuboid = time.perf_counter() - begin
        assert per_cuboid > shared


class TestA2IdentityTracking:
    def test_identity_tracking(self, benchmark, clean_workload):
        table = clean_workload.fact_table()
        safe = bench_once(benchmark, lambda: compute_cube(table, "BUC"))
        fast = compute_cube(table, "BUCOPT")
        # The bookkeeping is pure overhead when disjointness holds.
        assert fast.simulated_seconds < safe.simulated_seconds
        assert fast.same_contents(safe)

    def test_td_identity_overhead(self, clean_workload):
        table = clean_workload.fact_table()
        td = compute_cube(table, "TD")
        tdopt = compute_cube(table, "TDOPT")
        assert tdopt.simulated_seconds < td.simulated_seconds


class TestA3BufferSensitivity:
    @pytest.mark.parametrize("memory_entries", [64, 1024, 100_000])
    def test_buffer_sensitivity(self, benchmark, clean_workload, memory_entries):
        table = clean_workload.fact_table()
        result = bench_once(
            benchmark,
            lambda: compute_cube(
                table, "TD", memory_entries=memory_entries
            ),
        )
        benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
        benchmark.extra_info["page_writes"] = result.cost["page_writes"]

    def test_io_monotone_in_budget(self, clean_workload):
        table = clean_workload.fact_table()
        tight = compute_cube(table, "TD", memory_entries=64)
        roomy = compute_cube(table, "TD", memory_entries=100_000)
        assert tight.cost["page_writes"] > roomy.cost["page_writes"]
        assert tight.simulated_seconds > roomy.simulated_seconds
        assert tight.same_contents(roomy)


class TestCounterMemorySweep:
    """Sec. 4.6's memory ceiling (the paper's 2 GB Windows limit) as a
    sweep: shrinking the counter budget multiplies passes and I/O."""

    @pytest.mark.parametrize("memory_entries", [400, 2000, 100_000])
    def test_counter_memory(self, benchmark, clean_workload, memory_entries):
        table = clean_workload.fact_table()
        result = bench_once(
            benchmark,
            lambda: compute_cube(
                table, "COUNTER", memory_entries=memory_entries
            ),
        )
        benchmark.extra_info["passes"] = result.passes

    def test_passes_monotone_in_memory(self, clean_workload):
        table = clean_workload.fact_table()
        passes = [
            compute_cube(
                table, "COUNTER", memory_entries=memory
            ).passes
            for memory in (400, 2000, 100_000)
        ]
        assert passes[0] >= passes[1] >= passes[2] == 1
        results = [
            compute_cube(table, "COUNTER", memory_entries=memory)
            for memory in (400, 100_000)
        ]
        assert results[0].same_contents(results[1])
