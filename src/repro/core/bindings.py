"""The annotated fact table: what one evaluation of the most relaxed
fully instantiated pattern materializes (paper Sec. 3.4 / Sec. 4, "we
pre-evaluated the query tree pattern, and materialized the results").

Each :class:`FactRow` is one fact (one match of the fact binding) with,
per axis, the list of :class:`AnnotatedValue`s: a grouping value plus a
bitmask over the axis's structural states saying under which states the
value binds.  All cube algorithms consume this table; none of them goes
back to the raw documents (exactly the paper's measurement protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.lattice import CubeLattice, LatticePoint

GroupKey = Tuple[Optional[str], ...]


@dataclass(frozen=True)
class AnnotatedValue:
    """One axis binding of one fact.

    Attributes:
        value: the grouping value (element text or attribute value).
        mask: bit ``i`` set iff the value binds under structural state
            index ``i`` of the axis (monotone upward: a value matching a
            state also matches every superset state).
    """

    value: str
    mask: int

    def matches(self, state_index: int) -> bool:
        return bool(self.mask & (1 << state_index))


@dataclass(frozen=True)
class FactRow:
    """One fact with annotated bindings for every axis."""

    fact_id: Tuple[int, int]
    measure: float
    axes: Tuple[Tuple[AnnotatedValue, ...], ...]

    def values_under(self, axis_position: int, state_index: int) -> List[str]:
        """Distinct values the axis binds under the given structural state."""
        seen = set()
        out: List[str] = []
        for annotated in self.axes[axis_position]:
            if annotated.matches(state_index) and annotated.value not in seen:
                seen.add(annotated.value)
                out.append(annotated.value)
        return out


class FactTable:
    """The materialized, annotated input of cube computation."""

    def __init__(
        self,
        lattice: CubeLattice,
        rows: Sequence[FactRow],
        aggregate: Optional["AggregateSpec"] = None,
    ) -> None:
        from repro.core.aggregates import AggregateSpec

        self.lattice = lattice
        self.rows: List[FactRow] = list(rows)
        self.aggregate: "AggregateSpec" = aggregate or AggregateSpec()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[FactRow]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # membership / keys at a lattice point
    # ------------------------------------------------------------------
    def key_combinations(
        self, row: FactRow, point: LatticePoint
    ) -> List[GroupKey]:
        """All group keys the fact contributes to at a lattice point.

        The key has one component per *kept* axis.  A fact with several
        values on a kept axis contributes the cross product of values
        (the paper's combinatorial incrementing, Sec. 3.3); a fact with
        *no* value on a kept axis contributes nothing (the coverage gap).
        """
        per_axis: List[List[str]] = []
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            values = row.values_under(position, state)
            if not values:
                return []
            per_axis.append(values)
        if not per_axis:
            return [()]
        keys: List[GroupKey] = [()]
        for values in per_axis:
            keys = [key + (value,) for key in keys for value in values]
        return keys

    def participates(self, row: FactRow, point: LatticePoint) -> bool:
        """Does the fact appear in any group of the cuboid at ``point``?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            if not row.values_under(position, state):
                return False
        return True

    # ------------------------------------------------------------------
    # observed summarizability (ground truth for experiments and tests)
    # ------------------------------------------------------------------
    def observed_disjointness(self, point: LatticePoint) -> bool:
        """True iff no fact lands in two groups of this cuboid."""
        for row in self.rows:
            if len(self.key_combinations(row, point)) > 1:
                return False
        return True

    def observed_coverage(
        self, finer: LatticePoint, coarser: LatticePoint
    ) -> bool:
        """True iff every fact of the coarser cuboid also appears in the
        finer one (total coverage along the edge finer -> coarser)."""
        for row in self.rows:
            if self.participates(row, coarser) and not self.participates(
                row, finer
            ):
                return False
        return True

    def axis_cardinality(self, axis_position: int, state_index: int) -> int:
        """Distinct values of an axis under a structural state (cube
        density estimation)."""
        values = set()
        for row in self.rows:
            values.update(row.values_under(axis_position, state_index))
        return len(values)
