"""Unit tests for workload configuration and materialization."""

import pytest

from repro.datagen.workload import WorkloadConfig, build_workload


class TestConfig:
    def test_name_encodes_regime(self):
        config = WorkloadConfig(
            kind="treebank", density="dense", coverage=False, disjoint=True,
            n_axes=4, n_facts=100,
        )
        assert config.name == "treebank-dense-nocov-disj-k4-n100"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_workload(WorkloadConfig(kind="martian"))


class TestTreebankWorkload:
    def test_build(self):
        workload = build_workload(
            WorkloadConfig(kind="treebank", n_facts=40, n_axes=3)
        )
        table = workload.fact_table()
        assert len(table) == 40
        assert table.lattice.axis_count == 3

    def test_oracle_reflects_flags(self):
        workload = build_workload(
            WorkloadConfig(
                kind="treebank", n_facts=30, coverage=False, disjoint=True
            )
        )
        table = workload.fact_table()
        oracle = workload.oracle(table)
        assert not oracle.globally_covered()
        top = table.lattice.top
        assert oracle.disjoint(top)


class TestDblpWorkload:
    def test_build_with_schema_oracle(self):
        workload = build_workload(
            WorkloadConfig(kind="dblp", n_facts=60)
        )
        assert workload.dtd is not None
        table = workload.fact_table()
        oracle = workload.oracle(table)
        # author axis is position 0: never disjoint per the DTD.
        assert not oracle.axis_disjoint(0, 0)
        assert oracle.axis_disjoint(2, 0)
