"""Unit tests for the three relaxation operators (paper Sec. 2.2)."""

import pytest

from repro.errors import RelaxationError
from repro.patterns.parse import parse_pattern
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import (
    Relaxation,
    applicable_relaxations,
    apply_lnd,
    apply_pc_ad,
    apply_sp,
    most_relaxed_pattern,
    relaxation_chain,
)

PATTERN = "//publication[/author/name=$n][//publisher[/@id=$p]][/year=$y]"


def base():
    return parse_pattern(PATTERN)


class TestRelaxationEnum:
    def test_from_text_variants(self):
        assert Relaxation.from_text("lnd") is Relaxation.LND
        assert Relaxation.from_text("PC-AD") is Relaxation.PC_AD
        assert Relaxation.from_text("pc_ad") is Relaxation.PC_AD
        assert Relaxation.from_text(" SP ") is Relaxation.SP

    def test_unknown(self):
        with pytest.raises(RelaxationError):
            Relaxation.from_text("XX")


class TestPcAd:
    def test_paper_example(self):
        # publication/author -> publication//author makes the pattern
        # match publications whose author hides below a wrapper.
        pattern = parse_pattern("//publication/author=$a")
        relaxed = apply_pc_ad(pattern, "$a")
        assert relaxed.by_label("$a").axis is EdgeAxis.DESCENDANT

    def test_original_untouched(self):
        pattern = parse_pattern("//a/b=$b")
        apply_pc_ad(pattern, "$b")
        assert pattern.by_label("$b").axis is EdgeAxis.CHILD

    def test_already_descendant_rejected(self):
        pattern = parse_pattern("//a//b=$b")
        with pytest.raises(RelaxationError):
            apply_pc_ad(pattern, "$b")

    def test_root_rejected(self):
        pattern = parse_pattern("//a=$a")
        with pytest.raises(RelaxationError):
            apply_pc_ad(pattern, "$a")

    def test_attribute_edge_rejected(self):
        pattern = parse_pattern("//a[/@id=$i]")
        with pytest.raises(RelaxationError):
            apply_pc_ad(pattern, "$i")


class TestSp:
    def test_paper_example(self):
        # publication[./author/name] -> publication[./author][.//name]
        pattern = parse_pattern("//publication[/author/name=$n]")
        relaxed = apply_sp(pattern, "$n")
        name = relaxed.by_label("$n")
        assert name.parent is relaxed.root
        assert name.axis is EdgeAxis.DESCENDANT
        author = relaxed.root.children[0]
        assert author.test == "author" and author.is_leaf

    def test_no_grandparent_rejected(self):
        pattern = parse_pattern("//a/b=$b")
        with pytest.raises(RelaxationError):
            apply_sp(pattern, "$b")

    def test_subtree_moves_whole(self):
        pattern = parse_pattern("//r[/a/b=$b[/c]]")
        relaxed = apply_sp(pattern, "$b")
        b = relaxed.by_label("$b")
        assert [child.test for child in b.children] == ["c"]


class TestLnd:
    def test_delete_leaf(self):
        pattern = parse_pattern("//a[/b=$b][/c]")
        relaxed = apply_lnd(pattern, "$b")
        assert [child.test for child in relaxed.root.children] == ["c"]

    def test_keep_optional(self):
        pattern = parse_pattern("//a[/b=$b]")
        relaxed = apply_lnd(pattern, "$b", keep_optional=True)
        assert relaxed.by_label("$b").optional

    def test_non_leaf_rejected(self):
        pattern = parse_pattern("//a[/b=$b/c]")
        with pytest.raises(RelaxationError):
            apply_lnd(pattern, "$b")

    def test_root_rejected(self):
        pattern = parse_pattern("//a=$a")
        with pytest.raises(RelaxationError):
            apply_lnd(pattern, "$a")


class TestApplicability:
    def test_rules(self):
        pattern = base()
        all_three = {Relaxation.LND, Relaxation.SP, Relaxation.PC_AD}
        # $n has a grandparent and a child edge: everything applies.
        assert applicable_relaxations(pattern, "$n", all_three) == all_three
        # $y sits right under the root: no SP.
        assert applicable_relaxations(pattern, "$y", all_three) == {
            Relaxation.LND, Relaxation.PC_AD,
        }
        # $p is an attribute: PC-AD does not apply to attribute edges.
        assert applicable_relaxations(pattern, "$p", all_three) == {
            Relaxation.LND, Relaxation.SP,
        }


class TestMostRelaxed:
    def test_figure2_shape(self):
        pattern = base()
        specs = {
            "$n": {Relaxation.LND, Relaxation.SP, Relaxation.PC_AD},
            "$p": {Relaxation.LND, Relaxation.PC_AD},
            "$y": {Relaxation.LND},
        }
        relaxed = most_relaxed_pattern(pattern, specs)
        name = relaxed.by_label("$n")
        # SP promoted name to the root with a descendant edge, optional.
        assert name.parent is relaxed.root
        assert name.axis is EdgeAxis.DESCENDANT
        assert name.optional
        assert relaxed.by_label("$p").optional
        assert relaxed.by_label("$y").optional
        # The original pattern is untouched.
        assert not pattern.by_label("$y").optional

    def test_matches_superset_of_rigid(self):
        from repro.datagen.publications import figure1_document
        from repro.patterns.match import match_document

        doc = figure1_document()
        pattern = base()
        specs = {
            "$n": {Relaxation.LND, Relaxation.SP, Relaxation.PC_AD},
            "$p": {Relaxation.LND, Relaxation.PC_AD},
            "$y": {Relaxation.LND},
        }
        relaxed = most_relaxed_pattern(pattern, specs)
        rigid_roots = {
            id(witness.root_binding)
            for witness in match_document(doc, pattern)
        }
        relaxed_roots = {
            id(witness.root_binding)
            for witness in match_document(doc, relaxed)
        }
        assert rigid_roots <= relaxed_roots
        assert len(relaxed_roots) == 4  # every publication matches Fig. 2


class TestRelaxationChain:
    def test_chain_enumerates_unique_patterns(self):
        pattern = parse_pattern("//r[/a/b=$b]")
        chain = relaxation_chain(
            pattern, "$b", {Relaxation.SP, Relaxation.PC_AD, Relaxation.LND}
        )
        signatures = {p.signature() for p in chain}
        assert len(signatures) == len(chain) >= 4
