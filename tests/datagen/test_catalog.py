"""Unit tests for the electronic-catalog generator."""

import pytest

from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.catalog import CatalogConfig, catalog_query, generate_catalog
from repro.xmlmodel.serializer import serialize


class TestGeneration:
    def test_product_count_and_determinism(self):
        config = CatalogConfig(n_products=40, seed=2)
        one = generate_catalog(config)
        assert len(one.find_all("product")) == 40
        assert serialize(one) == serialize(generate_catalog(config))

    def test_heterogeneity_knobs(self):
        doc = generate_catalog(CatalogConfig(n_products=300, seed=4))
        products = doc.find_all("product")
        assert any(p.find_children("taxonomy") for p in products)
        assert any(len(p.find_descendants("category")) >= 2 for p in products)
        assert any(p.find_children("details") for p in products)
        assert any(not p.find_descendants("price") for p in products)

    def test_skus_unique(self):
        doc = generate_catalog(CatalogConfig(n_products=50))
        skus = [p.attrs["sku"] for p in doc.find_all("product")]
        assert len(set(skus)) == 50


class TestCubing:
    @pytest.fixture(scope="class")
    def table(self):
        doc = generate_catalog(CatalogConfig(n_products=200, seed=6))
        return extract_fact_table(doc, catalog_query())

    def test_pcad_recovers_nested_shapes(self, table):
        lattice = table.lattice
        cube = compute_cube(table, "BUC")
        rigid = cube.cuboids[
            lattice.point_by_description("$c:rigid, $b:LND")
        ]
        relaxed = cube.cuboids[
            lattice.point_by_description("$c:PC-AD, $b:LND")
        ]
        assert sum(relaxed.values()) > sum(rigid.values())
        brand_rigid = cube.cuboids[
            lattice.point_by_description("$c:LND, $b:rigid")
        ]
        brand_relaxed = cube.cuboids[
            lattice.point_by_description("$c:LND, $b:PC-AD")
        ]
        assert sum(brand_relaxed.values()) > sum(brand_rigid.values())

    def test_all_safe_algorithms_agree(self, table):
        reference = compute_cube(table, "NAIVE")
        oracle = PropertyOracle.from_data(table)
        for name in ("COUNTER", "BUC", "TD", "BUCCUST", "TDCUST"):
            assert compute_cube(table, name, oracle=oracle).same_contents(
                reference
            ), name

    def test_sum_measure(self):
        doc = generate_catalog(CatalogConfig(n_products=100, seed=7))
        table = extract_fact_table(doc, catalog_query("SUM"))
        cube = compute_cube(table, "NAIVE")
        total = cube.cuboids[table.lattice.bottom][()]
        expected = sum(
            float(price.text)
            for price in doc.find_all("price")
        )
        assert total == pytest.approx(expected)
