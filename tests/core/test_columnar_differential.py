"""The differential battery: columnar sweep vs the dict engine.

Reference semantics: serial NAIVE on the dict path.  Every comparison in
this module is **zero-tolerance** — plain ``==`` on the finalized cuboid
dicts, no float epsilon — which holds because the columnar sweep folds
measures in base-row order, the same fold order NAIVE and COUNTER use.

Coverage: every registered algorithm x workload family x lattice point
set x aggregate function, including multi-valued axes, coverage-gap
facts, memory-pressure multipass, engine partitioning, and iceberg
filtering.
"""

from dataclasses import replace

import pytest

from repro.core.aggregates import AggregateSpec, registered_functions
from repro.core.algorithms.registry import (
    ALWAYS_CORRECT,
    COLUMNAR_CAPABLE,
    META,
    NEEDS_BOTH,
    NEEDS_DISJOINTNESS,
    available,
)
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.properties import PropertyOracle
from repro.datagen.workload import WorkloadConfig, build_workload

# ----------------------------------------------------------------------
# workload matrix
# ----------------------------------------------------------------------
WORKLOAD_CONFIGS = {
    # Both summarizability properties hold; single-valued everywhere.
    "clean": WorkloadConfig(
        kind="treebank", n_facts=60, n_axes=3, density="dense",
        coverage=True, disjoint=True, seed=5,
    ),
    # Coverage gaps (missing values) + nested extra matches, repeated
    # values on axes: neither property holds; multi-valued axes appear.
    "messy": WorkloadConfig(
        kind="treebank", n_facts=60, n_axes=3, density="sparse",
        coverage=False, disjoint=False, seed=9,
    ),
    # Disjointness broken only (duplicated values, full coverage).
    "overlap": WorkloadConfig(
        kind="treebank", n_facts=50, n_axes=3, density="dense",
        coverage=True, disjoint=False, seed=11,
    ),
    # The DBLP-shaped generator (different axis/value structure).
    "dblp": WorkloadConfig(
        kind="dblp", n_facts=50, n_axes=3, density="sparse",
        coverage=False, disjoint=False, seed=3,
    ),
}


def _vary_measures(table: FactTable) -> FactTable:
    """Give rows distinct, order-sensitive measures so SUM/AVG/MIN/MAX
    actually exercise fold order (the generators use constant measures)."""
    rows = [
        replace(row, measure=((index * 37) % 11) + (index % 3) * 0.125 + 0.25)
        for index, row in enumerate(table.rows)
    ]
    return FactTable(table.lattice, rows, table.aggregate)


def _with_aggregate(table: FactTable, function: str) -> FactTable:
    spec = (
        AggregateSpec()
        if function == "COUNT"
        else AggregateSpec(function, "@m")
    )
    return FactTable(table.lattice, table.rows, spec)


@pytest.fixture(scope="module")
def tables():
    out = {}
    for name, config in WORKLOAD_CONFIGS.items():
        workload = build_workload(config)
        table = _vary_measures(workload.fact_table())
        out[name] = (table, workload.oracle(table))
    return out


def point_sets(lattice):
    """The lattice point sets the battery sweeps."""
    points = list(lattice.points())
    mid = sorted(points, key=lattice.rank)[len(points) // 2]
    antichain = [p for p in points if lattice.rank(p) == lattice.rank(mid)]
    return {
        "full": points,
        "bottom": [lattice.bottom],
        "top": [lattice.top],
        "antichain": antichain,
        "pair": [lattice.bottom, lattice.top],
    }


def exact_equal(result, reference, points):
    """Zero-tolerance comparison over the requested points."""
    assert set(result.cuboids) == set(points)
    for point in points:
        assert result.cuboids[point] == reference.cuboids[point], point


# ----------------------------------------------------------------------
# columnar vs serial NAIVE: workloads x point sets x aggregates
# ----------------------------------------------------------------------
class TestColumnarAgainstNaive:
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_CONFIGS))
    @pytest.mark.parametrize(
        "point_set", ["full", "bottom", "top", "antichain", "pair"]
    )
    def test_count_bit_identical(self, tables, workload, point_set):
        table, _ = tables[workload]
        points = point_sets(table.lattice)[point_set]
        reference = compute_cube(
            table, ExecutionOptions(algorithm="NAIVE", points=points)
        )
        result = compute_cube(
            table, ExecutionOptions(algorithm="COLUMNAR", points=points)
        )
        exact_equal(result, reference, points)

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_CONFIGS))
    @pytest.mark.parametrize("function", sorted(registered_functions()))
    def test_every_aggregate_bit_identical(self, tables, workload, function):
        table, _ = tables[workload]
        table = _with_aggregate(table, function)
        points = list(table.lattice.points())
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(table, ExecutionOptions(algorithm="COLUMNAR"))
        exact_equal(result, reference, points)

    def test_multipass_under_memory_pressure(self, tables):
        table, _ = tables["messy"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        starved = compute_cube(
            table,
            ExecutionOptions(algorithm="COLUMNAR", memory_entries=16),
        )
        assert starved.passes > 1
        exact_equal(starved, reference, list(table.lattice.points()))

    def test_iceberg_min_support(self, tables):
        table, _ = tables["clean"]
        table = _with_aggregate(table, "COUNT")
        reference = compute_cube(
            table, ExecutionOptions(algorithm="NAIVE", min_support=3)
        )
        result = compute_cube(
            table, ExecutionOptions(algorithm="COLUMNAR", min_support=3)
        )
        exact_equal(result, reference, list(table.lattice.points()))

    def test_empty_table(self):
        config = WORKLOAD_CONFIGS["clean"]
        workload = build_workload(config)
        table = workload.fact_table()
        empty = FactTable(table.lattice, [], table.aggregate)
        reference = compute_cube(empty, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(empty, ExecutionOptions(algorithm="COLUMNAR"))
        assert result.cuboids == reference.cuboids


# ----------------------------------------------------------------------
# every registered algorithm against the columnar sweep
# ----------------------------------------------------------------------
class TestAllRegisteredAlgorithms:
    @pytest.mark.parametrize("name", sorted(available()))
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_CONFIGS))
    def test_count_cubes_bit_identical(self, tables, name, workload):
        """COUNT cubes are integers, so *every* algorithm that is sound
        on the workload must be bit-identical to the columnar sweep."""
        table, truthful = tables[workload]
        if name in NEEDS_DISJOINTNESS and not truthful.globally_disjoint():
            pytest.skip("algorithm requires disjointness")
        if name in NEEDS_BOTH and not (
            truthful.globally_disjoint() and truthful.globally_covered()
        ):
            pytest.skip("algorithm requires both properties")
        points = list(table.lattice.points())
        reference = compute_cube(
            table, ExecutionOptions(algorithm="COLUMNAR", oracle=truthful)
        )
        result = compute_cube(
            table, ExecutionOptions(algorithm=name, oracle=truthful)
        )
        exact_equal(result, reference, points)

    @pytest.mark.parametrize(
        "name", sorted(set(ALWAYS_CORRECT) | set(META))
    )
    def test_float_aggregates_agree(self, tables, name):
        """Always-correct algorithms on an AVG cube: row-order folders
        (NAIVE/COUNTER/COLUMNAR) are bit-identical; roll-up based ones
        agree within the documented tolerance."""
        table, truthful = tables["messy"]
        table = _with_aggregate(table, "AVG")
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table, ExecutionOptions(algorithm=name, oracle=truthful)
        )
        if name in ("NAIVE", "COUNTER", "COLUMNAR"):
            exact_equal(result, reference, list(table.lattice.points()))
        else:
            assert result.same_contents(reference), result.diff(reference)[:3]


# ----------------------------------------------------------------------
# columnar BUC/TD kernels vs their own dict paths and serial NAIVE
# ----------------------------------------------------------------------
def _skip_unless_sound(name, oracle):
    if name in NEEDS_DISJOINTNESS and not oracle.globally_disjoint():
        pytest.skip("algorithm requires disjointness")
    if name in NEEDS_BOTH and not (
        oracle.globally_disjoint() and oracle.globally_covered()
    ):
        pytest.skip("algorithm requires both properties")


class TestColumnarBucTdKernels:
    @pytest.mark.parametrize("name", sorted(COLUMNAR_CAPABLE))
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_CONFIGS))
    def test_columnar_matches_dict_kernel(self, tables, name, workload):
        """The columnar kernel and the legacy dict path of the *same*
        algorithm are bit-identical on every workload family."""
        table, truthful = tables[workload]
        _skip_unless_sound(name, truthful)
        points = list(table.lattice.points())
        dict_run = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, oracle=truthful, encoding="dict"
            ),
        )
        columnar_run = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, oracle=truthful, encoding="columnar"
            ),
        )
        exact_equal(columnar_run, dict_run, points)

    @pytest.mark.parametrize("name", ["BUC", "TD"])
    @pytest.mark.parametrize("function", sorted(registered_functions()))
    def test_every_aggregate_matches_naive(self, tables, name, function):
        table, _ = tables["messy"]
        table = _with_aggregate(table, function)
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table, ExecutionOptions(algorithm=name, encoding="columnar")
        )
        exact_equal(result, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUCCUST", "TDCUST"])
    def test_cust_with_denying_oracle(self, tables, name):
        """CUST kernels degrade to the safe plan when the oracle denies
        every property — and stay bit-identical to NAIVE doing it."""
        table, _ = tables["clean"]
        denying = PropertyOracle.from_flags(table.lattice, False, False)
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, oracle=denying, encoding="columnar"
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUCCUST", "TDCUST"])
    def test_cust_with_truthful_oracle(self, tables, name):
        table, truthful = tables["clean"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, oracle=truthful, encoding="columnar"
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUC", "TD"])
    def test_tight_memory_budget(self, tables, name):
        """A budget far below the fact count forces the spill path; the
        answer must not change."""
        table, _ = tables["messy"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        starved = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, encoding="columnar", memory_entries=16
            ),
        )
        exact_equal(starved, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUC", "TD"])
    def test_under_thread_engine(self, tables, name):
        table, _ = tables["messy"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name,
                encoding="columnar",
                workers=3,
                engine="thread",
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUC", "TD"])
    def test_under_process_engine(self, tables, name):
        table, _ = tables["clean"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name,
                encoding="columnar",
                workers=2,
                engine="process",
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    @pytest.mark.parametrize("name", ["BUC", "TD"])
    def test_iceberg_min_support(self, tables, name):
        table, _ = tables["overlap"]
        reference = compute_cube(
            table, ExecutionOptions(algorithm="NAIVE", min_support=3)
        )
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm=name, encoding="columnar", min_support=3
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))


# ----------------------------------------------------------------------
# the engine's partition workers on columnar inputs
# ----------------------------------------------------------------------
class TestColumnarUnderEngine:
    @pytest.mark.parametrize(
        "strategy", ["balanced", "antichain", "axis"]
    )
    def test_thread_engine_partitions(self, tables, strategy):
        table, _ = tables["messy"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm="COLUMNAR",
                workers=3,
                engine="thread",
                partition_strategy=strategy,
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    def test_process_engine(self, tables):
        table, _ = tables["clean"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        result = compute_cube(
            table,
            ExecutionOptions(
                algorithm="COLUMNAR", workers=2, engine="process"
            ),
        )
        exact_equal(result, reference, list(table.lattice.points()))

    def test_thread_workers_share_one_encoding(self, tables):
        """Thread partitions run against the same table object, so the
        memoized encoding is built once and shared."""
        table, _ = tables["clean"]
        table.invalidate_columnar()
        compute_cube(
            table,
            ExecutionOptions(algorithm="COLUMNAR", workers=3, engine="thread"),
        )
        cached = table._columnar_cache
        assert cached is not None
        assert table.columnar() is cached[1]


# ----------------------------------------------------------------------
# the serving ladder's recompute rung on columnar inputs
# ----------------------------------------------------------------------
class TestColumnarUnderServe:
    def test_recompute_rung_matches_naive(self, tables):
        from repro.core.query import Query
        from repro.serve import CubeServer

        table, oracle = tables["clean"]
        reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
        server = CubeServer(
            table,
            oracle,
            cache_cells=0,
            options=ExecutionOptions(algorithm="COLUMNAR"),
        )
        for point in table.lattice.points():
            answer = server.query(Query(point=point))
            assert answer.tier == "recompute"
            assert answer.as_cuboid() == reference.cuboids[point], point
