"""The paper's Figure 1 publication database, and a scalable variant.

The four publications reproduce every phenomenon the paper's motivation
walks through:

1. ``@id=1`` — two authors (John, Jane), publisher ``p1``, year 2003:
   *non-disjointness* (member of both (John, p1, 2003) and
   (Jane, p1, 2003));
2. ``@id=2`` — two editions, i.e. two ``year`` values (2004, 2005):
   non-disjointness on the year axis;
3. ``@id=3`` — an online article: **no publisher** (coverage failure) and
   its author nested under an ``authors`` wrapper (rigid
   ``publication/author`` fails; PC-AD ``publication//author`` matches);
4. ``@id=4`` — ``publisher`` and ``year`` tucked under ``pubData``
   (rigid fails; sub-tree promotion / PC-AD recover them).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.nodes import Document, Element

QUERY1_TEXT = """
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD),
            $p (LND, PC-AD),
            $y (LND)
return COUNT($b).
"""


def figure1_document() -> Document:
    """Build the Figure 1 publication database."""
    database = Element("database")

    pub1 = database.make_child("publication", attrs={"id": "1"})
    pub1.make_child("author", attrs={"id": "a1"}).make_child(
        "name", text="John"
    )
    pub1.make_child("author", attrs={"id": "a2"}).make_child(
        "name", text="Jane"
    )
    pub1.make_child("publisher", attrs={"id": "p1"})
    pub1.make_child("year", text="2003")

    pub2 = database.make_child("publication", attrs={"id": "2"})
    pub2.make_child("author", attrs={"id": "a1"}).make_child(
        "name", text="John"
    )
    pub2.make_child("publisher", attrs={"id": "p2"})
    pub2.make_child("year", text="2004")
    pub2.make_child("year", text="2005")

    pub3 = database.make_child("publication", attrs={"id": "3"})
    authors = pub3.make_child("authors")
    authors.make_child("author", attrs={"id": "a3"}).make_child(
        "name", text="Smith"
    )
    pub3.make_child("year", text="2003")

    pub4 = database.make_child("publication", attrs={"id": "4"})
    pub4.make_child("author", attrs={"id": "a4"}).make_child(
        "name", text="Anna"
    )
    pub_data = pub4.make_child("pubData")
    pub_data.make_child("publisher", attrs={"id": "p3"})
    pub_data.make_child("year", text="2006")

    return Document(database, name="figure1")


def query1() -> X3Query:
    """The paper's Query 1 as a structured object."""
    return X3Query(
        fact_tag="publication",
        axes=(
            AxisSpec.from_path(
                "$n",
                "author/name",
                frozenset({Relaxation.LND, Relaxation.SP, Relaxation.PC_AD}),
            ),
            AxisSpec.from_path(
                "$p",
                "//publisher/@id",
                frozenset({Relaxation.LND, Relaxation.PC_AD}),
            ),
            AxisSpec.from_path("$y", "year", frozenset({Relaxation.LND})),
        ),
        aggregate=AggregateSpec("COUNT"),
        fact_id_path="@id",
        document="book.xml",
    )


FIRST_NAMES = [
    "John", "Jane", "Smith", "Anna", "Wei", "Divesh", "Laks", "Nuwee",
    "Maria", "Ivan", "Kofi", "Yuki", "Elena", "Ada", "Alan", "Grace",
]
PUBLISHERS = [f"p{number}" for number in range(1, 21)]


def random_publications(
    n_publications: int,
    seed: int = 7,
    p_missing_publisher: float = 0.2,
    p_extra_author: float = 0.3,
    p_nested_author: float = 0.15,
    p_pubdata: float = 0.1,
    p_second_year: float = 0.1,
    years: Optional[List[str]] = None,
) -> Document:
    """A scalable publication warehouse with Figure-1-style heterogeneity.

    Every probability knob controls one flavour of flexibility; setting
    them all to zero produces perfectly regular (relational-like) data.
    """
    rng = random.Random(seed)
    year_pool = years or [str(year) for year in range(2000, 2008)]
    database = Element("database")
    for number in range(1, n_publications + 1):
        pub = database.make_child("publication", attrs={"id": str(number)})
        author_names = [rng.choice(FIRST_NAMES)]
        if rng.random() < p_extra_author:
            author_names.append(rng.choice(FIRST_NAMES))
        if rng.random() < p_nested_author:
            wrapper = pub.make_child("authors")
            for name in author_names:
                wrapper.make_child(
                    "author", attrs={"id": f"a{number}"}
                ).make_child("name", text=name)
        else:
            for name in author_names:
                pub.make_child(
                    "author", attrs={"id": f"a{number}"}
                ).make_child("name", text=name)
        use_pubdata = rng.random() < p_pubdata
        holder = pub.make_child("pubData") if use_pubdata else pub
        if rng.random() >= p_missing_publisher:
            holder.make_child(
                "publisher", attrs={"id": rng.choice(PUBLISHERS)}
            )
        holder.make_child("year", text=rng.choice(year_pool))
        if rng.random() < p_second_year:
            holder.make_child("year", text=rng.choice(year_pool))
    return Document(database, name="random-publications")
