"""Golden tests for the observability endpoints of the HTTP front door:
``/api/v1/healthz``, ``/api/v1/traces[/{id}]``, the ``traceparent``
request/response header, and the trace gauges on ``/metrics``."""

import json

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.publications import figure1_document, query1
from repro.obs.propagate import TRACEPARENT_HEADER
from repro.obs.trace_store import TraceStore
from repro.serve import CubeServer
from repro.server import CubeCatalog, LogicalCube, X3Api


def make_table():
    return extract_fact_table(figure1_document(), query1())


def make_api(backend, name="pubs", trace_store=None):
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice(name, backend.lattice, measure="COUNT"),
        backend,
    )
    return X3Api(catalog, trace_store=trace_store)


@pytest.fixture()
def traced_api():
    table = make_table()
    store = TraceStore(seed=4)
    server = CubeServer(
        table, PropertyOracle.from_data(table), trace_store=store
    )
    return make_api(server, trace_store=store), store


def call(api, method, path, body=None, headers=None):
    encoded = (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    response = api.handle(method, path, encoded, headers)
    decoded = (
        json.loads(response.body)
        if response.content_type == "application/json"
        else response.body
    )
    return response, decoded


def aggregate(api, headers=None):
    return call(
        api,
        "POST",
        "/api/v1/cubes/pubs/aggregate",
        {"group_by": {}},
        headers,
    )


class TestHealthz:
    def test_single_server_golden(self):
        table = make_table()
        server = CubeServer(table, PropertyOracle.from_data(table))
        api = make_api(server)
        response, decoded = call(api, "GET", "/api/v1/healthz")
        assert response.status == 200
        assert decoded == {
            "status": "ok",
            "backends": {
                "pubs": {
                    "kind": "server",
                    "status": "ok",
                    "version": [0],
                }
            },
        }

    def test_cluster_reports_shard_and_replica_health(self):
        table = make_table()
        with ClusterCoordinator(
            table,
            2,
            2,
            oracle=PropertyOracle.from_data(table),
            hedge_deadline_seconds=None,
        ) as cluster:
            api = make_api(cluster)
            response, decoded = call(api, "GET", "/api/v1/healthz")
            assert response.status == 200
            assert decoded == {
                "status": "ok",
                "backends": {
                    "pubs": {
                        "kind": "cluster",
                        "status": "ok",
                        "shards": 2,
                        "replicas_per_shard": 2,
                        "healthy_replicas": 4,
                        "total_replicas": 4,
                        "lagging_replicas": 0,
                        "replica_health": [
                            [True, True],
                            [True, True],
                        ],
                        "version": [0, 0],
                    }
                },
            }

    def test_crashed_replica_degrades_the_report(self):
        table = make_table()
        with ClusterCoordinator(
            table,
            2,
            2,
            oracle=PropertyOracle.from_data(table),
            hedge_deadline_seconds=None,
        ) as cluster:
            cluster.shards[0][0].crash()
            api = make_api(cluster)
            response, decoded = call(api, "GET", "/api/v1/healthz")
            assert response.status == 200  # health is a report, not 503
            assert decoded["status"] == "degraded"
            backend = decoded["backends"]["pubs"]
            assert backend["status"] == "degraded"
            assert backend["healthy_replicas"] == 3
            assert backend["replica_health"][0] == [False, True]

    def test_whole_shard_down_reports_down(self):
        table = make_table()
        with ClusterCoordinator(
            table,
            2,
            2,
            oracle=PropertyOracle.from_data(table),
            hedge_deadline_seconds=None,
        ) as cluster:
            for replica in cluster.shards[1]:
                replica.crash()
            api = make_api(cluster)
            _, decoded = call(api, "GET", "/api/v1/healthz")
            assert decoded["backends"]["pubs"]["status"] == "down"
            assert decoded["status"] == "degraded"

    def test_post_is_method_not_allowed(self):
        api = make_api(
            CubeServer(make_table(), None)
        )
        response, _ = call(api, "POST", "/api/v1/healthz")
        assert response.status == 405


class TestTraceparentHeader:
    def test_response_echoes_a_minted_context(self, traced_api):
        api, store = traced_api
        response, decoded = aggregate(api)
        assert response.status == 200
        header = dict(response.headers)[TRACEPARENT_HEADER]
        version, trace_hex, span_hex, flags = header.split("-")
        assert (version, flags) == ("00", "01")
        assert decoded["trace_id"] == trace_hex
        assert store.get(trace_hex) is not None

    def test_upstream_context_is_joined(self, traced_api):
        api, store = traced_api
        upstream_trace = "c" * 32
        upstream = f"00-{upstream_trace}-{'d' * 16}-01"
        response, decoded = aggregate(
            api, headers={"Traceparent": upstream}
        )
        assert decoded["trace_id"] == upstream_trace
        header = dict(response.headers)[TRACEPARENT_HEADER]
        assert header.split("-")[1] == upstream_trace
        record = store.get(upstream_trace)
        assert record is not None
        assert record.name == "http.request"

    def test_upstream_unsampled_verdict_is_honored(self, traced_api):
        api, store = traced_api
        upstream = f"00-{'c' * 32}-{'d' * 16}-00"
        response, decoded = aggregate(
            api, headers={TRACEPARENT_HEADER: upstream}
        )
        assert response.status == 200
        assert "trace_id" not in decoded
        assert dict(response.headers)[TRACEPARENT_HEADER].endswith("-00")
        assert store.traces() == ()

    def test_untraced_api_sends_no_header(self):
        api = make_api(CubeServer(make_table(), None))
        response, decoded = aggregate(api)
        assert TRACEPARENT_HEADER not in dict(response.headers)
        assert "trace_id" not in decoded


class TestTracesEndpoint:
    def test_list_carries_summaries_stats_and_exemplars(
        self, traced_api
    ):
        api, store = traced_api
        _, first = aggregate(api)
        response, decoded = call(api, "GET", "/api/v1/traces")
        assert response.status == 200
        # the list GET itself was traced too
        assert decoded["stats"]["started"] >= 2
        summaries = decoded["traces"]
        assert any(
            summary["trace_id"] == first["trace_id"]
            for summary in summaries
        )
        for summary in summaries:
            assert set(summary) == {
                "trace_id",
                "name",
                "status",
                "retained",
                "sim_seconds",
                "wall_seconds",
                "spans",
            }
        assert decoded["exemplars"]
        exemplar = decoded["exemplars"][0]
        assert exemplar["cube"] == "pubs"
        assert exemplar["trace_id"] == first["trace_id"]

    def test_get_single_trace_returns_the_span_tree(self, traced_api):
        api, _ = traced_api
        _, first = aggregate(api)
        response, decoded = call(
            api, "GET", f"/api/v1/traces/{first['trace_id']}"
        )
        assert response.status == 200
        assert decoded["trace_id"] == first["trace_id"]
        names = {span["name"] for span in decoded["spans"]}
        assert "http.request" in names
        assert "serve.request" in names
        roots = [
            span
            for span in decoded["spans"]
            if span["parent_id"] == ""
        ]
        assert len(roots) == 1
        assert roots[0]["name"] == "http.request"
        assert roots[0]["attrs"]["status"] == 200

    def test_unknown_trace_is_404(self, traced_api):
        api, _ = traced_api
        response, decoded = call(api, "GET", "/api/v1/traces/" + "f" * 32)
        assert response.status == 404
        assert decoded["error"]["kind"] == "not_found"
        assert "never have been sampled" in decoded["error"]["message"]

    def test_untraced_server_404s_the_endpoint(self):
        api = make_api(CubeServer(make_table(), None))
        response, decoded = call(api, "GET", "/api/v1/traces")
        assert response.status == 404
        assert decoded["error"]["kind"] == "not_found"


class TestTraceMetrics:
    def test_trace_gauges_exported_with_help_and_type(self, traced_api):
        api, _ = traced_api
        aggregate(api)
        response, text = call(api, "GET", "/metrics")
        assert response.status == 200
        for name in (
            "x3_trace_started_total",
            "x3_trace_sampled_total",
            "x3_trace_retained_total",
        ):
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} gauge" in text
        # the aggregate plus the /metrics GET itself were both traced
        assert "x3_trace_started_total 2" in text
        assert "x3_trace_sampled_total 2" in text
