"""Single-flight deduplication of identical concurrent computations.

When a popular cuboid falls out of the cache, a burst of requests for it
must not stampede the recompute path: the first caller (the *leader*)
computes, everyone else arriving with the same key blocks on the shared
call and receives the same result (or the same exception).  Keys include
the server's table version, so a flight started before a write is never
joined by a request that must observe the write.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple


class _Call:
    """One in-flight computation and its eventual outcome."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.joiners = 0
        self.meta: Any = None  #: leader-published linking metadata


class SingleFlight:
    """Per-key in-flight call deduplication (Go's ``singleflight``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}
        self._shared_total = 0
        self._led_total = 0

    # ------------------------------------------------------------------
    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``.

        Returns ``(result, shared)`` where ``shared`` is True when this
        caller joined another caller's flight instead of computing.
        Exceptions raised by the leader propagate to every caller.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is not None:
                call.joiners += 1
                self._shared_total += 1
                leader = False
            else:
                call = _Call()
                self._calls[key] = call
                self._led_total += 1
                leader = True
        if not leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.result, True
        try:
            call.result = fn()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.done.set()
        return call.result, False

    def do_meta(
        self,
        key: Hashable,
        fn: Callable[[Callable[[Any], None]], Any],
    ) -> Tuple[Any, bool, Any]:
        """Like :meth:`do`, but with leader-published metadata.

        ``fn`` receives a one-argument ``publish`` callable the leader
        may invoke (typically first thing) to attach metadata to the
        flight — e.g. its trace span id, so followers can link their
        join spans to the span that actually computed.  Returns
        ``(result, shared, meta)``; followers see the leader's metadata
        because they only unblock after the leader finished.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is not None:
                call.joiners += 1
                self._shared_total += 1
                leader = False
            else:
                call = _Call()
                self._calls[key] = call
                self._led_total += 1
                leader = True
        if not leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.result, True, call.meta

        def publish(meta: Any, call: _Call = call) -> None:
            call.meta = meta

        try:
            call.result = fn(publish)
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.done.set()
        return call.result, False, call.meta

    # ------------------------------------------------------------------
    @property
    def shared_total(self) -> int:
        """Calls answered by joining another caller's flight."""
        with self._lock:
            return self._shared_total

    @property
    def led_total(self) -> int:
        """Calls that actually executed their function."""
        with self._lock:
            return self._led_total

    def in_flight(self) -> int:
        with self._lock:
            return len(self._calls)
