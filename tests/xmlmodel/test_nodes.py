"""Unit tests for the tree node model and region encoding."""

import pytest

from repro.errors import XmlStructureError
from repro.xmlmodel.nodes import Document, Element, validate_regions


def small_doc() -> Document:
    root = Element("a")
    b = root.make_child("b", text="one")
    b.make_child("c", attrs={"x": "1"})
    root.make_child("d", text="two")
    return Document(root)


class TestElement:
    def test_empty_tag_rejected(self):
        with pytest.raises(XmlStructureError):
            Element("")

    def test_text_is_stripped(self):
        element = Element("a", text="  hi  ")
        assert element.text == "hi"

    def test_append_text_preserves_chunks(self):
        element = Element("a")
        element.append_text("one")
        element.append_text("")
        element.append_text("two")
        assert element.text_chunks == ["one", "two"]
        assert element.text == "onetwo"

    def test_full_text_includes_descendants(self):
        doc = small_doc()
        assert doc.root.full_text() == "onetwo"

    def test_append_rejects_attached_child(self):
        parent = Element("p")
        child = parent.make_child("c")
        other = Element("q")
        with pytest.raises(XmlStructureError):
            other.append(child)

    def test_detach_then_reattach(self):
        parent = Element("p")
        child = parent.make_child("c")
        child.detach()
        assert child.parent is None
        assert parent.children == []
        Element("q").append(child)

    def test_iter_descendants_document_order(self):
        doc = small_doc()
        tags = [node.tag for node in doc.root.iter_descendants()]
        assert tags == ["b", "c", "d"]

    def test_iter_subtree_includes_self(self):
        doc = small_doc()
        tags = [node.tag for node in doc.root.iter_subtree()]
        assert tags == ["a", "b", "c", "d"]

    def test_iter_ancestors(self):
        doc = small_doc()
        c = doc.root.children[0].children[0]
        assert [node.tag for node in c.iter_ancestors()] == ["b", "a"]

    def test_find_children_and_descendants(self):
        doc = small_doc()
        assert [node.tag for node in doc.root.find_children("b")] == ["b"]
        assert doc.root.find_children("c") == []
        assert [node.tag for node in doc.root.find_descendants("c")] == ["c"]

    def test_contains_via_regions(self):
        doc = small_doc()
        b = doc.root.children[0]
        c = b.children[0]
        assert doc.root.contains(c)
        assert b.contains(c)
        assert not c.contains(b)
        assert not b.contains(b)

    def test_contains_without_regions(self):
        root = Element("a")
        child = root.make_child("b")
        assert root.contains(child)
        assert not child.contains(root)

    def test_attr_access(self):
        doc = small_doc()
        c = doc.root.children[0].children[0]
        assert c.attr("x") == "1"
        assert c.attr("y") is None
        assert c.attr("y", "d") == "d"


class TestDocument:
    def test_root_with_parent_rejected(self):
        parent = Element("p")
        child = parent.make_child("c")
        with pytest.raises(XmlStructureError):
            Document(child)

    def test_region_invariants(self):
        validate_regions(small_doc())

    def test_node_ids_are_document_order(self):
        doc = small_doc()
        assert [node.tag for node in doc.elements] == ["a", "b", "c", "d"]
        for index, node in enumerate(doc.elements):
            assert node.node_id == index
            assert doc.by_id(index) is node

    def test_by_id_out_of_range(self):
        with pytest.raises(XmlStructureError):
            small_doc().by_id(99)

    def test_levels(self):
        doc = small_doc()
        assert [node.level for node in doc.elements] == [0, 1, 2, 1]
        assert doc.max_depth() == 2

    def test_reindex_after_mutation(self):
        doc = small_doc()
        doc.root.make_child("e")
        doc.reindex()
        validate_regions(doc)
        assert doc.element_count() == 5

    def test_find_all(self):
        doc = small_doc()
        assert len(doc.find_all("b")) == 1
        assert doc.find_all("missing") == []

    def test_iter_tags_unique(self):
        doc = small_doc()
        assert list(doc.iter_tags()) == ["a", "b", "c", "d"]

    def test_sibling_regions_disjoint(self):
        doc = small_doc()
        b, d = doc.root.children
        assert b.end < d.start

    def test_validate_catches_corruption(self):
        doc = small_doc()
        doc.root.children[0].level = 7
        with pytest.raises(XmlStructureError):
            validate_regions(doc)
