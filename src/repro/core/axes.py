"""Axis specifications: the entries of an ``X^3`` clause.

Query 1 of the paper binds three axes::

    $n in $b/author/name      X^3 ... by $n (LND, SP, PC-AD)
    $p in $b//publisher/@id               $p (LND, PC-AD)
    $y in $b/year                         $y (LND)

An :class:`AxisSpec` is one such entry: a *relative path* from the fact
binding to the grouping value, plus the set of permitted relaxations.  The
structural relaxations (SP, PC-AD) generate the axis's *state poset* (see
:mod:`repro.core.states`); LND generates the DROPPED state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.errors import QueryError
from repro.patterns.parse import parse_steps
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.navigation import Step, StepAxis

PathStep = Tuple[EdgeAxis, str]


@dataclass(frozen=True)
class AxisSpec:
    """One grouping axis.

    Attributes:
        name: the variable label, e.g. ``$n``.
        steps: the relative path from the fact, e.g.
            ``((CHILD, 'author'), (CHILD, 'name'))``.
        relaxations: permitted relaxations; LND is always implied (it is
            what produces roll-ups) and included for clarity.
    """

    name: str
    steps: Tuple[PathStep, ...]
    relaxations: FrozenSet[Relaxation] = field(
        default_factory=lambda: frozenset({Relaxation.LND})
    )

    def __post_init__(self) -> None:
        if not self.name.startswith("$"):
            raise QueryError(f"axis name must start with '$': {self.name!r}")
        if not self.steps:
            raise QueryError(f"axis {self.name} has an empty path")
        for position, (_, test) in enumerate(self.steps):
            if test.startswith("@") and position != len(self.steps) - 1:
                raise QueryError(
                    f"axis {self.name}: attribute step must be last"
                )
        if Relaxation.SP in self.relaxations and len(self.steps) < 2:
            raise QueryError(
                f"axis {self.name}: SP needs an intermediate node "
                "(path length >= 2)"
            )
        if Relaxation.LND not in self.relaxations:
            # Normalize: LND is always available (the cube needs roll-ups).
            object.__setattr__(
                self,
                "relaxations",
                frozenset(self.relaxations | {Relaxation.LND}),
            )

    # ------------------------------------------------------------------
    @staticmethod
    def from_path(
        name: str, path: str, relaxations: FrozenSet[Relaxation] = frozenset()
    ) -> "AxisSpec":
        """Build from path text like ``author/name`` or ``//publisher/@id``."""
        steps = tuple(parse_steps(path))
        return AxisSpec(
            name,
            steps,
            frozenset(relaxations | {Relaxation.LND}),
        )

    # ------------------------------------------------------------------
    @property
    def structural(self) -> FrozenSet[Relaxation]:
        """Permitted structural relaxations (everything but LND)."""
        return frozenset(
            r for r in self.relaxations if r is not Relaxation.LND
        )

    @property
    def binding_test(self) -> str:
        """The node test of the binding (last) step."""
        return self.steps[-1][1]

    def path_text(self) -> str:
        parts: List[str] = []
        for position, (axis, test) in enumerate(self.steps):
            if position == 0 and axis is EdgeAxis.CHILD:
                parts.append(test)
            else:
                parts.append(f"{axis.value}{test}")
        return "".join(parts)

    # ------------------------------------------------------------------
    def steps_for_state(
        self, applied: FrozenSet[Relaxation]
    ) -> Tuple[Tuple[PathStep, ...], Tuple[PathStep, ...]]:
        """The (binding path, existence-prefix path) of a structural state.

        - With SP applied, the binding path collapses to a single
          descendant step to the binding test, and the original
          intermediate prefix remains as an existence requirement
          (``publication[./author][.//name]``).
        - With PC-AD applied, every child edge (of whichever paths remain)
          becomes a descendant edge.
        - The rigid state returns the original steps and an empty prefix.
        """
        binding: Tuple[PathStep, ...]
        prefix: Tuple[PathStep, ...]
        if Relaxation.SP in applied:
            binding = ((EdgeAxis.DESCENDANT, self.binding_test),)
            prefix = self.steps[:-1]
        else:
            binding = self.steps
            prefix = ()
        if Relaxation.PC_AD in applied:
            # PC-AD generalizes element edges only; an attribute edge is
            # not a structural relationship between two elements.
            binding = tuple(
                (axis if test.startswith("@") else EdgeAxis.DESCENDANT, test)
                for axis, test in binding
            )
            prefix = tuple(
                (axis if test.startswith("@") else EdgeAxis.DESCENDANT, test)
                for axis, test in prefix
            )
        return binding, prefix

    def nav_steps(self, steps: Tuple[PathStep, ...]) -> List[Step]:
        """Convert pattern steps to navigation steps (for schema reasoning
        and path evaluation)."""
        out: List[Step] = []
        for axis, test in steps:
            nav_axis = (
                StepAxis.CHILD if axis is EdgeAxis.CHILD else StepAxis.DESCENDANT
            )
            out.append(Step(nav_axis, test))
        return out

    def __str__(self) -> str:
        names = ", ".join(sorted(r.value for r in self.relaxations))
        return f"{self.name} in $fact/{self.path_text()} ({names})"
