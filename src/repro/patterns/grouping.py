"""TAX-style grouping of witness trees (paper Sec. 2.1).

"We will specify grouping in XML by means of a tree pattern and a
grouping list.  The tree pattern is used to create a set of witness
trees.  An equality check is performed on corresponding nodes belonging
to the grouping list in each witness tree, and all witness trees where
these values match are placed into one group."

:func:`group_witnesses` implements exactly that, and
:func:`group_count` adds the paper's example semantics on top: the
count of *distinct base items* (witness roots) per group, so a
publication matched twice (two ``year`` witnesses) still counts once in
each year group it belongs to, but never twice within one group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PatternError
from repro.patterns.match import Witness, binding_value
from repro.patterns.pattern import TreePattern
from repro.timber.node_store import NodeRecord
from repro.xmlmodel.nodes import Element

GroupingKey = Tuple[Optional[str], ...]


def _root_identity(witness: Witness):
    root = witness.root_binding
    if isinstance(root, Element):
        return id(root)
    if isinstance(root, NodeRecord):
        return (root.doc_id, root.node_id)
    return root


def group_witnesses(
    witnesses: Sequence[Witness],
    grouping_list: Sequence[str],
) -> Dict[GroupingKey, List[Witness]]:
    """Group witness trees by the values of the grouping-list labels.

    Witnesses whose labelled bindings are unmatched (``None``) group
    under ``None`` components — callers can drop or keep those groups
    (the paper's fourth publication simply "is not included in any of
    the groups" when the pattern did not match it at all, which is
    handled upstream by matching).
    """
    if not grouping_list:
        raise PatternError("the grouping list must name at least one label")
    groups: Dict[GroupingKey, List[Witness]] = {}
    for witness in witnesses:
        key = tuple(
            binding_value(witness.by_label(label))
            for label in grouping_list
        )
        groups.setdefault(key, []).append(witness)
    return groups


def group_count(
    witnesses: Sequence[Witness],
    grouping_list: Sequence[str],
    distinct_roots: bool = True,
) -> Dict[GroupingKey, int]:
    """Per-group counts; by default distinct base items (witness roots).

    This reproduces Sec. 2.1's walk-through: the pattern
    ``//publication/year=$y`` yields four witnesses over Figure 1 (the
    second publication twice), and grouping by ``$y`` gives 2003 -> 2,
    2004 -> 1, 2005 -> 1.
    """
    out: Dict[GroupingKey, int] = {}
    for key, members in group_witnesses(witnesses, grouping_list).items():
        if distinct_roots:
            out[key] = len({_root_identity(w) for w in members})
        else:
            out[key] = len(members)
    return out


def grouping_basis(pattern: TreePattern) -> List[str]:
    """The default grouping list: every labelled non-root node."""
    return [
        label
        for label, node in pattern.labelled().items()
        if node.parent is not None
    ]
