"""Property tests for the columnar encoding and sweep kernel.

Three invariants over arbitrary generated fact tables (multi-valued
axes, missing values, duplicate annotations, unicode labels):

- encode -> decode is the identity, row for row, annotation for
  annotation (the encoding is lossless);
- ``key_combinations`` / ``participates`` / ``values_under`` parity
  holds row-by-row against the dict-path :class:`FactTable`;
- the COLUMNAR sweep is bit-identical to serial NAIVE on every lattice
  point, for COUNT and for float-folding aggregates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.lattice import CubeLattice
from repro.patterns.relaxation import Relaxation

#: Unicode-heavy label pool: combining marks, CJK, case-folding traps.
VALUES = ["v0", "café", "naïve", "日本語", "ẞharp", "v0 "]


@st.composite
def random_fact_table(draw, aggregate=None):
    """A random annotated fact table over 2 axes, one of which permits
    PC-AD (so masks matter), with duplicate annotations allowed."""
    axes = [
        AxisSpec.from_path(
            "$a", "a", frozenset({Relaxation.LND, Relaxation.PC_AD})
        ),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]
    lattice = CubeLattice(axes)
    n_rows = draw(st.integers(min_value=0, max_value=10))
    rows = []
    for number in range(n_rows):
        # Duplicates permitted (unique=False): the same value can be
        # annotated twice with different masks, as real extraction
        # produces for a value reachable along two paths.
        a_values = []
        for value in draw(
            st.lists(st.sampled_from(VALUES), max_size=3)
        ):
            rigid = draw(st.booleans())
            mask = 0b11 if rigid else 0b10
            a_values.append(AnnotatedValue(value, mask))
        b_values = [
            AnnotatedValue(value, 0b1)
            for value in draw(
                st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
            )
        ]
        rows.append(
            FactRow(
                fact_id=(1, number),
                measure=draw(st.integers(0, 40)) * 0.125,
                axes=(tuple(a_values), tuple(b_values)),
            )
        )
    return FactTable(lattice, rows, aggregate)


@given(random_fact_table())
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_lossless(table):
    encoded = table.columnar()
    assert encoded.n_rows == len(table.rows)
    for index, row in enumerate(table.rows):
        assert encoded.decode_row(index) == row
    assert encoded.to_fact_table().rows == table.rows


@given(random_fact_table())
@settings(max_examples=60, deadline=None)
def test_key_combinations_parity_row_by_row(table):
    encoded = table.columnar()
    for point in table.lattice.points():
        for index, row in enumerate(table.rows):
            assert encoded.key_combinations(index, point) == (
                table.key_combinations(row, point)
            ), (index, point)
            assert encoded.participates(index, point) == (
                table.participates(row, point)
            ), (index, point)


@given(random_fact_table())
@settings(max_examples=60, deadline=None)
def test_values_under_parity(table):
    encoded = table.columnar()
    for index, row in enumerate(table.rows):
        for position, states in enumerate(table.lattice.axis_states):
            for state in range(len(states.states)):
                assert encoded.values_under(index, position, state) == (
                    tuple(row.values_under(position, state))
                )


@given(random_fact_table())
@settings(max_examples=60, deadline=None)
def test_sweep_bit_identical_to_naive_count(table):
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(table, ExecutionOptions(algorithm="COLUMNAR"))
    assert result.cuboids == reference.cuboids


@given(
    random_fact_table(aggregate=AggregateSpec("AVG", "@m")),
    st.sampled_from(["SUM", "MIN", "MAX", "AVG"]),
)
@settings(max_examples=40, deadline=None)
def test_sweep_bit_identical_to_naive_float_aggregates(table, function):
    table = FactTable(
        table.lattice, table.rows, AggregateSpec(function, "@m")
    )
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(table, ExecutionOptions(algorithm="COLUMNAR"))
    assert result.cuboids == reference.cuboids


@given(random_fact_table(), st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_sweep_correct_under_any_memory_budget(table, budget):
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(
        table,
        ExecutionOptions(algorithm="COLUMNAR", memory_entries=budget),
    )
    assert result.cuboids == reference.cuboids
