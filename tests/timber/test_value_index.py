"""Unit tests for the (tag, value) index."""

from repro.patterns.match import match_db
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB


def db_of(*docs):
    db = TimberDB()
    for doc in docs:
        db.load(doc)
    db.build_index()
    return db


DOC = (
    "<lib>"
    "<book><year>2003</year></book>"
    "<book><year>2004</year></book>"
    "<book><year>2003</year><year>2005</year></book>"
    "<journal><year>2003</year></journal>"
    "</lib>"
)


class TestLookup:
    def test_exact_matches(self):
        db = db_of(DOC)
        postings = db.postings_with_value("year", "2003")
        assert len(postings) == 3
        assert all(
            db.record_of(posting).text == "2003" for posting in postings
        )

    def test_missing_value_empty(self):
        db = db_of(DOC)
        assert db.postings_with_value("year", "1999") == []
        assert db.postings_with_value("ghost", "2003") == []

    def test_document_order(self):
        db = db_of(DOC)
        postings = db.postings_with_value("year", "2003")
        keys = [posting.sort_key for posting in postings]
        assert keys == sorted(keys)

    def test_values_of(self):
        db = db_of(DOC)
        db.build_value_index()
        assert db.values.values_of("year") == ["2003", "2004", "2005"]

    def test_selectivity(self):
        db = db_of(DOC)
        db.build_value_index()
        total = db.tag_cardinality("year")
        assert db.values.selectivity("year", "2003", total) == 3 / 5
        assert db.values.selectivity("year", "zzz", 0) == 0.0

    def test_rebuild_after_load(self):
        db = db_of(DOC)
        assert len(db.postings_with_value("year", "2004")) == 1
        db.load("<lib><book><year>2004</year></book></lib>")
        assert len(db.postings_with_value("year", "2004")) == 2

    def test_empty_text_not_indexed(self):
        db = db_of("<a><b/><b>x</b></a>")
        db.build_value_index()
        assert db.values.cardinality("b", "") == 0
        assert db.values.cardinality("b", "x") == 1


class TestMatcherIntegration:
    def test_value_predicate_uses_index_and_agrees(self):
        db = db_of(DOC)
        pattern = parse_pattern('//book[/year="2003"]')
        witnesses = match_db(db, pattern)
        assert len(witnesses) == 2  # books 1 and 3

    def test_indexed_lookup_touches_fewer_records(self):
        many = "<r>" + "".join(
            f"<f><v>k{i % 50}</v></f>" for i in range(500)
        ) + "</r>"
        db = db_of(many)
        db.build_value_index()
        db.reset_cost()
        match_db(db, parse_pattern('//f[/v="k7"]'))
        indexed_ops = db.cost.cpu_ops
        # Compare with a full scan that post-filters by fetching records.
        db.reset_cost()
        witnesses = match_db(db, parse_pattern("//f[/v=$v]"))
        full_ops = db.cost.cpu_ops
        assert indexed_ops < full_ops
        assert len([w for w in witnesses if w.value_of("$v") == "k7"]) == 10
