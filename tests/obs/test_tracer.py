"""Unit tests for the hierarchical span tracer."""

import threading

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    activate,
    current_tracer,
)


class FakeCost:
    """A stand-in cost model with a controllable simulated clock."""

    def __init__(self):
        self.seconds = 0.0

    def simulated_seconds(self):
        return self.seconds


class TestDisabledPath:
    def test_disabled_span_is_the_shared_singleton(self):
        tracer = Tracer(enabled=False)
        # Zero allocations: every disabled span() call returns the one
        # module-level singleton, identically.
        first = tracer.span("a", category="x", anything=1)
        second = tracer.span("b")
        assert first is NULL_SPAN
        assert second is NULL_SPAN
        assert first.enabled is False

    def test_disabled_span_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert len(tracer) == 0
        assert tracer.records() == []

    def test_null_span_annotate_is_noop(self):
        assert NULL_SPAN.annotate(x=1) is NULL_SPAN

    def test_default_active_tracer_is_disabled(self):
        assert current_tracer().enabled is False
        assert obs.enabled() is False

    def test_module_helpers_are_noops_when_disabled(self):
        before = len(NULL_TRACER.metrics)
        obs.count("x3_nope_total", 5)
        obs.gauge("x3_nope", 1)
        obs.observe("x3_nope_seconds", 0.1)
        assert len(NULL_TRACER.metrics) == before
        assert obs.span("x") is NULL_SPAN


class TestNesting:
    def test_parent_child_from_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = {r.name: r for r in tracer.records()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None

    def test_explicit_parent_wins(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("adopted", parent=root.span_id):
            pass
        records = {r.name: r for r in tracer.records()}
        assert records["adopted"].parent_id == root.span_id

    def test_records_sorted_by_start(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [r.name for r in tracer.records()] == ["a", "b", "c"]

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("s", category="engine", points=4) as span:
            span.annotate(groups=7)
        record = tracer.records()[0]
        assert record.category == "engine"
        assert record.attrs == {"points": 4, "groups": 7}

    def test_error_attr_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        assert tracer.records()[0].attrs["error"] == "RuntimeError"


class TestSimulatedTime:
    def test_sim_duration_from_cost_model(self):
        tracer = Tracer()
        cost = FakeCost()
        cost.seconds = 1.0
        with tracer.span("work", cost=cost):
            cost.seconds = 3.5
        record = tracer.records()[0]
        assert record.sim_start == 1.0
        assert record.sim_duration == pytest.approx(2.5)

    def test_no_cost_means_zero_sim(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.records()[0].sim_duration == 0.0


class TestActivation:
    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        assert current_tracer() is not tracer
        with activate(tracer):
            assert current_tracer() is tracer
            assert obs.enabled()
        assert current_tracer().enabled is False

    def test_nested_activation_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_obs_trace_contextmanager(self):
        with obs.trace() as tracer:
            with obs.span("hello", category="test"):
                pass
            obs.count("x3_hello_total", 2)
        report = tracer.trace()
        assert report.span_names() == ["hello"]
        assert report.metrics.total("x3_hello_total") == 2

    def test_worker_threads_share_the_active_tracer(self):
        with obs.trace() as tracer:
            with obs.span("dispatch") as root:
                def work():
                    with obs.span("worker", parent=root.span_id):
                        pass
                threads = [threading.Thread(target=work) for _ in range(2)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        records = tracer.records()
        workers = [r for r in records if r.name == "worker"]
        assert len(workers) == 2
        assert all(r.parent_id == root.span_id for r in workers)
        # two distinct worker thread labels, one dispatcher label
        assert len({r.thread for r in workers}) == 2


class TestAbsorb:
    def test_absorb_remaps_ids_and_shifts_time(self):
        parent = Tracer()
        with parent.span("engine.run") as run:
            pass
        shipped = [
            SpanRecord(
                span_id=1,
                parent_id=None,
                name="engine.partition",
                category="engine",
                start=0.0,
                duration=0.5,
                thread="pid-1/worker",
            ),
            SpanRecord(
                span_id=2,
                parent_id=1,
                name="algo.BUC",
                category="algorithm",
                start=0.1,
                duration=0.4,
                thread="pid-1/worker",
            ),
        ]
        parent.absorb(shipped, parent_id=run.span_id, shift=10.0)
        records = {r.name: r for r in parent.records()}
        top = records["engine.partition"]
        child = records["algo.BUC"]
        assert top.parent_id == run.span_id
        assert child.parent_id == top.span_id
        assert top.span_id != 1  # remapped to a fresh id
        assert top.start == pytest.approx(10.0)
        assert child.start == pytest.approx(10.1)

    def test_absorb_empty_is_noop(self):
        tracer = Tracer()
        tracer.absorb([], parent_id=None, shift=1.0)
        assert len(tracer) == 0


class TestTraceReport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("a", category="engine"):
            with tracer.span("b", category="algorithm"):
                pass
        return tracer.trace()

    def test_helpers(self):
        report = self._traced()
        assert report.span_names() == ["a", "b"]
        assert report.categories() == ["algorithm", "engine"]
        assert len(report.spans_named("a")) == 1
        a = report.spans_named("a")[0]
        assert [r.name for r in report.children_of(a.span_id)] == ["b"]

    def test_summary_lists_every_name(self):
        text = self._traced().summary()
        assert "a" in text and "b" in text
        assert "wall_s" in text and "sim_s" in text
