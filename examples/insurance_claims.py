#!/usr/bin/env python3
"""Insurance-claims warehouse: the intro's other motivating domain.

The paper's motivation names "records of insurance claims" as a natural
XML warehouse: claims are heterogeneous trees (a claim may have several
damaged parties, an adjuster report may be missing, locations nest
differently per intake channel).  This example exercises the wider API
surface on that domain:

- a SUM measure (total payout) instead of COUNT;
- iceberg cubes (only cells with enough claims);
- summarizability-checked roll-ups (and the wrong answer you would get
  without the check);
- materialized views under a space budget;
- incremental maintenance as new claims arrive.

Run:  python examples/insurance_claims.py
"""

import random

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.bindings import FactTable
from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.incremental import IncrementalCube, split_rows
from repro.core.materialize import MaterializedCube, select_views
from repro.core.properties import PropertyOracle
from repro.core.query import X3Query
from repro.core.rollup import derivable, rollup
from repro.errors import CubeError
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.nodes import Document, Element

REGIONS = ["north", "south", "east", "west"]
PERILS = ["hail", "flood", "fire", "theft", "collision"]


def build_claims(n_claims: int, seed: int = 21) -> Document:
    """Claims with realistic heterogeneity: nested locations (phone
    intake wraps them in <intake>), optional adjusters, multiple
    damaged parties."""
    rng = random.Random(seed)
    root = Element("claims")
    for number in range(n_claims):
        claim = root.make_child(
            "claim",
            attrs={"id": f"c{number}", "payout": str(rng.randrange(1, 50) * 100)},
        )
        # Region: direct child, or nested under the intake channel.
        holder = claim
        if rng.random() < 0.25:
            holder = claim.make_child("intake")
        holder.make_child("region", text=rng.choice(REGIONS))
        # Peril: one or (multi-peril storms) two.
        claim.make_child("peril", text=rng.choice(PERILS))
        if rng.random() < 0.2:
            claim.make_child("peril", text=rng.choice(PERILS))
        # Adjuster: sometimes missing (not yet assigned).
        if rng.random() < 0.8:
            claim.make_child("adjuster", text=f"adj{rng.randrange(6)}")
    return Document(root, name="claims")


def claims_query(aggregate: AggregateSpec) -> X3Query:
    return X3Query(
        fact_tag="claim",
        axes=(
            AxisSpec.from_path(
                "$r", "region",
                frozenset({Relaxation.LND, Relaxation.PC_AD}),
            ),
            AxisSpec.from_path("$p", "peril"),
            AxisSpec.from_path("$a", "adjuster"),
        ),
        aggregate=aggregate,
        fact_id_path="@id",
    )


def main() -> None:
    doc = build_claims(500)
    count_query = claims_query(AggregateSpec("COUNT"))
    payout_query = claims_query(AggregateSpec("SUM", "@payout"))

    # ------------------------------------------------------------------
    print("== total payout by (region, peril) ==")
    payout_table = extract_fact_table(doc, payout_query)
    payout_cube = compute_cube(payout_table, "BUC")
    cuboid = payout_cube.cuboid_by_description(
        "$r:PC-AD, $p:rigid, $a:LND"
    )
    for key, value in sorted(cuboid.items(), key=lambda kv: -kv[1])[:5]:
        print(f"   {key}: ${value:,.0f}")

    # ------------------------------------------------------------------
    print("\n== iceberg: (region, peril, adjuster) cells with >= 8 claims ==")
    count_table = extract_fact_table(doc, count_query)
    iceberg = compute_cube(count_table, "BUC", min_support=8)
    top_point = count_table.lattice.point_by_description(
        "$r:rigid, $p:rigid, $a:rigid"
    )
    print(f"   {len(iceberg.cuboids[top_point])} qualifying cells "
          f"(full cuboid has "
          f"{len(compute_cube(count_table, 'BUC').cuboids[top_point])})")

    # ------------------------------------------------------------------
    print("\n== summarizability-checked roll-up ==")
    oracle = PropertyOracle.from_data(count_table)
    lattice = count_table.lattice
    source = lattice.point_by_description("$r:LND, $p:rigid, $a:rigid")
    target = lattice.point_by_description("$r:LND, $p:rigid, $a:LND")
    count_cube = compute_cube(count_table, "COUNTER")
    ok, reason = derivable(lattice, source, target, oracle)
    print(f"   derive peril totals from (peril, adjuster)? {ok}")
    print(f"   reason: {reason}")
    if not ok:
        wrong = rollup(count_cube, source, target, oracle, unsafe=True)
        right = count_cube.cuboids[target]
        diff = {
            key: (wrong.get(key), right.get(key))
            for key in right
            if wrong.get(key) != right.get(key)
        }
        sample = list(diff.items())[:2]
        print(f"   unchecked roll-up would be wrong in {len(diff)} cells,"
              f" e.g. {sample}")

    # ------------------------------------------------------------------
    print("\n== materialized views under a 1500-cell budget ==")
    selection = select_views(count_table, oracle, space_budget=1500)
    materialized = MaterializedCube(count_table, selection, oracle)
    reference = compute_cube(count_table, "NAIVE")
    materialized.verify_against(reference)
    print(f"   chose {len(selection.chosen)} cuboids "
          f"({selection.space_used} cells); "
          f"{selection.coverage_ratio():.0%} of the lattice servable "
          "without touching base")

    # ------------------------------------------------------------------
    print("\n== incremental maintenance ==")
    initial, delta = split_rows(count_table, 0.8)
    live = IncrementalCube(
        FactTable(lattice, list(initial), aggregate=count_table.aggregate)
    )
    updates = live.insert(list(delta))
    print(f"   appended {len(delta)} claims -> {updates} cell updates")
    assert live.as_result().same_contents(reference)
    print("   incremental result == full recompute: verified")

    try:
        compute_cube(payout_table, "BUC", min_support=3)
    except CubeError as error:
        print(f"\n(guard rails work too: {error})")


if __name__ == "__main__":
    main()
