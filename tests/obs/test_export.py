"""Unit tests for the trace/metrics exporters."""

import json
import re

from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    chrome_trace_events,
    chrome_trace_json,
    collapsed_stacks,
    prometheus_text,
)


def _record(
    span_id,
    parent_id=None,
    name="work",
    category="engine",
    start=0.0,
    duration=0.001,
    thread="pid-42/worker-0",
    **attrs,
):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        category=category,
        start=start,
        duration=duration,
        thread=thread,
        attrs=attrs,
    )


class TestChromeExport:
    def test_complete_events_carry_micros(self):
        events = chrome_trace_events(
            [_record(1, start=0.5, duration=0.25, points=3)]
        )
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        event = complete[0]
        assert event["ts"] == 500000.0
        assert event["dur"] == 250000.0
        assert event["pid"] == 42
        assert event["cat"] == "engine"
        assert event["args"]["points"] == 3

    def test_thread_metadata_emitted_once_per_thread(self):
        events = chrome_trace_events(
            [
                _record(1, thread="pid-42/worker-0"),
                _record(2, thread="pid-42/worker-0"),
                _record(3, thread="pid-42"),
            ]
        )
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2
        names = {e["args"]["name"] for e in meta}
        assert names == {"worker-0", "main"}

    def test_sim_seconds_in_args(self):
        record = _record(1)
        record.sim_duration = 0.125
        (event,) = [
            e for e in chrome_trace_events([record]) if e["ph"] == "X"
        ]
        assert event["args"]["sim_seconds"] == 0.125

    def test_full_document_is_valid_json(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total").inc(5)
        text = chrome_trace_json([_record(1)], registry)
        document = json.loads(text)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["metrics"] == {"x3_ops_total": 5.0}
        assert any(e["ph"] == "X" for e in document["traceEvents"])


class TestCollapsedStacks:
    def test_stack_paths_and_self_time(self):
        records = [
            _record(1, name="root", duration=0.004),
            _record(2, parent_id=1, name="child", duration=0.003),
        ]
        lines = collapsed_stacks(records).splitlines()
        assert "root 1000" in lines  # 4ms - 3ms child time
        assert "root;child 3000" in lines

    def test_zero_weight_dropped_and_empty_ok(self):
        assert collapsed_stacks([]) == ""
        only_parent_time = [
            _record(1, name="root", duration=0.002),
            _record(2, parent_id=1, name="child", duration=0.002),
        ]
        lines = collapsed_stacks(only_parent_time).splitlines()
        assert lines == ["root;child 2000"]


class TestPrometheus:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total", algorithm="BUC").inc(3)
        registry.gauge("x3_workers").set(2.5)
        text = prometheus_text(registry)
        assert "# TYPE x3_ops_total counter" in text
        assert 'x3_ops_total{algorithm="BUC"} 3' in text
        assert "# TYPE x3_workers gauge" in text
        assert "x3_workers 2.5" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("x3_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = prometheus_text(registry)
        assert 'x3_seconds_bucket{le="0.1"} 1' in text
        assert 'x3_seconds_bucket{le="1"} 2' in text
        assert 'x3_seconds_bucket{le="+Inf"} 2' in text
        assert "x3_seconds_sum 0.55" in text
        assert "x3_seconds_count 2" in text

    def test_type_header_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total", a="1").inc()
        registry.counter("x3_ops_total", a="2").inc()
        text = prometheus_text(registry)
        assert text.count("# TYPE x3_ops_total counter") == 1

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestPrometheusFormat:
    """Line-level conformance to the text exposition format 0.0.4."""

    LINE = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
        r" (\+Inf|-?[0-9.e+-]+)$"
    )

    def test_every_family_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total").inc()
        registry.gauge("x3_serve_window_hit_ratio", window="60s").set(0.5)
        registry.histogram("x3_seconds", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(registry)
        for name in (
            "x3_ops_total",
            "x3_serve_window_hit_ratio",
            "x3_seconds",
        ):
            assert f"# HELP {name} " in text
            assert f"# TYPE {name} " in text
            # HELP precedes TYPE precedes the samples
            assert text.index(f"# HELP {name}") < text.index(
                f"# TYPE {name}"
            )

    def test_known_series_get_curated_help_text(self):
        registry = MetricsRegistry()
        registry.gauge("x3_serve_window_hit_ratio", window="60s").set(0.5)
        registry.gauge("x3_trace_retained_total").set(3)
        text = prometheus_text(registry)
        assert (
            "# HELP x3_serve_window_hit_ratio Fraction of window "
            "requests" in text
        )
        assert "# HELP x3_trace_retained_total Traces tail-retained" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "x3_ops_total", point='$a:"rigid"\\$b', note="a\nb"
        ).inc()
        text = prometheus_text(registry)
        assert 'point="$a:\\"rigid\\"\\\\$b"' in text
        assert 'note="a\\nb"' in text

    def test_histogram_bucket_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.histogram(
            "x3_seconds", buckets=(1.0,), tier='cache"hit'
        ).observe(0.5)
        text = prometheus_text(registry)
        assert 'tier="cache\\"hit"' in text

    def test_sample_lines_match_the_grammar(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total", algorithm="BUC").inc(3)
        registry.gauge("x3_serve_window_hit_ratio", window="60s").set(0.5)
        registry.histogram(
            "x3_seconds", buckets=(0.1, 1.0), tier="cache"
        ).observe(0.5)
        for line in prometheus_text(registry).strip().split("\n"):
            if line.startswith("#"):
                continue
            assert self.LINE.match(line), line
