"""Query-time roll-up, slicing and summarizability checking.

The paper's central warning is that a coarser XML cuboid can NOT, in
general, be derived from a finer one: coverage gaps lose facts and
non-disjointness double-counts them.  This module gives downstream users
a safe API over a computed :class:`~repro.core.cube.CubeResult`:

- :func:`derivable` — is cuboid ``target`` derivable from cuboid
  ``source`` by pure aggregation, given a property oracle?  (The Sec. 3
  analysis as a decision procedure.)
- :func:`rollup` — perform the aggregation when it is safe, raise
  :class:`~repro.errors.CubeError` when it is not (opt-out with
  ``unsafe=True`` to reproduce the paper's wrong numbers).
- :func:`slice_cuboid` / :func:`dice_cuboid` — classic OLAP slice and
  dice over one cuboid.
- :func:`point_query` — fetch one cell from the best available cuboid.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.cube import CubeResult
from repro.core.groupby import Cuboid
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.errors import CubeError


def structural_drop_only(
    lattice: CubeLattice, source: LatticePoint, target: LatticePoint
) -> bool:
    """True when ``target`` is obtained from ``source`` purely by
    dropping axes (every kept axis keeps the same structural state).

    This is the only lattice direction roll-up can ever take: adding a
    structural relaxation introduces *new* matches that the source
    cuboid has never seen.
    """
    for position, states in enumerate(lattice.axis_states):
        if target[position] == states.dropped_index:
            if source[position] == states.dropped_index:
                continue
            # Fine: the axis is aggregated away.
            continue
        if source[position] != target[position]:
            return False
    return True


def derivable(
    lattice: CubeLattice,
    source: LatticePoint,
    target: LatticePoint,
    oracle: PropertyOracle,
) -> Tuple[bool, str]:
    """Can ``target`` be computed from ``source`` by aggregation alone?

    Returns (answer, reason).  Requirements:

    1. the move is drop-only (no new structural relaxations);
    2. the source cuboid is pairwise disjoint (otherwise facts in
       several source groups are double-counted);
    3. the source has total coverage on the axes being dropped... more
       precisely, every fact of the target participates in the source —
       guaranteed when the source's kept axes are all covered.
    """
    if source == target:
        return True, "identical points"
    if not structural_drop_only(lattice, source, target):
        return False, (
            "target relaxes structure; its groups contain matches the "
            "source cuboid never saw"
        )
    if not oracle.disjoint(source):
        return False, (
            "source cuboid is not pairwise disjoint; adding up its "
            "groups double-counts repeated sub-elements"
        )
    if not oracle.covered(source):
        return False, (
            "source cuboid lacks total coverage; facts with missing "
            "sub-elements never reached it"
        )
    return True, "drop-only move from a disjoint, covering cuboid"


#: Aggregates whose finalized cells can be re-aggregated by summation.
ROLLUP_AGGREGATES = ("COUNT", "SUM")


def rollup_cuboid(
    lattice: CubeLattice,
    source_cuboid: Cuboid,
    source: LatticePoint,
    target: LatticePoint,
) -> Cuboid:
    """Aggregate raw source cells down to ``target`` (no soundness check).

    The arithmetic core of :func:`rollup`, shared with the serving layer
    (:mod:`repro.serve`), which derives answers from *cached* cuboids
    rather than a full :class:`CubeResult`.  Only valid for the
    distributive aggregates in :data:`ROLLUP_AGGREGATES`; callers are
    responsible for the :func:`derivable` check.
    """
    source_kept = lattice.kept_axes(source)
    target_kept = set(lattice.kept_axes(target))
    keep = [
        index
        for index, axis in enumerate(source_kept)
        if axis in target_kept
    ]
    out_states: Dict[Tuple, float] = {}
    for key, value in source_cuboid.items():
        new_key = tuple(key[index] for index in keep)
        out_states[new_key] = out_states.get(new_key, 0.0) + value
    return dict(out_states)


def rollup(
    cube: CubeResult,
    source: LatticePoint,
    target: LatticePoint,
    oracle: PropertyOracle,
    unsafe: bool = False,
) -> Cuboid:
    """Aggregate the source cuboid down to the target point.

    Raises :class:`CubeError` when the derivation is unsound, unless
    ``unsafe=True`` (useful to demonstrate the paper's wrong answers).
    """
    if cube.aggregate not in ROLLUP_AGGREGATES:
        raise CubeError(
            f"roll-up over finalized cells needs a distributive "
            f"aggregate; {cube.aggregate} requires partial states "
            "(recompute from the fact table instead)"
        )
    ok, reason = derivable(cube.lattice, source, target, oracle)
    if not ok and not unsafe:
        raise CubeError(
            f"cannot roll up {cube.lattice.describe(source)} -> "
            f"{cube.lattice.describe(target)}: {reason}"
        )
    return rollup_cuboid(cube.lattice, cube.cuboid(source), source, target)


def slice_cuboid(
    cuboid: Cuboid, axis_index: int, value: str
) -> Cuboid:
    """Fix one key component to a value and drop it from the keys."""
    out: Cuboid = {}
    for key, cell in cuboid.items():
        if axis_index >= len(key):
            raise CubeError(
                f"slice index {axis_index} out of range for key {key}"
            )
        if key[axis_index] == value:
            out[key[:axis_index] + key[axis_index + 1 :]] = cell
    return out


def dice_cuboid(
    cuboid: Cuboid, predicates: Dict[int, Sequence[str]]
) -> Cuboid:
    """Keep only cells whose key components fall in the given sets."""
    allowed = {index: set(values) for index, values in predicates.items()}
    out: Cuboid = {}
    for key, cell in cuboid.items():
        if all(
            index < len(key) and key[index] in values
            for index, values in allowed.items()
        ):
            out[key] = cell
    return out


def point_query(
    cube: CubeResult,
    point: LatticePoint,
    key: Tuple[str, ...],
) -> Optional[float]:
    """Cell lookup at a lattice point (None when the cell is empty)."""
    return cube.cell(point, key)


def best_source_for(
    cube: CubeResult,
    target: LatticePoint,
    oracle: PropertyOracle,
) -> Optional[LatticePoint]:
    """Among the cube's *computed* cuboids, the smallest one that can
    soundly derive ``target`` (used by the materialization layer)."""
    best: Optional[LatticePoint] = None
    best_size = -1
    for candidate in cube.cuboids:
        ok, _ = derivable(cube.lattice, candidate, target, oracle)
        if not ok:
            continue
        size = len(cube.cuboids[candidate])
        if best is None or size < best_size:
            best = candidate
            best_size = size
    return best
