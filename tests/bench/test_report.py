"""Unit tests for the ASCII report rendering."""

from repro.bench.figures import FIGURES
from repro.bench.harness import AlgorithmRun
from repro.bench.report import format_figure, format_runs_csv


def run(algorithm="BUC", n_axes=2, sim=0.5, correct=None, passes=1):
    return AlgorithmRun(
        workload="w",
        algorithm=algorithm,
        n_axes=n_axes,
        n_facts=100,
        simulated_seconds=sim,
        wall_seconds=0.01,
        cells=10,
        passes=passes,
        correct=correct,
    )


class TestFormatFigure:
    def test_series_table(self):
        spec = FIGURES["fig4"]
        runs = [
            run(a, axes, sim)
            for a in spec.algorithms
            for axes, sim in [(2, 0.1), (3, 0.2)]
        ]
        text = format_figure(spec, runs)
        assert "fig4" in text
        assert "BUC" in text
        assert "0.100" in text

    def test_bar_chart_for_single_axis(self):
        spec = FIGURES["fig10"]
        runs = [run(a, 4, 0.3) for a in spec.algorithms]
        text = format_figure(spec, runs)
        assert "#" in text
        assert "bar chart" in text

    def test_incorrect_flag_shown(self):
        spec = FIGURES["fig10"]
        runs = [run("BUCOPT", 4, 0.3, correct=False)]
        assert "INCORRECT" in format_figure(spec, runs)

    def test_thrash_note(self):
        spec = FIGURES["fig4"]
        runs = [run("COUNTER", 2, 0.1, passes=3), run("COUNTER", 3, 0.5, passes=5)]
        assert "5" in format_figure(spec, runs)

    def test_wrongness_note_in_series(self):
        spec = FIGURES["fig9"]
        runs = [
            run("TDOPT", 2, 0.1, correct=False),
            run("TDOPT", 3, 0.2, correct=False),
        ]
        assert "incorrect" in format_figure(spec, runs)


class TestCsv:
    def test_header_and_rows(self):
        text = format_runs_csv([run()])
        lines = text.splitlines()
        assert lines[0].startswith("workload,algorithm")
        assert len(lines) == 2
        assert "BUC" in lines[1]
