"""The central correctness matrix (paper Sec. 3/4).

Across every summarizability regime and density:

- NAIVE, COUNTER, BUC, TD, BUCCUST, TDCUST are ALWAYS correct;
- BUCOPT and TDOPT are correct iff disjointness holds;
- TDOPTALL is correct iff both properties hold (in the LND-only
  workloads the generators produce for the coverage-holds settings).
"""

import pytest

from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from tests.conftest import small_workload

REGIMES = [
    (True, True),
    (True, False),
    (False, True),
    (False, False),
]

ALWAYS = ["COUNTER", "BUC", "TD", "BUCCUST", "TDCUST"]
NEEDS_DISJOINT = ["BUCOPT", "TDOPT"]
NEEDS_BOTH = ["TDOPTALL"]


def build(coverage, disjoint, density, seed=17, n_facts=60):
    workload = small_workload(
        coverage=coverage,
        disjoint=disjoint,
        density=density,
        seed=seed,
        n_facts=n_facts,
    )
    table = workload.fact_table()
    oracle = PropertyOracle.from_flags(
        table.lattice, disjoint, coverage
    )
    reference = compute_cube(table, "NAIVE")
    return table, oracle, reference


@pytest.mark.parametrize("coverage,disjoint", REGIMES)
@pytest.mark.parametrize("density", ["sparse", "dense"])
class TestMatrix:
    def test_always_correct_algorithms(self, coverage, disjoint, density):
        table, oracle, reference = build(coverage, disjoint, density)
        for name in ALWAYS:
            result = compute_cube(table, name, oracle=oracle)
            assert result.same_contents(reference), (
                f"{name} wrong on coverage={coverage} disjoint={disjoint} "
                f"{density}: {result.diff(reference)[:3]}"
            )

    def test_disjointness_dependent(self, coverage, disjoint, density):
        table, oracle, reference = build(coverage, disjoint, density)
        for name in NEEDS_DISJOINT:
            result = compute_cube(table, name, oracle=oracle)
            if disjoint:
                assert result.same_contents(reference), (
                    f"{name} must be correct when disjointness holds: "
                    f"{result.diff(reference)[:3]}"
                )

    def test_tdoptall_correct_when_both_hold(
        self, coverage, disjoint, density
    ):
        table, oracle, reference = build(coverage, disjoint, density)
        result = compute_cube(table, "TDOPTALL", oracle=oracle)
        if coverage and disjoint:
            assert result.same_contents(reference), result.diff(reference)[:3]


class TestExpectedWrongness:
    """The optimized variants must actually be wrong where the paper
    says they compute incorrect results (Fig. 9 ran them anyway)."""

    def test_opt_wrong_without_disjointness(self):
        table, oracle, reference = build(
            coverage=True, disjoint=False, density="dense", n_facts=120
        )
        for name in NEEDS_DISJOINT:
            result = compute_cube(table, name, oracle=oracle)
            assert not result.same_contents(reference), (
                f"{name} should double-count on non-disjoint data"
            )

    def test_tdoptall_wrong_without_coverage(self):
        table, oracle, reference = build(
            coverage=False, disjoint=True, density="dense", n_facts=120
        )
        result = compute_cube(table, "TDOPTALL", oracle=oracle)
        assert not result.same_contents(reference)

    def test_figure1_wrongness(self, fig1_table):
        reference = compute_cube(fig1_table, "NAIVE")
        for name in NEEDS_DISJOINT + NEEDS_BOTH:
            result = compute_cube(fig1_table, name)
            assert not result.same_contents(reference)


class TestSumAggregateEquivalence:
    """The paper: other distributive/algebraic operators behave alike."""

    @pytest.mark.parametrize("function,measure", [("SUM", "@w"), ("AVG", "@w")])
    def test_all_correct_algorithms_agree(self, function, measure):
        import random

        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query
        from repro.xmlmodel.nodes import Document, Element

        rng = random.Random(4)
        root = Element("r")
        for number in range(50):
            fact = root.make_child("f", attrs={"w": str(rng.randrange(10))})
            if rng.random() < 0.8:
                fact.make_child("a", text=f"a{rng.randrange(4)}")
            fact.make_child("b", text=f"b{rng.randrange(3)}")
            if rng.random() < 0.3:
                fact.make_child("b", text=f"b{rng.randrange(3)}")
        doc = Document(root)
        query = X3Query(
            fact_tag="f",
            axes=(
                AxisSpec.from_path("$a", "a"),
                AxisSpec.from_path("$b", "b"),
            ),
            aggregate=AggregateSpec(function, measure),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        reference = compute_cube(table, "NAIVE")
        for name in ALWAYS:
            oracle = PropertyOracle.from_data(table)
            result = compute_cube(table, name, oracle=oracle)
            assert result.same_contents(reference), (
                f"{name} with {function}: {result.diff(reference)[:3]}"
            )


class TestMinMaxEquivalence:
    @pytest.mark.parametrize("function", ["MIN", "MAX"])
    def test_always_correct_agree(self, function):
        import random

        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query
        from repro.xmlmodel.nodes import Document, Element

        rng = random.Random(11)
        root = Element("r")
        for number in range(40):
            fact = root.make_child(
                "f", attrs={"w": str(rng.randrange(1, 100))}
            )
            fact.make_child("a", text=f"a{rng.randrange(3)}")
        query = X3Query(
            fact_tag="f",
            axes=(AxisSpec.from_path("$a", "a"),),
            aggregate=AggregateSpec(function, "@w"),
            fact_id_path="",
        )
        table = extract_fact_table(Document(root), query)
        reference = compute_cube(table, "NAIVE")
        from repro.core.properties import PropertyOracle

        oracle = PropertyOracle.from_data(table)
        for name in ALWAYS:
            result = compute_cube(table, name, oracle=oracle)
            assert result.same_contents(reference), (name, function)
