"""Unit tests for schema-driven lattice pruning (Sec. 3.7)."""

from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.prune import (
    axis_state_aliases,
    compute_cube_pruned,
    prune_lattice,
)
from repro.core.states import AxisStates
from repro.datagen.publications import figure1_document, query1
from repro.schema.dtd import Cardinality, Dtd


def rigid_schema() -> Dtd:
    """A schema where author/name never nest deeper and name only occurs
    under author: both PC-AD and SP are provably no-ops."""
    dtd = Dtd()
    dtd.declare_element(
        "database", children=[("publication", Cardinality.STAR)]
    )
    dtd.declare_element(
        "publication",
        children=[
            ("author", Cardinality.ONE),
            ("publisher", Cardinality.OPTIONAL),
            ("year", Cardinality.ONE),
        ],
        attributes=["id"],
    )
    dtd.declare_element("author", children=[("name", Cardinality.ONE)])
    dtd.declare_element("name", has_text=True)
    dtd.declare_element("publisher", attributes=["id"])
    dtd.declare_element("year", has_text=True)
    return dtd


def nesting_schema() -> Dtd:
    """A schema where authors may nest under an authors wrapper: PC-AD
    genuinely matters and must NOT be pruned."""
    dtd = rigid_schema()
    dtd.declare_element(
        "publication",
        children=[
            ("author", Cardinality.STAR),
            ("authors", Cardinality.OPTIONAL),
            ("publisher", Cardinality.OPTIONAL),
            ("year", Cardinality.ONE),
        ],
        attributes=["id"],
    )
    dtd.declare_element(
        "authors", children=[("author", Cardinality.PLUS)]
    )
    return dtd


class TestAliases:
    def test_rigid_schema_collapses_everything(self):
        query = query1()
        states = AxisStates.for_axis(query.axes[0])  # $n: SP+PC-AD
        aliases = axis_state_aliases(rigid_schema(), states, "publication")
        # Every structural state collapses to rigid.
        assert set(aliases.values()) == {states.rigid_index}

    def test_nesting_schema_keeps_pcad(self):
        query = query1()
        states = AxisStates.for_axis(query.axes[0])
        aliases = axis_state_aliases(
            nesting_schema(), states, "publication"
        )
        from repro.patterns.relaxation import Relaxation

        pcad = states.index_of(frozenset({Relaxation.PC_AD}))
        assert aliases[pcad] == pcad  # PC-AD is NOT a no-op here


class TestPruneLattice:
    def test_rigid_schema_prunes_structural_points(self):
        query = query1()
        lattice = query.lattice()
        mapping = prune_lattice(lattice, rigid_schema(), "publication")
        canonical = set(mapping.values())
        assert len(canonical) < lattice.size()
        # LND structure is untouched: the classic 2^3 cube remains.
        assert len(canonical) == 8

    def test_mapping_is_idempotent(self):
        query = query1()
        lattice = query.lattice()
        mapping = prune_lattice(lattice, rigid_schema(), "publication")
        for point, canonical in mapping.items():
            assert mapping[canonical] == canonical


class TestComputePruned:
    def test_results_match_full_cube_on_conforming_data(self):
        """On data that conforms to the rigid schema, pruned computation
        must equal the full cube."""
        from repro.datagen.publications import random_publications

        doc = random_publications(
            60,
            p_missing_publisher=0.3,
            p_extra_author=0,
            p_nested_author=0,
            p_pubdata=0,
            p_second_year=0,
        )
        table = extract_fact_table(doc, query1())
        pruned, saved = compute_cube_pruned(
            table, rigid_schema(), "publication"
        )
        full = compute_cube(table, "NAIVE")
        assert saved == 30 - 8
        assert pruned.same_contents(full)

    def test_unsound_schema_detected_by_comparison(self):
        """Pruning with a schema the data violates yields wrong cuboids
        (the schema is an assumption, like disjointness for BUCOPT)."""
        table = extract_fact_table(figure1_document(), query1())
        pruned, _ = compute_cube_pruned(
            table, rigid_schema(), "publication"
        )
        full = compute_cube(table, "NAIVE")
        assert not pruned.same_contents(full)

    def test_sound_schema_on_figure1(self):
        """With the schema that actually describes Figure 1 (nesting
        allowed), only provably-coincident points collapse and the
        result stays correct."""
        table = extract_fact_table(figure1_document(), query1())
        pruned, saved = compute_cube_pruned(
            table, nesting_schema(), "publication"
        )
        full = compute_cube(table, "NAIVE")
        assert pruned.same_contents(full)
        assert saved >= 0
