"""Property tests for the columnar BUC and TD kernels.

Parity invariants over arbitrary generated fact tables (multi-valued
axes, missing values, duplicate annotations, unicode labels):

- the columnar kernel of every BUC/TD family member is bit-identical to
  its own legacy dict path (same algorithm, same oracle, only the
  encoding flips);
- columnar BUC and TD are bit-identical to serial NAIVE for COUNT and
  the float-folding aggregates;
- the answers survive any memory budget (spill path) and a truthful or
  denying property oracle on the CUST variants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.core.properties import PropertyOracle
from tests.prop.test_hypothesis_columnar import random_fact_table


@given(random_fact_table(), st.sampled_from(["BUC", "TD"]))
@settings(max_examples=50, deadline=None)
def test_columnar_kernel_matches_dict_path(table, algorithm):
    dict_run = compute_cube(
        table, ExecutionOptions(algorithm=algorithm, encoding="dict")
    )
    columnar_run = compute_cube(
        table, ExecutionOptions(algorithm=algorithm, encoding="columnar")
    )
    assert columnar_run.cuboids == dict_run.cuboids


@given(random_fact_table(), st.sampled_from(["BUC", "TD"]))
@settings(max_examples=50, deadline=None)
def test_columnar_kernel_bit_identical_to_naive(table, algorithm):
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(
        table, ExecutionOptions(algorithm=algorithm, encoding="columnar")
    )
    assert result.cuboids == reference.cuboids


@given(
    random_fact_table(aggregate=AggregateSpec("AVG", "@m")),
    st.sampled_from(["BUC", "TD"]),
    st.sampled_from(["SUM", "MIN", "MAX", "AVG"]),
)
@settings(max_examples=30, deadline=None)
def test_float_aggregates_bit_identical_to_naive(table, algorithm, function):
    table = FactTable(
        table.lattice, table.rows, AggregateSpec(function, "@m")
    )
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(
        table, ExecutionOptions(algorithm=algorithm, encoding="columnar")
    )
    assert result.cuboids == reference.cuboids


@given(
    random_fact_table(),
    st.sampled_from(["BUC", "TD"]),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_correct_under_any_memory_budget(table, algorithm, budget):
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm=algorithm, encoding="columnar", memory_entries=budget
        ),
    )
    assert result.cuboids == reference.cuboids


@given(
    random_fact_table(),
    st.sampled_from(["BUCCUST", "TDCUST"]),
    st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_cust_kernels_with_any_oracle_verdict(table, algorithm, truthful):
    """CUST kernels stay exact whether the oracle grants (data-derived,
    so only where the properties actually hold) or denies everything —
    the verdict only picks the plan."""
    if truthful:
        oracle = PropertyOracle.from_data(table)
    else:
        oracle = PropertyOracle.from_flags(table.lattice, False, False)
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm=algorithm, oracle=oracle, encoding="columnar"
        ),
    )
    assert result.cuboids == reference.cuboids
