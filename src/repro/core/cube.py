"""Cube results, execution options and the ``compute_cube`` entry point.

The one public way to run a cube computation is::

    options = ExecutionOptions(algorithm="BUC", workers=4, engine="thread")
    result = compute_cube(table, options)

:class:`ExecutionOptions` is the single options object threaded through
``compute_cube``, :class:`repro.warehouse.CubeSession`, the bench harness
and both CLIs.  The historical keyword surface
(``compute_cube(table, "BUC", oracle=..., memory_entries=...)``) still
works through a thin shim that emits :class:`DeprecationWarning`.

Cost accounting is typed: :class:`CubeResult.cost` is a
:class:`CostSnapshot` (page I/O, CPU ops, simulated and wall seconds,
plus a per-worker breakdown when the parallel engine ran).  Dict-style
reads (``result.cost["simulated_seconds"]``) keep working during the
deprecation window via :meth:`CostSnapshot.__getitem__`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine.metrics import EngineMetrics
    from repro.obs import Trace

from repro.core.bindings import FactTable, GroupKey
from repro.core.groupby import Cuboid
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.errors import CubeError

ENGINE_CHOICES = ("auto", "serial", "thread", "process")
PARTITION_STRATEGIES = ("balanced", "antichain", "axis")
ENCODING_CHOICES = ("auto", "columnar", "dict")

_UNSET: Any = object()


# ----------------------------------------------------------------------
# execution options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionOptions:
    """Everything one cube run needs, in one immutable object.

    Attributes:
        algorithm: registered algorithm name (see
            :func:`repro.core.algorithms.registry.available`).
        oracle: property oracle for the optimized/customized variants;
            ``None`` means the pessimistic oracle (no property assumed).
        memory_entries: operator memory budget in entries (``None`` uses
            the default budget).
        points: restrict computation to these lattice points (``None``
            means the whole lattice); normalized to a tuple.
        min_support: iceberg threshold — only groups with COUNT >= this
            value are reported (COUNT cubes only).
        workers: worker pool size for the parallel engine; ``1`` runs the
            deterministic serial path.
        engine: ``"auto"`` | ``"serial"`` | ``"thread"`` | ``"process"``.
            ``auto`` resolves to ``serial`` for one worker and ``thread``
            otherwise (see :mod:`repro.core.engine`).
        partition_strategy: how the lattice is split across workers —
            ``"balanced"`` (weighted LPT bins), ``"antichain"`` (contiguous
            rank slices) or ``"axis"`` (per-axis-state subtrees).
        trace: collect an observability trace (:mod:`repro.obs`) for
            this run; the result's :attr:`CubeResult.trace` then holds
            spans (parse/timber/algorithm/engine layers) and the unified
            metrics registry.  When a tracer is already active (inside
            ``obs.trace()``), the run joins it regardless of this flag.
        encoding: which physical fact representation the algorithm
            iterates — ``"auto"`` lets each algorithm pick its fastest
            path (the BUC/TD families run on the dictionary-encoded
            columns), ``"columnar"`` asks for the encoded path
            explicitly, and ``"dict"`` forces the legacy
            :class:`~repro.core.bindings.FactRow` path (what the
            columnar-vs-dict duels and cross-checks pin).  Algorithms
            with a single physical path (NAIVE, COUNTER, COLUMNAR)
            ignore it.
    """

    algorithm: str = "NAIVE"
    oracle: Optional[PropertyOracle] = None
    memory_entries: Optional[int] = None
    points: Optional[Tuple[LatticePoint, ...]] = None
    min_support: float = 0.0
    workers: int = 1
    engine: str = "auto"
    partition_strategy: str = "balanced"
    trace: bool = False
    encoding: str = "auto"

    def __post_init__(self) -> None:
        if self.points is not None and not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        if self.workers < 1:
            raise CubeError(f"workers must be >= 1, got {self.workers}")
        if self.engine not in ENGINE_CHOICES:
            raise CubeError(
                f"unknown engine {self.engine!r}; choose from "
                f"{ENGINE_CHOICES}"
            )
        if self.partition_strategy not in PARTITION_STRATEGIES:
            raise CubeError(
                f"unknown partition strategy {self.partition_strategy!r}; "
                f"choose from {PARTITION_STRATEGIES}"
            )
        if self.encoding not in ENCODING_CHOICES:
            raise CubeError(
                f"unknown encoding {self.encoding!r}; choose from "
                f"{ENCODING_CHOICES}"
            )

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "ExecutionOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    @property
    def effective_engine(self) -> str:
        """The engine ``"auto"`` resolves to for this worker count."""
        if self.engine != "auto":
            return self.engine
        return "serial" if self.workers <= 1 else "thread"


# ----------------------------------------------------------------------
# cost accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerCost:
    """One worker's share of a parallel run."""

    worker: str
    partitions: int
    points: int
    wall_seconds: float
    simulated_seconds: float
    queue_wait_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "worker": self.worker,
            "partitions": self.partitions,
            "points": self.points,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


@dataclass(frozen=True)
class CostSnapshot:
    """Typed cost-model snapshot of one cube run.

    ``simulated_seconds`` is the total simulated work summed over all
    partitions; ``parallel_simulated_seconds`` is the critical path under
    the worker schedule that actually ran (equal to ``simulated_seconds``
    for serial runs), so ``simulated_seconds / parallel_simulated_seconds``
    is the modeled speedup.
    """

    cpu_ops: int = 0
    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    merge_seconds: float = 0.0
    parallel_simulated_seconds: float = 0.0
    workers: Tuple[WorkerCost, ...] = ()

    _INT_FIELDS = (
        "cpu_ops",
        "page_reads",
        "page_writes",
        "buffer_hits",
        "buffer_misses",
        "evictions",
    )
    _FLOAT_FIELDS = (
        "simulated_seconds",
        "wall_seconds",
        "merge_seconds",
        "parallel_simulated_seconds",
    )

    def __post_init__(self) -> None:
        if self.parallel_simulated_seconds == 0.0 and self.simulated_seconds:
            object.__setattr__(
                self, "parallel_simulated_seconds", self.simulated_seconds
            )

    # ------------------------------------------------------------------
    @property
    def total_io(self) -> int:
        return self.page_reads + self.page_writes

    @property
    def speedup_estimate(self) -> float:
        """Modeled speedup: total simulated work over the critical path."""
        if self.parallel_simulated_seconds <= 0.0:
            return 1.0
        return self.simulated_seconds / self.parallel_simulated_seconds

    # ------------------------------------------------------------------
    @staticmethod
    def from_mapping(
        data: Mapping[str, float], wall_seconds: float = 0.0
    ) -> "CostSnapshot":
        """Build from a :meth:`repro.timber.stats.CostModel.snapshot`."""
        kwargs: Dict[str, Any] = {}
        for name in CostSnapshot._INT_FIELDS:
            if name in data:
                kwargs[name] = int(data[name])
        for name in CostSnapshot._FLOAT_FIELDS:
            if name in data:
                kwargs[name] = float(data[name])
        if wall_seconds:
            kwargs["wall_seconds"] = wall_seconds
        return CostSnapshot(**kwargs)

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping for the CSV writers (per-worker rows excluded)."""
        out: Dict[str, float] = {}
        for name in self._INT_FIELDS + self._FLOAT_FIELDS:
            out[name] = getattr(self, name)
        out["n_workers"] = len(self.workers)
        return out

    # ------------------------------------------------------------------
    # deprecated dict-style reads
    # ------------------------------------------------------------------
    def _warn_dict_access(self) -> None:
        warnings.warn(
            "dict-style CostSnapshot access is deprecated; read the "
            "attribute directly or use .as_dict()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> float:
        self._warn_dict_access()
        try:
            return self.as_dict()[key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        self._warn_dict_access()
        return self.as_dict().get(key, default)

    def keys(self) -> Iterator[str]:
        self._warn_dict_access()
        return iter(self.as_dict())


def _coerce_cost(
    cost: Union[CostSnapshot, Mapping[str, float], None]
) -> CostSnapshot:
    if cost is None:
        return CostSnapshot()
    if isinstance(cost, CostSnapshot):
        return cost
    return CostSnapshot.from_mapping(cost)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class CubeResult:
    """The full cube: one cuboid per lattice point, plus run metadata.

    Attributes:
        lattice: the lattice the cube was computed over.
        cuboids: point -> (group key -> aggregate value).
        algorithm: name of the algorithm that produced it.
        cost: typed cost snapshot taken right after the run.
        passes: number of data passes (COUNTER reports thrashing here).
        metrics: engine-level metrics (partitioning, queue wait, merge)
            when the parallel engine ran; ``None`` for direct runs.
        trace: the observability report (spans + metrics registry) when
            the run was traced (``ExecutionOptions(trace=True)`` or an
            active ``obs.trace()``); ``None`` otherwise.
    """

    lattice: CubeLattice
    cuboids: Dict[LatticePoint, Cuboid]
    algorithm: str = ""
    cost: CostSnapshot = field(default_factory=CostSnapshot)
    passes: int = 1
    aggregate: str = "COUNT"
    metrics: Optional["EngineMetrics"] = None
    trace: Optional["Trace"] = None

    def __post_init__(self) -> None:
        self.cost = _coerce_cost(self.cost)

    # ------------------------------------------------------------------
    def cuboid(self, point: LatticePoint) -> Cuboid:
        try:
            return self.cuboids[point]
        except KeyError:
            raise CubeError(
                f"no cuboid at {self.lattice.describe(point)}"
            ) from None

    def cuboid_by_description(self, text: str) -> Cuboid:
        return self.cuboid(self.lattice.point_by_description(text))

    def cell(self, point: LatticePoint, key: GroupKey) -> Optional[float]:
        return self.cuboids.get(point, {}).get(key)

    def total_cells(self) -> int:
        return sum(len(cuboid) for cuboid in self.cuboids.values())

    @property
    def simulated_seconds(self) -> float:
        return self.cost.simulated_seconds

    @property
    def wall_seconds(self) -> float:
        return self.cost.wall_seconds

    # ------------------------------------------------------------------
    def same_contents(self, other: "CubeResult", tol: float = 1e-9) -> bool:
        """Value equality of every cuboid (used to validate algorithms)."""
        if set(self.cuboids) != set(other.cuboids):
            return False
        for point, cuboid in self.cuboids.items():
            other_cuboid = other.cuboids[point]
            if set(cuboid) != set(other_cuboid):
                return False
            for key, value in cuboid.items():
                if abs(value - other_cuboid[key]) > tol:
                    return False
        return True

    def diff(self, other: "CubeResult") -> List[str]:
        """Human-readable differences (first few) for test messages."""
        out: List[str] = []
        for point in sorted(set(self.cuboids) | set(other.cuboids)):
            mine = self.cuboids.get(point, {})
            theirs = other.cuboids.get(point, {})
            for key in set(mine) | set(theirs):
                left, right = mine.get(key), theirs.get(key)
                if left != right:
                    out.append(
                        f"{self.lattice.describe(point)} {key}: "
                        f"{left} != {right}"
                    )
                    if len(out) >= 10:
                        return out
        return out

    def summary(self) -> str:
        return (
            f"{self.algorithm}: {len(self.cuboids)} cuboids, "
            f"{self.total_cells()} cells, "
            f"{self.simulated_seconds:.3f} sim-s, passes={self.passes}"
        )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def _options_from_legacy(
    algorithm: Optional[str],
    legacy: Dict[str, Any],
) -> ExecutionOptions:
    warnings.warn(
        "compute_cube(table, algorithm, oracle=..., ...) keyword arguments "
        "are deprecated; pass compute_cube(table, ExecutionOptions(...)) "
        "instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionOptions(algorithm=algorithm or "NAIVE", **legacy)


def compute_cube(
    table: FactTable,
    algorithm: Union[str, ExecutionOptions, None] = None,
    options: Optional[ExecutionOptions] = None,
    *,
    oracle: Any = _UNSET,
    memory_entries: Any = _UNSET,
    points: Any = _UNSET,
    min_support: Any = _UNSET,
) -> CubeResult:
    """Compute the cube of an extracted fact table.

    Primary signature::

        compute_cube(table, ExecutionOptions(algorithm="BUC", workers=4))
        compute_cube(table, options=ExecutionOptions(...))

    The legacy keyword surface (``algorithm`` as a string plus ``oracle``,
    ``memory_entries``, ``points``, ``min_support``) is still accepted but
    emits :class:`DeprecationWarning`; it builds the same
    :class:`ExecutionOptions` under the hood.
    """
    if isinstance(algorithm, ExecutionOptions):
        if options is not None:
            raise CubeError("pass ExecutionOptions once, not twice")
        options, algorithm = algorithm, None
    legacy = {
        name: value
        for name, value in (
            ("oracle", oracle),
            ("memory_entries", memory_entries),
            ("points", points),
            ("min_support", min_support),
        )
        if value is not _UNSET
    }
    if options is not None:
        if algorithm is not None or legacy:
            raise CubeError(
                "pass either ExecutionOptions or the legacy keyword "
                "arguments, not both"
            )
    else:
        options = _options_from_legacy(algorithm, legacy)

    from repro.core.engine import execute

    return execute(table, options)
