"""Golden parse -> AST -> compile fixtures on the Figure-1 workload.

Each ``tests/lang/golden/*.json`` fixture pins one statement form:
its canonical pretty-print, the catalog cube it addresses, and the
exact :class:`~repro.core.query.Query` wire form it compiles to.  The
executable fixtures are then run against BOTH backends and must answer
bit-identically to the equivalent programmatic query — the language
front end adds syntax, never semantics.

Regenerate after a deliberate grammar change with::

    PYTHONPATH=src python tests/lang/generate_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterCoordinator
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.query import Query
from repro.core.xq_parser import parse_x3_query
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.lang.ast import X3Statement, pretty
from repro.lang.compiler import (
    CompiledDefinition,
    CompiledQuery,
    compile_statement,
)
from repro.lang.parser import parse_statement
from repro.serve import CubeServer
from repro.server.model import CubeCatalog, LogicalCube

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_NAMES = sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))

BACKENDS = ("serve", "cluster")


def load(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.fixture(scope="module")
def table():
    return extract_fact_table(
        [figure1_document()], parse_x3_query(QUERY1_TEXT)
    )


def make_backend(kind, table):
    oracle = PropertyOracle.from_data(table)
    if kind == "cluster":
        return ClusterCoordinator(
            table, 2, 2, oracle=oracle, hedge_deadline_seconds=None
        )
    return CubeServer(table, oracle)


def make_catalog(backend):
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", backend.lattice), backend
    )
    return catalog


def close(backend):
    closer = getattr(backend, "close", None)
    if callable(closer):
        closer()


def test_every_verb_has_a_fixture():
    covered = {load(name)["form"] for name in GOLDEN_NAMES}
    assert covered >= {
        "ROLLUP", "DRILLDOWN", "SLICE", "DICE", "CELL", "EXPLAIN", "X^3"
    }


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_parse_is_canonical(name, table):
    fixture = load(name)
    statement = parse_statement(fixture["text"])
    assert pretty(statement) == fixture["pretty"]
    assert parse_statement(pretty(statement)) == statement


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_compile_matches_the_pinned_wire_form(name, table):
    fixture = load(name)
    backend = make_backend("serve", table)
    try:
        catalog = make_catalog(backend)
        compiled = compile_statement(
            parse_statement(fixture["text"]), catalog
        )
        if "definition" in fixture:
            assert isinstance(compiled, CompiledDefinition)
            spec = compiled.spec
            assert spec.to_flwor() == fixture["definition"]["flwor"]
            assert spec.fact_tag == fixture["definition"]["fact_tag"]
            assert spec.document == fixture["definition"]["document"]
            assert (
                spec.lattice().size()
                == fixture["definition"]["lattice_points"]
            )
            # The new front end and the legacy one agree exactly.
            assert spec == parse_x3_query(fixture["text"])
        else:
            assert isinstance(compiled, CompiledQuery)
            assert compiled.cube == fixture["cube"]
            assert compiled.explain == fixture["explain"]
            assert compiled.query.to_dict() == fixture["query"]
            # The wire form round-trips to the identical frozen Query.
            assert Query.from_dict(fixture["query"]) == compiled.query
    finally:
        close(backend)


@pytest.mark.parametrize("backend_kind", BACKENDS)
@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_answers_bit_identical_to_programmatic(
    name, backend_kind, table
):
    """The compiled text query and the equivalent programmatic Query
    produce byte-for-byte the same result envelope, on each backend
    (fresh instances on both sides, so cache state cannot differ)."""
    fixture = load(name)
    if "definition" in fixture:
        pytest.skip("definitions describe a cube; nothing to execute")

    lang_backend = make_backend(backend_kind, table)
    prog_backend = make_backend(backend_kind, table)
    try:
        catalog = make_catalog(lang_backend)
        compiled = compile_statement(
            parse_statement(fixture["text"]), catalog
        )
        programmatic = Query.from_dict(fixture["query"])
        if fixture["explain"]:
            lang_answer = lang_backend.explain_query(
                compiled.query
            ).to_dict()
            prog_answer = prog_backend.explain_query(
                programmatic
            ).to_dict()
        else:
            lang_answer = lang_backend.query(compiled.query).to_dict()
            prog_answer = prog_backend.query(programmatic).to_dict()
        assert json.dumps(lang_answer, sort_keys=True) == json.dumps(
            prog_answer, sort_keys=True
        )
    finally:
        close(lang_backend)
        close(prog_backend)


def test_x3_fixture_is_the_figure1_query():
    fixture = load("x3")
    statement = parse_statement(fixture["text"])
    assert isinstance(statement, X3Statement)
    assert fixture["text"] == QUERY1_TEXT
