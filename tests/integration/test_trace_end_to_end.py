"""End-to-end tracing: one traced pipeline, one coherent Chrome trace.

The acceptance bar for the observability layer: a traced 2-worker engine
run exports a single well-formed ``trace_event`` JSON containing spans
from at least four layers — XML parsing, timber storage I/O, the cube
algorithm, and the engine's partition/merge stages.
"""

import json

import pytest

from repro import obs
from repro.core.cube import ExecutionOptions, compute_cube
from repro.datagen.publications import figure1_document
from repro.testing import small_workload
from repro.timber.database import TimberDB
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def traced_pipeline():
    """Parse → timber load → 2-worker cube run, all under one tracer."""
    xml_text = serialize(figure1_document())
    table = small_workload().fact_table()
    with obs.trace() as tracer:
        doc = parse(xml_text, name="e2e")
        db = TimberDB()
        db.load(doc, name="e2e")
        db.postings("publication")  # forces the index build
        db.publish_metrics()
        result = compute_cube(
            table,
            ExecutionOptions(algorithm="TD", workers=2, engine="thread"),
        )
    return tracer.trace(), result


class TestEndToEndTrace:
    def test_four_layers_present(self, traced_pipeline):
        trace, _ = traced_pipeline
        categories = set(trace.categories())
        assert {"parse", "timber", "algorithm", "engine"} <= categories

    def test_single_coherent_tree(self, traced_pipeline):
        trace, _ = traced_pipeline
        ids = {record.span_id for record in trace.records}
        assert len(ids) == len(trace.records)  # ids unique
        for record in trace.records:
            assert record.parent_id is None or record.parent_id in ids

    def test_worker_partitions_parented_under_engine_run(
        self, traced_pipeline
    ):
        trace, _ = traced_pipeline
        (run,) = trace.spans_named("engine.run")
        partitions = trace.spans_named("engine.partition")
        assert len(partitions) >= 2  # 2-worker run
        assert all(p.parent_id == run.span_id for p in partitions)
        # worker threads report into the same trace; a pool thread may
        # pick up several partitions, so require only that every span
        # carries a thread id, not that two distinct threads appear
        assert all(p.thread for p in partitions)

    def test_chrome_export_well_formed(self, traced_pipeline):
        trace, _ = traced_pipeline
        document = json.loads(trace.to_chrome_json())
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(trace.records)
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0
        exported_cats = {e["cat"] for e in complete}
        assert {"parse", "timber", "algorithm", "engine"} <= exported_cats

    def test_result_trace_attached(self, traced_pipeline):
        _, result = traced_pipeline
        assert result.trace is not None
        assert "engine.run" in result.trace.span_names()

    def test_prometheus_and_collapsed_exports_nonempty(
        self, traced_pipeline
    ):
        trace, _ = traced_pipeline
        prom = trace.to_prometheus()
        assert "# TYPE x3_cost_cpu_ops_total counter" in prom
        assert trace.to_collapsed().strip()


class TestDisabledOverhead:
    def test_untraced_run_allocates_no_spans(self):
        table = small_workload().fact_table()
        before = len(obs.NULL_TRACER)
        result = compute_cube(table, ExecutionOptions(algorithm="BUC"))
        assert result.trace is None
        assert len(obs.NULL_TRACER) == before
        assert obs.current_tracer().enabled is False
