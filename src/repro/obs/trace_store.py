"""Bounded distributed-trace recording with head + tail sampling.

Where :mod:`repro.obs.propagate` defines trace *identity*, this module
records what happened under one: a thread-safe :class:`TraceStore`
holding finished traces, a per-thread binding stack so any layer can
open child spans without threading a handle through every signature,
and explicit :func:`capture` / :func:`resume` hand-off for work that
crosses threads (the cluster scatter pool) or processes (engine
workers, whose picklable :class:`~repro.obs.tracer.SpanRecord` batches
are absorbed with remote parent ids).

Sampling is two-stage:

- **Head**: :class:`~repro.obs.propagate.HeadSampler` decides at the
  root, as a pure function of the trace id, whether a request records
  spans at all.  Unsampled requests still mint and propagate a context
  (the ``traceparent`` response header stays truthful) but bind
  nothing, so their per-span cost is zero.
- **Tail**: when a sampled trace finishes it is classified — traces
  with an error status, a ``deadline`` status, or a root modeled
  duration at or above the rolling p99 are *retained* in a separate
  bounded pool that ordinary ring eviction never touches.  The normal
  ring keeps the most recent traffic; the retained pool keeps the
  traffic worth debugging.

Everything exported is deterministic under the seeded replay: span ids
are derived (:func:`~repro.obs.propagate.derive_span_id`) rather than
allocated, JSONL output is canonically sorted, and every wall-clock
field is named with the ``wall_seconds`` suffix the determinism differ
(:mod:`repro.bench.determinism`) strips.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.propagate import (
    HeadSampler,
    IdSource,
    TraceContext,
    derive_span_id,
    parse_traceparent,
)
from repro.obs.tracer import SpanRecord

#: Span / trace statuses, worst last.
STATUSES = ("ok", "deadline", "error")

#: Tail-retention reasons (`""` means the trace is in the normal ring).
RETAIN_REASONS = ("error", "deadline", "slow")


@dataclass(frozen=True)
class TraceSpan:
    """One finished span of a distributed trace — plain, picklable data.

    Ids are fixed-width lower-case hex strings (32 for the trace, 16
    for spans; ``parent_id`` is ``""`` on the root).  ``sim_seconds``
    is the deterministic modeled duration; the two ``*wall_seconds``
    fields are host timings, named so the determinism differ strips
    them.
    """

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    category: str
    status: str = "ok"
    sim_seconds: float = 0.0
    start_wall_seconds: float = 0.0
    wall_seconds: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "status": self.status,
            "sim_seconds": self.sim_seconds,
            "start_wall_seconds": self.start_wall_seconds,
            "wall_seconds": self.wall_seconds,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class TraceRecord:
    """One finished trace: its spans plus the retention verdict."""

    seq: int  #: finish order, assigned by the store
    trace_id: str
    name: str  #: root span name
    status: str  #: worst status across the trace's spans
    sim_seconds: float  #: root modeled duration
    wall_seconds: float  #: root wall duration (stripped by the differ)
    retained: str = ""  #: one of :data:`RETAIN_REASONS`, or ""
    spans: Tuple[TraceSpan, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "trace_id": self.trace_id,
            "name": self.name,
            "status": self.status,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "retained": self.retained,
            "spans": [span.to_dict() for span in self.spans],
        }


class _NullTraceSpan:
    """The do-nothing handle returned when no trace is bound.  One
    instance; mirrors :data:`repro.obs.tracer.NULL_SPAN`."""

    __slots__ = ()

    enabled = False
    trace_id_hex = ""
    span_id_hex = ""
    context: Optional[TraceContext] = None
    traceparent = ""

    def annotate(self, **attrs: Any) -> "_NullTraceSpan":
        return self

    def set_status(self, status: str) -> "_NullTraceSpan":
        return self

    def set_sim(self, seconds: float) -> "_NullTraceSpan":
        return self

    def absorb(self, records: Sequence[SpanRecord]) -> int:
        return 0

    def child(
        self,
        name: str,
        category: str = "",
        key: Optional[str] = None,
        **attrs: Any,
    ) -> "_NullTraceSpan":
        return self

    def __enter__(self) -> "_NullTraceSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


NULL_TRACE_SPAN = _NullTraceSpan()


class TraceSpanHandle:
    """An open span bound to a :class:`TraceStore`; a context manager.

    Child ids are *derived* from this span's id plus a stable key
    (caller-supplied for fan-out work, a per-name sibling counter
    otherwise), so concurrently created children get the same ids on
    every replay regardless of thread interleaving.
    """

    __slots__ = (
        "_store",
        "context",
        "parent_hex",
        "name",
        "category",
        "attrs",
        "status",
        "sim_seconds",
        "is_root",
        "traceparent",
        "_start",
        "_siblings",
        "_lock",
    )

    enabled = True

    def __init__(
        self,
        store: "TraceStore",
        context: TraceContext,
        parent_hex: str,
        name: str,
        category: str,
        attrs: Dict[str, Any],
        is_root: bool = False,
    ) -> None:
        self._store = store
        self.context = context
        self.parent_hex = parent_hex
        self.name = name
        self.category = category
        self.attrs = attrs
        self.status = "ok"
        self.sim_seconds = 0.0
        self.is_root = is_root
        self.traceparent = context.to_traceparent()
        self._start = 0.0
        self._siblings: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def trace_id_hex(self) -> str:
        return self.context.trace_id_hex

    @property
    def span_id_hex(self) -> str:
        return self.context.span_id_hex

    def annotate(self, **attrs: Any) -> "TraceSpanHandle":
        self.attrs.update(attrs)
        return self

    def set_status(self, status: str) -> "TraceSpanHandle":
        self.status = status
        return self

    def set_sim(self, seconds: float) -> "TraceSpanHandle":
        self.sim_seconds = seconds
        return self

    # ------------------------------------------------------------------
    def child(
        self,
        name: str,
        category: str = "",
        key: Optional[str] = None,
        **attrs: Any,
    ) -> "TraceSpanHandle":
        """Open a child span.  Pass ``key`` from fan-out call sites
        (e.g. ``key=f"s{shard}"``) so sibling ids never depend on which
        worker thread got there first."""
        if key is None:
            with self._lock:
                n = self._siblings.get(name, 0)
                self._siblings[name] = n + 1
            key = f"{name}#{n}"
        else:
            key = f"{name}/{key}"
        span_id = derive_span_id(self.context.span_id, key)
        return TraceSpanHandle(
            self._store,
            self.context.child(span_id),
            self.span_id_hex,
            name,
            category,
            dict(attrs),
        )

    def absorb(self, records: Sequence[SpanRecord]) -> int:
        """Absorb engine-worker :class:`SpanRecord` batches under this
        span, remapping local int ids to derived trace span ids (the
        remote-parent-id extension of the engine's picklable span
        shipping).  Thread labels are dropped — they carry host pids.
        """
        if not records:
            return 0
        id_map: Dict[int, str] = {}
        for record in records:
            derived = derive_span_id(
                self.context.span_id, f"engine#{record.span_id}"
            )
            id_map[record.span_id] = f"{derived:016x}"
        absorbed = 0
        for record in records:
            parent_hex = (
                id_map.get(record.parent_id)
                if record.parent_id is not None
                else None
            )
            if parent_hex is None:
                parent_hex = self.span_id_hex
            status = "error" if "error" in record.attrs else "ok"
            self._store._record_span(
                TraceSpan(
                    trace_id=self.trace_id_hex,
                    span_id=id_map[record.span_id],
                    parent_id=parent_hex,
                    name=record.name,
                    category=record.category or "engine",
                    status=status,
                    sim_seconds=record.sim_duration,
                    start_wall_seconds=record.start,
                    wall_seconds=record.duration,
                    attrs=dict(record.attrs),
                )
            )
            absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceSpanHandle":
        _stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        wall = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        span = TraceSpan(
            trace_id=self.trace_id_hex,
            span_id=self.span_id_hex,
            parent_id=self.parent_hex,
            name=self.name,
            category=self.category,
            status=self.status,
            sim_seconds=self.sim_seconds,
            start_wall_seconds=self._start,
            wall_seconds=wall,
            attrs=self.attrs,
        )
        self._store._record_span(span)
        if self.is_root:
            self._store._finalize(self, span)


class _UnsampledRoot:
    """The handle a head-unsampled request gets: carries the context
    (so the ``traceparent`` response header stays truthful) and *binds*
    (so downstream layers see the request as already traced and do not
    mint a competing root), but records nothing — every child is the
    shared null span."""

    __slots__ = ("context", "traceparent")

    enabled = False
    trace_id_hex = ""
    span_id_hex = ""

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self.traceparent = context.to_traceparent()

    def annotate(self, **attrs: Any) -> "_UnsampledRoot":
        return self

    def set_status(self, status: str) -> "_UnsampledRoot":
        return self

    def set_sim(self, seconds: float) -> "_UnsampledRoot":
        return self

    def absorb(self, records: Sequence[SpanRecord]) -> int:
        return 0

    def child(
        self,
        name: str,
        category: str = "",
        key: Optional[str] = None,
        **attrs: Any,
    ) -> _NullTraceSpan:
        return NULL_TRACE_SPAN

    def __enter__(self) -> "_UnsampledRoot":
        _stack().append(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        return None


AnySpan = Union[TraceSpanHandle, _UnsampledRoot, _NullTraceSpan]

#: What the per-thread binding stack holds (a sampled handle or the
#: unsampled sentinel; never the null span).
Binding = Union[TraceSpanHandle, _UnsampledRoot]


# ----------------------------------------------------------------------
# per-thread binding
# ----------------------------------------------------------------------
_tls = threading.local()


def _stack() -> List[Binding]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_span() -> AnySpan:
    """The innermost bound span on this thread (NULL when untraced)."""
    stack = _stack()
    return stack[-1] if stack else NULL_TRACE_SPAN


def bound() -> bool:
    """Is any trace binding (sampled or not) active on this thread?

    Entry points use this to decide whether to open their own root: a
    request that arrived head-unsampled is *bound* but not enabled, and
    must not be re-minted by an inner layer.
    """
    return bool(_stack())


def trace_span(
    name: str,
    category: str = "",
    key: Optional[str] = None,
    **attrs: Any,
) -> AnySpan:
    """Open a child of the current bound span (shared no-op when none).

    The untraced cost is one thread-local read and a truthiness check —
    the same zero-cost bar :data:`~repro.obs.tracer.NULL_SPAN` sets.
    """
    stack = _stack()
    if not stack:
        return NULL_TRACE_SPAN
    return stack[-1].child(name, category=category, key=key, **attrs)


def capture() -> Optional[Binding]:
    """Snapshot the current binding for hand-off to another thread."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def resume(handle: Optional[Binding]) -> Iterator[None]:
    """Re-bind a captured span on this thread for the ``with`` body.

    The scatter pool captures before submit and resumes inside the
    worker, so per-shard child spans parent under the coordinator's
    request span no matter which pool thread runs them.  An unsampled
    binding is re-bound too — it keeps inner entry points from minting
    a competing root on the worker thread.
    """
    if handle is None:
        yield
        return
    stack = _stack()
    stack.append(handle)
    try:
        yield
    finally:
        if stack and stack[-1] is handle:
            stack.pop()


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TraceStore:
    """Bounded, thread-safe storage for finished traces.

    ``capacity`` bounds the normal ring; ``retained_capacity`` bounds
    the tail-retained pool (error / deadline / p99-slow traces), which
    ring eviction never touches.  ``slow_window`` is the number of
    recent root modeled durations the rolling p99 is computed over.
    """

    def __init__(
        self,
        capacity: int = 512,
        sample_rate: float = 1.0,
        seed: int = 0,
        retained_capacity: int = 128,
        slow_window: int = 256,
        max_spans_per_trace: int = 512,
    ) -> None:
        if capacity <= 0:
            raise ValueError(
                f"trace store capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.retained_capacity = max(0, retained_capacity)
        self.max_spans_per_trace = max(1, max_spans_per_trace)
        self.sampler = HeadSampler(sample_rate)
        self._ids = IdSource(seed)
        self._lock = threading.Lock()
        self._open: Dict[str, List[TraceSpan]] = {}
        self._ring: "OrderedDict[str, TraceRecord]" = OrderedDict()
        self._retained: "OrderedDict[str, TraceRecord]" = OrderedDict()
        self._durations: Deque[float] = deque(maxlen=max(20, slow_window))
        self._next_seq = 0
        self.started = 0
        self.sampled = 0
        self.finished = 0
        self.retained = 0
        self.dropped_traces = 0
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    # opening traces
    # ------------------------------------------------------------------
    def mint(self, traceparent: Optional[str] = None) -> TraceContext:
        """Parse an upstream header or mint a fresh root context.

        An upstream sampled flag is respected (the caller already made
        the head call); minted contexts ask the head sampler.
        """
        upstream = parse_traceparent(traceparent)
        if upstream is not None:
            return upstream
        trace_id = self._ids.trace_id()
        return TraceContext(
            trace_id, self._ids.span_id(), self.sampler.decide(trace_id)
        )

    def root(
        self,
        name: str,
        category: str = "request",
        traceparent: Optional[str] = None,
        **attrs: Any,
    ) -> AnySpan:
        """Open (and bind, when sampled) the root span of a request.

        Use as a context manager.  The yielded handle always carries
        ``.context`` and ``.traceparent``; when the head sampler says
        no, it is an unsampled stub that records nothing.
        """
        joined = parse_traceparent(traceparent) is not None
        context = self.mint(traceparent)
        with self._lock:
            self.started += 1
        if not context.sampled:
            return _UnsampledRoot(context)
        root_context = TraceContext(
            context.trace_id,
            derive_span_id(context.span_id, f"root/{name}"),
            True,
        )
        handle = TraceSpanHandle(
            self,
            root_context,
            parent_hex=context.span_id_hex if joined else "",
            name=name,
            category=category,
            attrs=dict(attrs),
            is_root=True,
        )
        with self._lock:
            self.sampled += 1
            self._open.setdefault(handle.trace_id_hex, [])
        return handle

    # ------------------------------------------------------------------
    # recording (called by handles)
    # ------------------------------------------------------------------
    def _record_span(self, span: TraceSpan) -> None:
        with self._lock:
            spans = self._open.get(span.trace_id)
            if spans is None:
                return  # trace already finalized or never opened
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            spans.append(span)

    def _slow_threshold(self) -> float:
        """Nearest-rank p99 over the rolling duration window (0 when
        the window is too small to be meaningful)."""
        if len(self._durations) < 20:
            return float("inf")
        ordered = sorted(self._durations)
        rank = min(
            len(ordered) - 1, max(0, int(round(0.99 * (len(ordered) - 1))))
        )
        return ordered[rank]

    def _finalize(self, root: TraceSpanHandle, root_span: TraceSpan) -> None:
        trace_id = root_span.trace_id
        with self._lock:
            spans = self._open.pop(trace_id, [])
            status = root_span.status
            if status == "ok":
                for span in spans:
                    if span.status == "error":
                        status = "error"
                        break
                    if span.status == "deadline":
                        status = "deadline"
            reason = ""
            if status == "error":
                reason = "error"
            elif status == "deadline":
                reason = "deadline"
            elif (
                root_span.sim_seconds > 0.0
                and root_span.sim_seconds >= self._slow_threshold()
            ):
                reason = "slow"
            self._durations.append(root_span.sim_seconds)
            ordered = tuple(
                sorted(spans, key=lambda s: (s.parent_id != "", s.span_id))
            )
            record = TraceRecord(
                seq=self._next_seq,
                trace_id=trace_id,
                name=root_span.name,
                status=status,
                sim_seconds=root_span.sim_seconds,
                wall_seconds=root_span.wall_seconds,
                retained=reason,
                spans=ordered,
            )
            self._next_seq += 1
            self.finished += 1
            if reason and self.retained_capacity > 0:
                self.retained += 1
                self._retained[trace_id] = record
                while len(self._retained) > self.retained_capacity:
                    self._retained.popitem(last=False)
                    self.dropped_traces += 1
            else:
                self._ring[trace_id] = record
                while len(self._ring) > self.capacity:
                    self._ring.popitem(last=False)
                    self.dropped_traces += 1

    # ------------------------------------------------------------------
    # reads / export
    # ------------------------------------------------------------------
    def traces(self) -> Tuple[TraceRecord, ...]:
        """Every stored trace (ring + retained), in finish order."""
        with self._lock:
            merged = list(self._ring.values()) + list(
                self._retained.values()
            )
        return tuple(sorted(merged, key=lambda record: record.seq))

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            record = self._ring.get(trace_id)
            if record is None:
                record = self._retained.get(trace_id)
            return record

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "started": self.started,
                "sampled": self.sampled,
                "finished": self.finished,
                "retained": self.retained,
                "stored": len(self._ring) + len(self._retained),
                "dropped_traces": self.dropped_traces,
                "dropped_spans": self.dropped_spans,
            }

    def to_jsonl(self) -> str:
        """Stored traces as JSON Lines, canonically key-sorted so two
        deterministic runs produce byte-identical dumps once the differ
        strips the ``*wall_seconds`` fields."""
        lines = [
            json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
            for record in self.traces()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns traces written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text.count("\n")
