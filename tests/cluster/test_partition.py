"""Hash partitioning: deterministic, disjoint, covering, stable."""

import pytest

from repro.cluster.partition import partition_rows, partition_table, shard_of
from repro.errors import ClusterError
from repro.testing import small_workload


def table():
    return small_workload().fact_table()


class TestShardOf:
    def test_deterministic(self):
        assert all(
            shard_of((doc, node), 4) == shard_of((doc, node), 4)
            for doc in range(3)
            for node in range(50)
        )

    def test_stable_across_processes(self):
        # FNV-1a over the fact-id bytes, not Python's seeded hash():
        # these pins fail if the shard function ever changes, which
        # would silently re-partition persisted clusters.
        assert shard_of((0, 0), 4) == 1
        assert shard_of((0, 1), 4) == 2
        assert shard_of((7, 123), 8) == 1

    def test_in_range(self):
        for node in range(200):
            assert 0 <= shard_of((1, node), 3) < 3

    def test_single_shard(self):
        assert all(shard_of((0, n), 1) == 0 for n in range(20))

    def test_negative_ids_supported(self):
        assert 0 <= shard_of((-1, -5), 4) < 4

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ClusterError):
            shard_of((0, 0), 0)


class TestPartitionRows:
    def test_disjoint_and_covering(self):
        rows = table().rows
        slices = partition_rows(rows, 4)
        seen = [row.fact_id for piece in slices for row in piece]
        assert sorted(seen) == sorted(row.fact_id for row in rows)
        assert len(set(seen)) == len(seen)

    def test_preserves_row_order_within_slice(self):
        rows = table().rows
        order = {row.fact_id: index for index, row in enumerate(rows)}
        for piece in partition_rows(rows, 4):
            positions = [order[row.fact_id] for row in piece]
            assert positions == sorted(positions)

    def test_spread_is_not_degenerate(self):
        # A uniform-ish hash must not dump everything on one shard.
        slices = partition_rows(table().rows, 4)
        occupied = sum(1 for piece in slices if piece)
        assert occupied >= 3

    def test_same_input_same_slices(self):
        rows = table().rows
        first = partition_rows(rows, 8)
        second = partition_rows(rows, 8)
        assert [
            [row.fact_id for row in piece] for piece in first
        ] == [[row.fact_id for row in piece] for piece in second]


class TestPartitionTable:
    def test_shares_lattice_and_aggregate(self):
        base = table()
        shards = partition_table(base, 3)
        assert len(shards) == 3
        for shard in shards:
            assert shard.lattice is base.lattice
            assert shard.aggregate is base.aggregate
        assert sum(len(shard.rows) for shard in shards) == len(base.rows)
