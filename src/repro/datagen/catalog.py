"""Electronic-catalog generator: the intro's third motivating domain.

"This sort of heterogeneity is common in XML, and is to be expected not
just in the context of books, but also in other contexts, such as
warehouses of information based on electronic catalogs, or records of
insurance claims."

Catalog feeds are the canonical mess: every vendor ships a different
shape.  The generator produces products where

- the *category* may be a direct child, or nested under a ``taxonomy``
  chain (PC-AD territory), or repeated (multi-category products);
- the *brand* may hide under ``details/manufacturer`` for one vendor
  and sit top-level for another (SP territory);
- the *price* may be missing (request-for-quote items) and carries a
  numeric value usable as a SUM/AVG measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.nodes import Document, Element

CATEGORIES = [
    "audio", "video", "computing", "gaming", "home", "wearables",
]
BRANDS = ["acme", "globex", "initech", "umbrella", "tyrell", "wayne"]


@dataclass(frozen=True)
class CatalogConfig:
    """Knobs of the catalog workload."""

    n_products: int = 500
    seed: int = 33
    p_nested_category: float = 0.2
    p_second_category: float = 0.15
    p_vendor_b_shape: float = 0.3     # brand under details/manufacturer
    p_missing_price: float = 0.1


def generate_catalog(config: CatalogConfig) -> Document:
    rng = random.Random(config.seed)
    root = Element("catalog")
    for number in range(config.n_products):
        product = root.make_child(
            "product", attrs={"sku": f"sku{number:05d}"}
        )
        # Category, possibly nested and/or repeated.
        holder = product
        if rng.random() < config.p_nested_category:
            holder = product.make_child("taxonomy").make_child("node")
        holder.make_child("category", text=rng.choice(CATEGORIES))
        if rng.random() < config.p_second_category:
            product.make_child("category", text=rng.choice(CATEGORIES))
        # Brand: vendor A ships it top-level, vendor B nests it.
        brand = rng.choice(BRANDS)
        if rng.random() < config.p_vendor_b_shape:
            product.make_child("details").make_child(
                "manufacturer"
            ).make_child("brand", text=brand)
        else:
            product.make_child("brand", text=brand)
        # Price: numeric measure, sometimes missing.
        if rng.random() >= config.p_missing_price:
            product.make_child(
                "price", text=str(rng.randrange(10, 2000))
            )
    return Document(root, name="catalog")


def catalog_query(aggregate: str = "COUNT") -> X3Query:
    """Cube products by category and brand.

    The category axis permits PC-AD (nested taxonomies), the brand axis
    PC-AD too (vendor B's nesting); prices feed SUM/AVG when requested.
    """
    spec = (
        AggregateSpec("COUNT")
        if aggregate.upper() == "COUNT"
        else AggregateSpec(aggregate, "price")
    )
    pcad = frozenset({Relaxation.LND, Relaxation.PC_AD})
    return X3Query(
        fact_tag="product",
        axes=(
            AxisSpec.from_path("$c", "category", pcad),
            AxisSpec.from_path("$b", "brand", pcad),
        ),
        aggregate=spec,
        fact_id_path="@sku",
        document="catalog.xml",
    )
