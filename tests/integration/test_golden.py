"""Golden regression tests: exact pinned cuboids for seeded workloads.

The equivalence matrix guards *consistency* between algorithms; these
tests guard *semantics over time* — if extraction, masks, grouping or a
generator silently drift, the pinned values break loudly.  Generators
are fully deterministic (seeded ``random.Random``), so these values are
stable across hosts and Python versions in scope.
"""

from repro.core.cube import compute_cube
from repro.datagen.workload import WorkloadConfig, build_workload

CONFIG = WorkloadConfig(
    kind="treebank",
    n_facts=25,
    n_axes=3,
    density="dense",
    coverage=False,
    disjoint=False,
    seed=77,
)


def golden_cube():
    table = build_workload(CONFIG).fact_table()
    return table, compute_cube(table, "NAIVE")


class TestGoldenTreebank:
    def test_totals(self):
        table, cube = golden_cube()
        assert len(table) == 25
        assert cube.total_cells() == 265

    def test_rigid_m1_cuboid(self):
        table, cube = golden_cube()
        point = table.lattice.point_by_description(
            "$m1:rigid, $m2:LND, $m3:LND"
        )
        assert cube.cuboids[point] == {
            ("m1v0",): 4.0,
            ("m1v1",): 4.0,
            ("m1v2",): 3.0,
            ("m1v3",): 4.0,
        }

    def test_pcad_m1_cuboid_recovers_more(self):
        table, cube = golden_cube()
        point = table.lattice.point_by_description(
            "$m1:PC-AD, $m2:LND, $m3:LND"
        )
        assert cube.cuboids[point] == {
            ("m1v0",): 5.0,
            ("m1v1",): 7.0,
            ("m1v2",): 4.0,
            ("m1v3",): 5.0,
        }

    def test_two_axis_cuboid(self):
        table, cube = golden_cube()
        point = table.lattice.point_by_description(
            "$m1:rigid, $m2:rigid, $m3:LND"
        )
        assert cube.cuboids[point] == {
            ("m1v0", "m2v0"): 1.0,
            ("m1v0", "m2v2"): 1.0,
            ("m1v1", "m2v0"): 1.0,
            ("m1v1", "m2v3"): 1.0,
            ("m1v2", "m2v1"): 1.0,
            ("m1v2", "m2v2"): 1.0,
            ("m1v3", "m2v0"): 1.0,
            ("m1v3", "m2v3"): 2.0,
        }

    def test_grand_total(self):
        table, cube = golden_cube()
        assert cube.cuboids[table.lattice.bottom] == {(): 25.0}

    def test_every_algorithm_reproduces_the_golden_cube(self):
        table, reference = golden_cube()
        for name in ("COUNTER", "BUC", "TD"):
            assert compute_cube(table, name).same_contents(reference)
