"""Property-based tests for the X^3QL front end.

Two laws:

- **Round trip**: for every well-formed statement AST,
  ``parse(pretty(ast)) == ast`` — the canonical pretty-print loses
  nothing the grammar can express (positions are excluded from node
  equality by construction).
- **Total parsing**: arbitrary text — including raw byte noise — fed
  to :func:`parse_statement` either parses or raises
  :class:`~repro.errors.QueryParseError`; no other exception ever
  escapes the front end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryParseError
from repro.lang.ast import (
    Assignment,
    AxisBinding,
    AxisRelaxations,
    NAV_VERBS,
    NavStatement,
    PathExpr,
    Predicate,
    X3Statement,
    pretty,
)
from repro.lang.parser import parse_statement

#: Words the grammar treats as (contextual) keywords in positions a
#: generated NAME could land in; excluded from identifier strategies so
#: the round trip does not depend on parser lookahead subtleties.
_KEYWORDS = frozenset(
    word.upper()
    for word in (
        NAV_VERBS
        + ("EXPLAIN", "FOR", "IN", "DOC", "RETURN", "BY", "WHERE",
           "AT", "VERSION", "WITHIN", "MEASURE", "ON", "KEY", "NULL",
           "AND", "X3")
    )
)

names = st.from_regex(
    r"[A-Za-z_][A-Za-z0-9_]{0,7}", fullmatch=True
).filter(lambda word: word.upper() not in _KEYWORDS)

#: String literal values: anything printable without "'" (the pretty
#: printer then always has a quote kind to use) or newlines.
values = st.text(
    alphabet=st.characters(
        codec="ascii", categories=("L", "N", "P", "Zs"),
        exclude_characters="'",
    ),
    min_size=1,
    max_size=12,
)

levels = st.one_of(
    st.sampled_from(["detail", "all", "SP", "PC-AD", "SP+PC-AD"]),
    names,
)

relaxation_names = st.lists(
    st.sampled_from(["LND", "SP", "PC-AD", "SP+PC-AD"]),
    unique=True,
    max_size=4,
).map(tuple)


@st.composite
def nav_statements(draw):
    verb = draw(st.sampled_from(NAV_VERBS))
    axis = None
    value = None
    key = None
    if verb in ("DRILLDOWN", "SLICE"):
        axis = draw(names)
    if verb == "SLICE":
        value = draw(values)
    if verb == "CELL":
        key = tuple(
            draw(
                st.lists(
                    st.one_of(st.none(), values),
                    min_size=1,
                    max_size=3,
                )
            )
        )
    group_by = tuple(
        Assignment(name, draw(levels))
        for name in draw(st.lists(names, unique=True, max_size=3))
    )
    where = ()
    if verb == "DICE" or draw(st.booleans()):
        where = tuple(
            Predicate(
                name,
                tuple(
                    draw(st.lists(values, min_size=1, max_size=3))
                ),
            )
            for name in draw(st.lists(names, unique=True, max_size=2))
        )
    at_version = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=0, max_value=99),
                min_size=1,
                max_size=3,
            ).map(tuple),
        )
    )
    within = draw(
        st.one_of(
            st.none(),
            st.floats(
                min_value=0.001,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
        )
    )
    measure = draw(st.one_of(st.none(), names.map(str.upper)))
    return NavStatement(
        verb=verb,
        cube=draw(names),
        group_by=group_by,
        axis=axis,
        value=value,
        key=key,
        where=where,
        at_version=at_version,
        within_seconds=within,
        measure=measure,
        explain=draw(st.booleans()),
    )


@st.composite
def paths(draw):
    steps = draw(st.lists(names, min_size=1, max_size=3))
    first_descendant = draw(st.booleans())
    parts = []
    for index, step in enumerate(steps):
        if index == 0:
            parts.append(f"//{step}" if first_descendant else step)
        else:
            parts.append(
                f"//{step}" if draw(st.booleans()) else f"/{step}"
            )
    return "".join(parts)


@st.composite
def x3_statements(draw):
    variables = draw(
        st.lists(
            names.map(lambda word: f"${word}"),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    fact_var, axis_vars = variables[0], variables[1:]
    bindings = tuple(
        AxisBinding(var, fact_var, draw(paths())) for var in axis_vars
    )
    by = tuple(
        AxisRelaxations(var, draw(relaxation_names))
        for var in draw(
            st.lists(
                st.sampled_from(axis_vars),
                min_size=1,
                max_size=len(axis_vars),
                unique=True,
            )
        )
    )
    measure = PathExpr(
        fact_var, draw(st.one_of(st.just(""), st.just("@id"), paths()))
    )
    arg = draw(
        st.one_of(
            st.none(),
            st.builds(
                PathExpr,
                st.just(fact_var),
                st.one_of(st.just(""), paths()),
            ),
        )
    )
    return X3Statement(
        document=draw(values),
        fact_tag=draw(names),
        fact_var=fact_var,
        bindings=bindings,
        measure=measure,
        by=by,
        aggregate=draw(names.map(str.upper)),
        aggregate_arg=arg,
    )


@given(nav_statements())
@settings(max_examples=150, deadline=None)
def test_nav_pretty_parse_round_trip(statement):
    assert parse_statement(pretty(statement)) == statement


@given(x3_statements())
@settings(max_examples=150, deadline=None)
def test_x3_pretty_parse_round_trip(statement):
    assert parse_statement(pretty(statement)) == statement


@given(st.text(max_size=120))
@settings(max_examples=300, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse_statement(text)
    except QueryParseError:
        pass  # the only exception the front end may raise


@given(st.binary(max_size=120))
@settings(max_examples=200, deadline=None)
def test_byte_noise_never_crashes(blob):
    text = blob.decode("utf-8", errors="replace")
    try:
        parse_statement(text)
    except QueryParseError:
        pass
