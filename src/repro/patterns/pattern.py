"""Tree pattern model.

A :class:`TreePattern` is a rooted tree of :class:`PatternNode`s.  Each
non-root node is connected to its parent by an edge whose axis is either
parent-child (``/``) or ancestor-descendant (``//``).  A node tests an
element tag (or ``*``), or — as a leaf — an attribute ``@name``.  Nodes may
be *optional* (LND applied: the pattern matches even when the node has no
binding; the binding is then null).  Nodes carry a ``label`` so queries can
refer to them (the ``$n``/``$p``/``$y`` variables of Query 1).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import PatternError


class EdgeAxis(Enum):
    """Axis of the edge from a pattern node to its parent."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value


class PatternNode:
    """One node of a tree pattern.

    Attributes:
        test: element tag, ``*``, or ``@name`` for an attribute leaf.
        axis: edge axis to the parent (ignored on the root).
        optional: whether the node may be unmatched (LND applied).
        label: variable label (e.g. ``$n``) or empty.
        value_test: when set, the node only matches elements whose text
            (or the attribute's value) equals this string — the
            selection predicate of Sec. 2.1's "grouping a marked-up
            element by the value of the marked-up text".
        children: child pattern nodes, in order.
    """

    __slots__ = (
        "test", "axis", "optional", "label", "value_test", "children",
        "parent",
    )

    def __init__(
        self,
        test: str,
        axis: EdgeAxis = EdgeAxis.CHILD,
        optional: bool = False,
        label: str = "",
        value_test: Optional[str] = None,
    ) -> None:
        if not test:
            raise PatternError("pattern node test must be non-empty")
        self.test = test
        self.axis = axis
        self.optional = optional
        self.label = label
        self.value_test = value_test
        self.children: List["PatternNode"] = []
        self.parent: Optional["PatternNode"] = None

    # ------------------------------------------------------------------
    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def attribute_name(self) -> str:
        return self.test[1:]

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add(self, child: "PatternNode") -> "PatternNode":
        if child.parent is not None:
            raise PatternError("pattern node already attached")
        if self.is_attribute:
            raise PatternError("attribute nodes cannot have children")
        child.parent = self
        self.children.append(child)
        return child

    def detach(self) -> "PatternNode":
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["PatternNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def clone(self) -> "PatternNode":
        """Deep copy of this subtree (detached)."""
        copy = PatternNode(
            self.test,
            axis=self.axis,
            optional=self.optional,
            label=self.label,
            value_test=self.value_test,
        )
        for child in self.children:
            copy.add(child.clone())
        return copy

    # ------------------------------------------------------------------
    def signature(self) -> str:
        """Canonical text of this subtree (used for equality/caching)."""
        flags = "?" if self.optional else ""
        label = f"={self.label}" if self.label else ""
        value = f'="{self.value_test}"' if self.value_test is not None else ""
        if not self.children:
            return f"{self.test}{flags}{label}{value}"
        inner = "".join(
            f"[{child.axis}{child.signature()}]" for child in self.children
        )
        return f"{self.test}{flags}{label}{value}{inner}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PatternNode {self.signature()}>"


class TreePattern:
    """A rooted tree pattern with labelled nodes.

    The root's axis is interpreted against the database: ``CHILD`` anchors
    at document roots, ``DESCENDANT`` (the common case, ``//publication``)
    matches anywhere.
    """

    def __init__(
        self, root: PatternNode, root_axis: EdgeAxis = EdgeAxis.DESCENDANT
    ) -> None:
        self.root = root
        self.root_axis = root_axis

    # ------------------------------------------------------------------
    def nodes(self) -> List[PatternNode]:
        return list(self.root.iter_subtree())

    def labelled(self) -> Dict[str, PatternNode]:
        """label -> node for every labelled node (labels must be unique)."""
        out: Dict[str, PatternNode] = {}
        for node in self.root.iter_subtree():
            if node.label:
                if node.label in out:
                    raise PatternError(f"duplicate label {node.label!r}")
                out[node.label] = node
        return out

    def find(self, predicate: Callable[[PatternNode], bool]) -> List[PatternNode]:
        return [node for node in self.root.iter_subtree() if predicate(node)]

    def by_label(self, label: str) -> PatternNode:
        nodes = self.labelled()
        if label not in nodes:
            raise PatternError(f"no pattern node labelled {label!r}")
        return nodes[label]

    def clone(self) -> "TreePattern":
        return TreePattern(self.root.clone(), root_axis=self.root_axis)

    def signature(self) -> str:
        return f"{self.root_axis}{self.root.signature()}"

    def size(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def depth(self) -> int:
        def walk(node: PatternNode) -> int:
            if not node.children:
                return 1
            return 1 + max(walk(child) for child in node.children)

        return walk(self.root)

    def validate(self) -> None:
        """Sanity checks: attribute nodes are leaves; labels unique."""
        self.labelled()
        for node in self.root.iter_subtree():
            if node.is_attribute and node.children:
                raise PatternError(
                    f"attribute node {node.test!r} must be a leaf"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TreePattern {self.signature()}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreePattern):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())
