"""Per-tag postings index.

For structural joins we need, per element tag, the list of occurrences in
global document order — each posting carrying the region encoding.  The
index itself is paged (postings live on index pages read through the
buffer pool) so index scans are charged like the paper's element-index
scans in TIMBER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeRecord, NodeStore
from repro.timber.pages import Disk


@dataclass(frozen=True)
class Posting:
    """One element occurrence in the index.

    Sort key is (doc_id, start): global document order.
    """

    doc_id: int
    node_id: int
    start: int
    end: int
    level: int
    parent_id: int

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (self.doc_id, self.start)

    def contains(self, other: "Posting") -> bool:
        """Ancestor test via region encoding (same document required)."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.start
            and other.end <= self.end
        )

    def is_parent_of(self, other: "Posting") -> bool:
        return self.contains(other) and other.level == self.level + 1


class TagIndex:
    """tag -> postings sorted by (doc_id, start), stored on index pages."""

    def __init__(self, disk: Disk, pool: BufferPool) -> None:
        self._disk = disk
        self._pool = pool
        # tag -> list of (page_id, slot) addresses in sorted order.
        self._addresses: Dict[str, List[Tuple[int, int]]] = {}
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def build(self, store: NodeStore) -> None:
        """(Re-)build the index from the node store."""
        buckets: Dict[str, List[Posting]] = {}
        for record in store.scan_all():
            posting = _posting_from(record)
            buckets.setdefault(record.tag, []).append(posting)
        self._addresses.clear()
        self._counts.clear()
        for tag in sorted(buckets):
            postings = sorted(buckets[tag], key=lambda p: p.sort_key)
            addresses: List[Tuple[int, int]] = []
            page = None
            for posting in postings:
                if page is None or page.full:
                    page = self._disk.allocate()
                    self._pool.admit_new(page)
                    self._pool.cost.charge_write()
                slot = page.append(posting)
                addresses.append((page.page_id, slot))
            self._addresses[tag] = addresses
            self._counts[tag] = len(addresses)
        self._pool.flush()

    # ------------------------------------------------------------------
    def tags(self) -> List[str]:
        return list(self._addresses)

    def cardinality(self, tag: str) -> int:
        return self._counts.get(tag, 0)

    def scan(self, tag: str) -> Iterator[Posting]:
        """Stream the tag's postings in global document order."""
        for page_id, slot in self._addresses.get(tag, ()):
            page = self._pool.fetch(page_id)
            self._pool.cost.charge_cpu()
            yield page.get(slot)

    def scan_list(self, tag: str) -> List[Posting]:
        return list(self.scan(tag))

    def scan_many(self, tags: List[str]) -> Iterator[Posting]:
        """Merged stream over several tags, in global document order."""
        streams = [self.scan_list(tag) for tag in tags]
        merged = sorted(
            (posting for stream in streams for posting in stream),
            key=lambda p: p.sort_key,
        )
        self._pool.cost.charge_cpu(len(merged))
        return iter(merged)


def _posting_from(record: NodeRecord) -> Posting:
    return Posting(
        doc_id=record.doc_id,
        node_id=record.node_id,
        start=record.start,
        end=record.end,
        level=record.level,
        parent_id=record.parent_id,
    )
