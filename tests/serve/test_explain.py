"""Tests for CubeServer.explain(): the ladder decision tree.

The load-bearing contract: ``explain()`` is side-effect-free, and the
tier it predicts is the tier ``cuboid()`` actually records in the
request log when no write intervenes — verified here over a 100-query
deterministic replay, which is also the acceptance criterion the CLI's
``--verify`` flag re-checks end to end.
"""

import pytest

from repro.errors import CubeError, InvalidQuery
from repro.serve import CubeServer, TIERS
from repro.serve.cli import sample_points
from repro.testing import small_workload


def fresh(**overrides):
    workload = small_workload(**overrides)
    table = workload.fact_table()
    return table, workload.oracle(table)


class TestExplainShape:
    def test_lists_all_rungs_in_ladder_order(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        explanation = server.explain(table.lattice.topo_finer_first()[0])
        assert tuple(d.rung for d in explanation.rungs) == TIERS
        assert sum(1 for d in explanation.rungs if d.taken) == 1

    def test_cold_server_recomputes(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        explanation = server.explain(table.lattice.topo_finer_first()[0])
        assert explanation.tier == "recompute"
        by_rung = {d.rung: d for d in explanation.rungs}
        assert by_rung["cache"].reason == "not resident"
        assert "snapshot" in by_rung["recompute"].reason

    def test_cached_point_stops_the_ladder(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.topo_finer_first()[0]
        server.cuboid(point)
        explanation = server.explain(point)
        assert explanation.tier == "cache"
        assert "resident in cache" in explanation.rungs[0].reason
        assert all(
            d.reason == "not reached (resolved at cache)"
            for d in explanation.rungs[1:]
        )

    def test_rollup_taken_reason_carries_proof_verdicts(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        points = table.lattice.topo_finer_first()
        server.cuboid(points[0])  # finest cuboid derives the rest
        explanation = server.explain(points[-1])
        rollup = next(
            d for d in explanation.rungs if d.rung == "rollup"
        )
        assert rollup.taken
        assert "disjoint=True covered=True" in rollup.reason

    def test_rollup_rejection_carries_proof_verdicts(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        points = table.lattice.topo_finer_first()
        # Only the coarsest cuboid is resident: it cannot derive any
        # finer point, so the rollup rung is examined and rejected.
        server.cuboid(points[-1])
        explanation = server.explain(points[0])
        rollup = next(
            d for d in explanation.rungs if d.rung == "rollup"
        )
        assert not rollup.taken
        assert "disjoint=" in rollup.reason
        assert "covered=" in rollup.reason

    def test_render_marks(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.topo_finer_first()[0]
        server.cuboid(point)
        text = server.explain(point).render()
        assert text.splitlines()[0].endswith("-> cache")
        assert "1. cache       *" in text
        assert ". not reached" in text
        assert "DESIGN.md Sec. 5c" in text

    def test_unknown_point_raises(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        # Both shapes of bad spec raise the structured taxonomy error
        # (InvalidQuery is a CubeError, so old callers keep working).
        with pytest.raises(InvalidQuery):
            server.explain("$nope:warp")
        with pytest.raises(CubeError):
            server.explain(tuple(99 for _ in table.lattice.axis_states))


class TestExplainIsPure:
    def test_no_events_no_stats_no_cache_effects(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = table.lattice.topo_finer_first()[0]
        server.cuboid(point)
        before_stats = server.stats()
        before_events = server.events.total
        before_entries = {
            entry.point: (entry.hits, entry.priority)
            for entry in server.cache.entries()
        }
        for target in list(table.lattice.points()):
            server.explain(target)
        assert server.events.total == before_events
        after_stats = server.stats()
        assert after_stats.requests == before_stats.requests
        assert after_stats.cache == before_stats.cache
        assert {
            entry.point: (entry.hits, entry.priority)
            for entry in server.cache.entries()
        } == before_entries


class TestExplainAgreesWithExecution:
    @pytest.mark.parametrize("view_cells", [0, 60])
    def test_hundred_replayed_queries(self, view_cells):
        table, oracle = fresh(n_facts=120, seed=21)
        server = CubeServer(
            table, oracle, cache_cells=256, view_cells=view_cells
        )
        replay = sample_points(table.lattice, 100, seed=13)
        for point in replay:
            explanation = server.explain(point)
            server.cuboid(point)
            recorded = server.events.requests()[-1]
            assert recorded.tier == explanation.tier, (
                f"explain predicted {explanation.tier} but execution "
                f"recorded {recorded.tier} for "
                f"{table.lattice.describe(point)}"
            )
            # The recorded decision trail matches the explanation's
            # rejected rungs too, not just the final verdict.
            assert tuple(d.rung for d in recorded.rungs) == TIERS
            assert [d.taken for d in recorded.rungs] == [
                d.taken for d in explanation.rungs
            ]

    def test_every_tier_appears_somewhere(self):
        table, oracle = fresh(n_facts=120, seed=21)
        server = CubeServer(table, oracle, cache_cells=256)
        for point in sample_points(table.lattice, 100, seed=13):
            server.cuboid(point)
        tiers_seen = {
            event.tier for event in server.events.requests()
        }
        assert {"cache", "recompute"} <= tiers_seen

    def test_explanation_goes_stale_across_writes(self):
        table, oracle = fresh(n_facts=60, seed=5)
        server = CubeServer(table, oracle, cache_cells=4096)
        point = table.lattice.topo_finer_first()[0]
        server.cuboid(point)
        before = server.explain(point)
        assert before.tier == "cache"
        version = server.insert([table.rows[0]])
        after = server.explain(point)
        assert after.version == version
        assert before.version != after.version
