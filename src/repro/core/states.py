"""Per-axis relaxation-state posets.

For an axis permitting structural relaxations ``R`` (a subset of
``{SP, PC-AD}``), the states are all subsets of ``R`` ordered by
inclusion, plus a top element ``DROPPED`` reached by LND.  The cube
lattice (Fig. 3) is the product of these per-axis posets.

States are represented by their index into :attr:`AxisStates.states`;
structural states come first (sorted by subset size, then by name for
determinism) and ``DROPPED`` is always the last index.  Annotated fact
values carry a bitmask over the *structural* state indices saying under
which states the value binds (monotone upward by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Tuple

from repro.core.axes import AxisSpec
from repro.patterns.relaxation import Relaxation

StructuralState = FrozenSet[Relaxation]


@dataclass(frozen=True)
class AxisStates:
    """The ordered states of one axis.

    Attributes:
        axis: the axis spec.
        states: structural states (frozensets of relaxations) in canonical
            order; index ``len(states)`` denotes DROPPED.
    """

    axis: AxisSpec
    states: Tuple[StructuralState, ...]

    @staticmethod
    def for_axis(axis: AxisSpec) -> "AxisStates":
        structural = sorted(axis.structural, key=lambda r: r.value)
        subsets: List[StructuralState] = []
        for size in range(len(structural) + 1):
            for combo in combinations(structural, size):
                subsets.append(frozenset(combo))
        return AxisStates(axis, tuple(subsets))

    # ------------------------------------------------------------------
    @property
    def dropped_index(self) -> int:
        return len(self.states)

    @property
    def state_count(self) -> int:
        """Total states including DROPPED."""
        return len(self.states) + 1

    def is_dropped(self, index: int) -> bool:
        return index == self.dropped_index

    def structural_state(self, index: int) -> StructuralState:
        return self.states[index]

    def index_of(self, state: StructuralState) -> int:
        return self.states.index(frozenset(state))

    @property
    def rigid_index(self) -> int:
        return self.index_of(frozenset())

    # ------------------------------------------------------------------
    def leq(self, first: int, second: int) -> bool:
        """Is state ``first`` less-or-equally relaxed than ``second``?

        DROPPED is above every state; structural states order by subset
        inclusion.
        """
        if second == self.dropped_index:
            return True
        if first == self.dropped_index:
            return False
        return self.states[first] <= self.states[second]

    def successors(self, index: int) -> List[int]:
        """One-step relaxations from a state: add one permitted structural
        relaxation, or apply LND (go to DROPPED)."""
        if index == self.dropped_index:
            return []
        out: List[int] = []
        current = self.states[index]
        for relaxation in self.axis.structural:
            if relaxation not in current:
                out.append(self.index_of(current | {relaxation}))
        out.append(self.dropped_index)
        return out

    def mask_of(self, index: int) -> int:
        """Bit for a structural state index (DROPPED has no mask)."""
        if index == self.dropped_index:
            raise ValueError("DROPPED has no structural mask")
        return 1 << index

    def upward_mask(self, index: int) -> int:
        """Mask of the state and every structural superset state."""
        base = self.states[index]
        mask = 0
        for position, state in enumerate(self.states):
            if base <= state:
                mask |= 1 << position
        return mask

    def describe(self, index: int) -> str:
        if index == self.dropped_index:
            return "LND"
        state = self.states[index]
        if not state:
            return "rigid"
        return "+".join(sorted(r.value for r in state))
