"""Unit tests for the node store."""

import pytest

from repro.errors import StorageError
from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeStore
from repro.timber.pages import Disk
from repro.timber.stats import CostModel
from repro.xmlmodel.parser import parse


def make_store(page_capacity=4, buffer_pages=8):
    disk = Disk(page_capacity=page_capacity)
    cost = CostModel()
    pool = BufferPool(disk, cost, capacity_pages=buffer_pages)
    return NodeStore(disk, pool), cost


DOC = "<a x=\"1\"><b>hi</b><c><d/></c></a>"


class TestLoading:
    def test_load_assigns_doc_ids(self):
        store, _ = make_store()
        first = store.load_document(parse(DOC, name="one"))
        second = store.load_document(parse("<z/>", name="two"))
        assert (first, second) == (0, 1)
        assert store.document_count == 2
        assert store.document_name(0) == "one"

    def test_record_fields(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        root = store.read(0, 0)
        assert root.tag == "a"
        assert root.attr("x") == "1"
        assert root.parent_id == -1
        b = store.read(0, 1)
        assert (b.tag, b.text, b.parent_id) == ("b", "hi", 0)

    def test_records_span_pages(self):
        store, _ = make_store(page_capacity=2)
        store.load_document(parse(DOC))
        assert store.node_count(0) == 4
        assert store.read(0, 3).tag == "d"


class TestReading:
    def test_scan_document_order(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        assert [record.tag for record in store.scan(0)] == [
            "a", "b", "c", "d",
        ]

    def test_scan_all(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        store.load_document(parse("<z/>"))
        assert [record.tag for record in store.scan_all()] == [
            "a", "b", "c", "d", "z",
        ]

    def test_children_of(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        children = store.children_of(0, 0)
        assert [record.tag for record in children] == ["b", "c"]
        assert store.children_of(0, 1) == []

    def test_subtree_of(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        subtree = list(store.subtree_of(0, 2))
        assert [record.tag for record in subtree] == ["c", "d"]

    def test_reads_charge_io(self):
        store, cost = make_store(page_capacity=1, buffer_pages=1)
        store.load_document(parse(DOC))
        cost.reset()
        store.read(0, 0)
        store.read(0, 3)
        assert cost.io.page_reads == 2

    def test_bad_ids(self):
        store, _ = make_store()
        store.load_document(parse(DOC))
        with pytest.raises(StorageError):
            store.read(0, 99)
        with pytest.raises(StorageError):
            store.read(5, 0)
        with pytest.raises(StorageError):
            store.node_count(9)

    def test_stats(self):
        store, _ = make_store(page_capacity=2)
        store.load_document(parse(DOC))
        stats = store.stats()
        assert stats["documents"] == 1
        assert stats["nodes"] == 4
        assert stats["pages"] >= 2
