"""Textual syntax for tree patterns.

Grammar (an XPath-like twig syntax)::

    pattern   := rootaxis? step
    rootaxis  := '/' | '//'
    step      := test flags? (label | valuetest)? predicate* tail?
    test      := NAME | '*' | '@' NAME
    flags     := '?'                     # optional node (LND applied)
    label     := '=' '$'? NAME           # bind a variable label
    valuetest := '=' '"' TEXT '"'        # selection predicate on the value
    predicate := '[' relstep ']'         # a branch
    relstep   := axis? step
    axis      := '/' | '//' | './' | './/'
    tail      := axis step               # continue the spine

Examples::

    //publication[/author/name=$n][//publisher/@id=$p][/year=$y]
    publication[./author][.//name]
    //publication/year?

The leading ``./`` form inside predicates mirrors the paper's notation
(``publication[./author][.//name]``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PatternParseError
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern


class _Scanner:
    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def fail(self, message: str) -> None:
        raise PatternParseError(f"{message} at position {self.pos} in {self.text!r}")


def parse_pattern(text: str) -> TreePattern:
    """Parse pattern text into a :class:`TreePattern`."""
    scanner = _Scanner(text.strip())
    root_axis = EdgeAxis.DESCENDANT if scanner.take("//") else EdgeAxis.CHILD
    if not scanner.take("/") and root_axis is EdgeAxis.CHILD:
        pass  # bare name: child-of-virtual-root, i.e. document root test
    root = _parse_step(scanner, axis=EdgeAxis.CHILD)
    if not scanner.eof():
        scanner.fail("trailing characters")
    pattern = TreePattern(root, root_axis=root_axis)
    pattern.validate()
    return pattern


def _parse_axis(scanner: _Scanner) -> Optional[EdgeAxis]:
    """Parse an axis token if present (handles the ``./`` forms)."""
    if scanner.take(".//"):
        return EdgeAxis.DESCENDANT
    if scanner.take("./"):
        return EdgeAxis.CHILD
    if scanner.take("//"):
        return EdgeAxis.DESCENDANT
    if scanner.take("/"):
        return EdgeAxis.CHILD
    return None


def _parse_name(scanner: _Scanner) -> str:
    if scanner.take("*"):
        return "*"
    at = "@" if scanner.take("@") else ""
    begin = scanner.pos
    while not scanner.eof() and (
        scanner.peek().isalnum() or scanner.peek() in "_:.-"
    ):
        # '.' only allowed mid-name if not starting a './' axis; names in
        # our datasets never contain '.', keep it simple and exclude it.
        if scanner.peek() == ".":
            break
        scanner.pos += 1
    name = scanner.text[begin : scanner.pos]
    if not name:
        scanner.fail("expected a name")
    return at + name


def _parse_step(scanner: _Scanner, axis: EdgeAxis) -> PatternNode:
    test = _parse_name(scanner)
    optional = scanner.take("?")
    label = ""
    value_test = None
    if scanner.take("="):
        if scanner.take('"'):
            begin = scanner.pos
            while not scanner.eof() and scanner.peek() != '"':
                scanner.pos += 1
            if not scanner.take('"'):
                scanner.fail("unterminated value predicate")
            value_test = scanner.text[begin : scanner.pos - 1]
        else:
            scanner.take("$")
            label = _parse_name(scanner)
            label = f"${label}"
    node = PatternNode(
        test, axis=axis, optional=optional, label=label,
        value_test=value_test,
    )
    # Predicates.
    while scanner.take("["):
        child_axis = _parse_axis(scanner) or EdgeAxis.CHILD
        child = _parse_step(scanner, axis=child_axis)
        if not scanner.take("]"):
            scanner.fail("expected ']'")
        node.add(child)
    # Spine continuation.
    spine_axis = _parse_axis(scanner)
    if spine_axis is not None:
        node.add(_parse_step(scanner, axis=spine_axis))
    return node


def parse_steps(path: str) -> List[Tuple[EdgeAxis, str]]:
    """Parse a linear path like ``author/name`` or ``//publisher/@id``
    into (axis, test) tuples.  Used by the axis-spec layer."""
    scanner = _Scanner(path.strip())
    steps: List[Tuple[EdgeAxis, str]] = []
    first_axis = _parse_axis(scanner) or EdgeAxis.CHILD
    steps.append((first_axis, _parse_name(scanner)))
    while not scanner.eof():
        axis = _parse_axis(scanner)
        if axis is None:
            scanner.fail("expected '/' or '//'")
        steps.append((axis, _parse_name(scanner)))
    for position, (_, test) in enumerate(steps):
        if test.startswith("@") and position != len(steps) - 1:
            raise PatternParseError(
                f"attribute step must be last in {path!r}"
            )
    return steps
