"""COLUMNAR: vectorized single-pass multi-cuboid sweep over encoded columns.

The counter algorithm (Sec. 3.3) already computes every requested cuboid
from one base scan, but it re-derives the per-axis value lists and hashes
a *string-tuple* key per (row, point, combination).  This kernel runs the
same combinatorial incrementing over the dictionary-encoded columns of
:class:`~repro.core.columnar.ColumnarFactTable` and shares work across
cuboids:

- the requested lattice points are arranged in a **prefix trie** keyed by
  their per-axis states, so two points that keep axis 0 in the same state
  share the column combine for axis 0 (one pass, many cuboids);
- a trie edge extends a whole **group-id column** at once with a
  mixed-radix multiply-add (``gid * radix + code``) — one list
  comprehension over an ``array('q')`` state view, no per-row dict or
  tuple work;
- a row with no value under a kept state carries ``None`` — the coverage
  gap of Sec. 2 — and drops out of every cuboid below that edge, exactly
  the ``key_combinations`` contract;
- a row with several distinct values fans out into a tuple of group ids
  (the Sec. 3.3 cross product); the codes are distinct by construction,
  so a fact still counts once per group;
- at a leaf, integer group ids index a counter dict (COUNT and SUM use
  C-speed fast paths); ids decode back to string group keys with the
  reversed mixed-radix divmod.

Aggregation folds measures in base-row order — the same fold order as
NAIVE and COUNTER — so finalized floats are **bit-identical** to the dict
engine, which is what the differential battery asserts.

Cost model: one sequential scan of the *encoded* pages (dictionary codes
pack ~8x denser than the row form), the encode itself charged at full
CPU rate every run, and column combines / counter updates charged at one
op per :data:`VECTOR_LANES` rows (batched integer ops on flat buffers
versus per-row hash probes).  Memory behaviour mirrors COUNTER: when the
cells overflow the budget the sweep degrades to multi-pass partitioned
execution, re-reading the encoded table per extra pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, cast

from repro import obs
from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.bindings import GroupKey
from repro.core.columnar import (
    VECTOR_LANES,
    ColumnarFactTable,
    KeptAxis,
    RowGroups,
    extend_group_ids,
    fold_group_ids,
    make_group_decoder,
    vector_lanes,
)
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint

__all__ = ["ColumnarSweepAlgorithm", "VECTOR_LANES"]


class ColumnarSweepAlgorithm(CubeAlgorithm):
    name = "COLUMNAR"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        with obs.span(
            "columnar.encode", category="columnar", facts=len(table.rows)
        ):
            encoded = table.columnar()
        n_rows = encoded.n_rows

        # One sequential scan of the encoded table; the encode work is
        # charged every run so modeled cost never depends on whether the
        # memoized encoding was warm.
        context.charge_encoded_scan(encoded.encoded_pages)
        context.cost.charge_cpu(encoded.encoded_entries)
        context.cost.charge_cpu(vector_lanes(n_rows))

        sweep = _Sweep(context, encoded, table.aggregate.fn)
        with obs.span(
            "columnar.sweep",
            category="columnar",
            points=len(points),
            facts=n_rows,
        ):
            sweep.descend(0, [0] * n_rows, False, list(points), [])

        total_cells = sweep.total_cells
        passes = max(
            1, -(-total_cells // context.budget.capacity_entries)
        )
        context.bump("columnar_cells", total_cells)
        context.bump("columnar_increments", sweep.increments)
        context.bump("columnar_nodes", sweep.nodes)
        context.bump("columnar_passes", passes)
        context.budget.acquire(
            min(total_cells, context.budget.capacity_entries)
        )
        for _ in range(passes - 1):
            context.bump("columnar_scans")
            context.cost.charge_read(encoded.encoded_pages)
            context.cost.charge_cpu(vector_lanes(n_rows))
            context.charge_spill(context.budget.capacity_entries)
        if obs.enabled():
            obs.count("x3_columnar_rows_total", n_rows)
            obs.count("x3_columnar_cells_total", total_cells)
            obs.count("x3_columnar_trie_nodes_total", sweep.nodes)
            obs.count("x3_columnar_increments_total", sweep.increments)
            obs.count("x3_columnar_passes_total", passes)
        context.budget.release_all()
        return sweep.cuboids, passes


class _Sweep:
    """One sweep's mutable state (fresh per run; thread-safe by isolation)."""

    def __init__(
        self,
        context: ExecutionContext,
        encoded: ColumnarFactTable,
        fn: Any,
    ) -> None:
        self.context = context
        self.encoded = encoded
        self.fn = fn
        self.fn_name = fn.name
        self.cuboids: Dict[LatticePoint, Cuboid] = {}
        self.total_cells = 0
        self.increments = 0
        self.nodes = 0

    # ------------------------------------------------------------------
    # the prefix trie over requested points
    # ------------------------------------------------------------------
    def descend(
        self,
        position: int,
        prefix: List[RowGroups],
        has_multi: bool,
        points: List[LatticePoint],
        kept: List[KeptAxis],
    ) -> None:
        lattice = self.context.lattice
        if position == lattice.axis_count:
            # All points in this bucket are the same tuple.
            self.cuboids[points[0]] = self._leaf(prefix, has_multi, kept)
            return
        states = lattice.axis_states[position]
        buckets: Dict[int, List[LatticePoint]] = {}
        for point in points:
            buckets.setdefault(point[position], []).append(point)
        for state in sorted(buckets):
            subset = buckets[state]
            if states.is_dropped(state):
                # Dropped axis: the group-id column passes through
                # unchanged (LND keeps every fact, adds no key part).
                self.descend(position + 1, prefix, has_multi, subset, kept)
                continue
            column = self.encoded.columns[position]
            view = self.encoded.state_view(position, state)
            extended, extended_multi = extend_group_ids(
                prefix, has_multi, view, column.radix
            )
            self.nodes += 1
            self.context.cost.charge_cpu(vector_lanes(len(prefix)))
            self.descend(
                position + 1,
                extended,
                extended_multi,
                subset,
                kept + [(column.dictionary, column.radix)],
            )

    # ------------------------------------------------------------------
    # leaf: aggregate one cuboid from the group-id column
    # ------------------------------------------------------------------
    def _leaf(
        self,
        prefix: List[RowGroups],
        has_multi: bool,
        kept: List[KeptAxis],
    ) -> Cuboid:
        fn = self.fn
        cells, increments = fold_group_ids(
            fn, prefix, has_multi, self.encoded.measures
        )
        self.increments += increments
        self.total_cells += len(cells)
        self.context.cost.charge_cpu(vector_lanes(increments))
        self.context.cost.charge_cpu(len(cells))  # finalize, scalar

        finalize = fn.finalize
        # The sweep never emits null digits (radix == len(dictionary)),
        # so every decoded key is a full string tuple.
        decode = make_group_decoder(kept)
        return {
            cast(GroupKey, decode(gid)): finalize(state)
            for gid, state in cells.items()
        }
