"""Fig. 8 — dense cubes, 10^5 trees, both properties hold: 'the top-down
algorithms are good for the dense cubes'."""

import pytest

from benchmarks.conftest import bench_once

ALGORITHMS = ["COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_algorithm(benchmark, dense_cov_disj, algorithm):
    result = bench_once(benchmark, lambda: dense_cov_disj.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    assert result.total_cells() > 0


def test_fig8_shape(dense_cov_disj):
    sim = {name: dense_cov_disj.simulated(name) for name in ALGORITHMS}
    # TDOPTALL shines on dense cubes with full summarizability.
    assert sim["TDOPTALL"] < sim["BUC"]
    assert sim["TDOPTALL"] < sim["TD"] / 5
    # COUNTER is competitive while the (small, dense) cube fits memory.
    assert sim["COUNTER"] < sim["TD"]


def test_fig8_smaller_cube_than_fig6(dense_cov_disj, dense_nocov_disj):
    """Sec. 4.2: 'the degree of relaxation in this setting is one step
    less than the first setting, the average cube size is smaller, and
    the computation is faster.'"""
    lnd_lattice = dense_cov_disj.table.lattice.size()
    pcad_lattice = dense_nocov_disj.table.lattice.size()
    assert lnd_lattice < pcad_lattice
    assert (
        dense_cov_disj.simulated("TD") < dense_nocov_disj.simulated("TD")
    )
