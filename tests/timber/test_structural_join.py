"""Unit tests for the stack-tree structural join."""

from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeStore
from repro.timber.pages import Disk
from repro.timber.stats import CostModel
from repro.timber.structural_join import join_pairs, stack_tree_join
from repro.timber.tag_index import TagIndex
from repro.xmlmodel.parser import parse


def postings_for(xml_docs, *tags):
    disk = Disk()
    cost = CostModel()
    pool = BufferPool(disk, cost, capacity_pages=64)
    store = NodeStore(disk, pool)
    for doc in xml_docs:
        store.load_document(parse(doc))
    index = TagIndex(disk, pool)
    index.build(store)
    return cost, [index.scan_list(tag) for tag in tags]


def naive_pairs(xml_docs, anc_tag, desc_tag, parent_child=False):
    out = []
    for doc_id, text in enumerate(xml_docs):
        doc = parse(text)
        for anc in doc.find_all(anc_tag):
            for desc in anc.find_descendants(desc_tag):
                if parent_child and desc.parent is not anc:
                    continue
                out.append((doc_id, anc.start, desc.start))
    return sorted(out)


def join_keys(pairs):
    return sorted(
        (anc.doc_id, anc.start, desc.start) for anc, desc in pairs
    )


class TestAncestorDescendant:
    def test_simple_nesting(self):
        docs = ["<a><b><c/></b><c/></a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "c")
        pairs = join_pairs(ancs, descs, cost)
        assert join_keys(pairs) == naive_pairs(docs, "a", "c")

    def test_recursive_ancestors(self):
        docs = ["<a><a><b/></a><b/></a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "b")
        pairs = join_pairs(ancs, descs, cost)
        assert join_keys(pairs) == naive_pairs(docs, "a", "b")
        assert len(pairs) == 3  # inner b matches both a's

    def test_multiple_documents(self):
        docs = ["<a><b/></a>", "<x><a/><b/></x>", "<a><c><b/></c></a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "b")
        pairs = join_pairs(ancs, descs, cost)
        assert join_keys(pairs) == naive_pairs(docs, "a", "b")

    def test_no_matches(self):
        docs = ["<a><b/></a>"]
        cost, (ancs, descs) = postings_for(docs, "b", "a")
        assert join_pairs(ancs, descs, cost) == []

    def test_empty_streams(self):
        cost = CostModel()
        assert list(stack_tree_join([], [], cost)) == []

    def test_charges_cpu(self):
        docs = ["<a>" + "<b/>" * 10 + "</a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "b")
        before = cost.cpu_ops
        join_pairs(ancs, descs, cost)
        assert cost.cpu_ops > before


class TestParentChild:
    def test_only_adjacent_levels(self):
        docs = ["<a><b/><c><b/></c></a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "b")
        pairs = join_pairs(ancs, descs, cost, parent_child=True)
        assert join_keys(pairs) == naive_pairs(
            docs, "a", "b", parent_child=True
        )
        assert len(pairs) == 1

    def test_deep_chain(self):
        docs = ["<a><a><a><b/></a></a></a>"]
        cost, (ancs, descs) = postings_for(docs, "a", "b")
        pairs = join_pairs(ancs, descs, cost, parent_child=True)
        assert len(pairs) == 1


class TestRandomizedAgainstNaive:
    def test_random_trees(self):
        import random

        rng = random.Random(13)

        def random_xml(depth=0):
            if depth > 3 or rng.random() < 0.3:
                return f"<{rng.choice('ab')}/>"
            inner = "".join(
                random_xml(depth + 1) for _ in range(rng.randrange(1, 4))
            )
            return f"<c>{inner}</c>"

        docs = []
        for _ in range(5):
            inner = "".join(random_xml() for _ in range(3))
            docs.append(f"<r>{inner}</r>")
        cost, (ancs, descs) = postings_for(docs, "c", "a")
        pairs = join_pairs(ancs, descs, cost)
        assert join_keys(pairs) == naive_pairs(docs, "c", "a")
