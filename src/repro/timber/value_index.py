"""A (tag, value) -> postings index.

The paper's Treebank queries group "a marked-up element by the value of
the marked-up text under it"; selection predicates on those values
(``//sentence[/m1="v3"]``) scan far fewer postings when the store keeps
a value index next to the tag index — the equivalent of TIMBER's
value/term indexes.

The index is paged like everything else: postings live on index pages
read through the buffer pool, so lookups are charged I/O.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeStore
from repro.timber.pages import Disk
from repro.timber.tag_index import Posting, _posting_from


class ValueIndex:
    """(tag, direct text value) -> postings sorted in document order."""

    def __init__(self, disk: Disk, pool: BufferPool) -> None:
        self._disk = disk
        self._pool = pool
        self._addresses: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def build(self, store: NodeStore) -> None:
        """(Re-)build from the node store; empty-text elements are not
        indexed (they are reachable via the tag index)."""
        buckets: Dict[Tuple[str, str], List[Posting]] = {}
        for record in store.scan_all():
            if not record.text:
                continue
            buckets.setdefault((record.tag, record.text), []).append(
                _posting_from(record)
            )
        self._addresses.clear()
        page = None
        for key in sorted(buckets):
            postings = sorted(buckets[key], key=lambda p: p.sort_key)
            addresses: List[Tuple[int, int]] = []
            for posting in postings:
                if page is None or page.full:
                    page = self._disk.allocate()
                    self._pool.admit_new(page)
                    self._pool.cost.charge_write()
                slot = page.append(posting)
                addresses.append((page.page_id, slot))
            self._addresses[key] = addresses
        self._pool.flush()

    # ------------------------------------------------------------------
    def lookup(self, tag: str, value: str) -> List[Posting]:
        """Postings of elements with the tag and exact text value."""
        out: List[Posting] = []
        for page_id, slot in self._addresses.get((tag, value), ()):
            page = self._pool.fetch(page_id)
            self._pool.cost.charge_cpu()
            out.append(page.get(slot))
        return out

    def cardinality(self, tag: str, value: str) -> int:
        return len(self._addresses.get((tag, value), ()))

    def values_of(self, tag: str) -> List[str]:
        """Distinct indexed values of one tag (sorted)."""
        return sorted(
            value for (key_tag, value) in self._addresses if key_tag == tag
        )

    def keys(self) -> Iterator[Tuple[str, str]]:
        return iter(self._addresses)

    def selectivity(self, tag: str, value: str, tag_total: int) -> float:
        """Fraction of the tag's elements carrying this value."""
        if tag_total <= 0:
            return 0.0
        return self.cardinality(tag, value) / tag_total
