"""Coordinator contract: every gathered answer — healthy or degraded —
equals a serial NAIVE recompute over the rows at the answer's version."""

import pytest

from repro.cluster import (
    ChaosEngine,
    ChaosProfile,
    ClusterCoordinator,
    VersionVector,
)
from repro.core.aggregates import AggregateSpec
from repro.core.bindings import FactTable
from repro.core.cube import ExecutionOptions, compute_cube
from repro.errors import ClusterError, CubeError, ShardUnavailable
from repro.testing import messy_workload, small_workload


def fresh(**overrides):
    workload = small_workload(**overrides)
    table = workload.fact_table()
    return table, workload.oracle(table)


def reference_cuboid(table, rows, point):
    snapshot = FactTable(table.lattice, list(rows), table.aggregate)
    result = compute_cube(
        snapshot, ExecutionOptions(algorithm="NAIVE", points=(point,))
    )
    return result.cuboids[point]


def with_aggregate(table, function):
    spec = (
        AggregateSpec()
        if function == "COUNT"
        else AggregateSpec(function, "@m")
    )
    return FactTable(table.lattice, list(table.rows), aggregate=spec)


def first_point(table):
    return next(iter(table.lattice.points()))


def assert_cluster_serves_exactly(coordinator, table, rows=None):
    rows = table.rows if rows is None else rows
    for point in table.lattice.points():
        expected = reference_cuboid(table, rows, point)
        got = coordinator.cuboid(point)
        if table.aggregate.function == "COUNT":
            assert got == expected, table.lattice.describe(point)
        else:
            # SUM/AVG fold in a different (per-shard) order; values are
            # equal up to float associativity.
            assert set(got) == set(expected)
            for key in expected:
                assert got[key] == pytest.approx(
                    expected[key], rel=1e-9, abs=1e-12
                )


class TestHealthyCluster:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 8])
    def test_matches_serial_naive(self, n_shards):
        table, oracle = fresh()
        with ClusterCoordinator(table, n_shards, 2, oracle=oracle) as c:
            assert_cluster_serves_exactly(c, table)

    def test_messy_workload_matches(self):
        # Non-disjoint grouping and incomplete coverage: exactly the
        # paper's Sec. 2 hard cases.  Fact partitioning stays disjoint,
        # so the gathered states still merge losslessly.
        workload = messy_workload()
        table = workload.fact_table()
        with ClusterCoordinator(table, 4, 2) as coordinator:
            assert_cluster_serves_exactly(coordinator, table)

    @pytest.mark.parametrize("function", ["SUM", "MIN", "MAX", "AVG"])
    def test_all_aggregates_merge(self, function):
        table, _ = fresh()
        table = with_aggregate(table, function)
        with ClusterCoordinator(table, 3, 2) as coordinator:
            assert_cluster_serves_exactly(coordinator, table)

    def test_version_vector_starts_at_zero(self):
        table, oracle = fresh()
        with ClusterCoordinator(table, 3, 2, oracle=oracle) as c:
            assert c.version_vector == VersionVector.zero(3)
            _, vector = c.cuboid_versioned(first_point(table))
            assert vector == VersionVector.zero(3)

    def test_rejects_foreign_point(self):
        table, oracle = fresh()
        other = small_workload(n_axes=2).fact_table()
        with ClusterCoordinator(table, 2, 1, oracle=oracle) as c:
            with pytest.raises(CubeError):
                c.cuboid(first_point(other))

    def test_rejects_bad_geometry(self):
        table, _ = fresh()
        with pytest.raises(ClusterError):
            ClusterCoordinator(table, 0)
        with pytest.raises(ClusterError):
            ClusterCoordinator(table, 2, 0)


class TestOlapOperations:
    def test_cell_slice_dice_match_single_node(self):
        from repro.serve import CubeServer

        table, oracle = fresh()
        server = CubeServer(table, oracle)
        point = first_point(table)
        with ClusterCoordinator(table, 4, 2, oracle=oracle) as c:
            cuboid = server.cuboid(point)
            some_key = next(iter(cuboid))
            assert c.cell(point, some_key) == server.cell(
                point, some_key
            )
            value = some_key[0]
            assert c.slice(point, 0, value) == server.slice(
                point, 0, value
            )
            assert c.dice(point, {0: [value]}) == server.dice(
                point, {0: [value]}
            )


class TestWrites:
    def test_insert_delete_roundtrip(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 4, 2, oracle=oracle) as c:
            batch = rows[:5]
            vector = c.delete(batch)
            assert sum(vector) >= 1  # every touched shard bumped once
            assert_cluster_serves_exactly(c, table, rows[5:])
            reinserted = c.insert(batch)
            assert reinserted.dominates(vector)
            assert_cluster_serves_exactly(c, table, rows[5:] + batch)

    def test_writes_reach_all_replicas(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 2, 3, oracle=oracle) as c:
            c.delete(rows[:3])
            for shard in c.shards:
                versions = {replica.version for replica in shard}
                assert len(versions) == 1

    def test_read_answers_at_written_version(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 3, 2, oracle=oracle) as c:
            written = c.delete(rows[:4])
            _, read_vector = c.cuboid_versioned(first_point(table))
            assert read_vector == written


class TestFailover:
    def test_crashed_primary_fails_over(self):
        table, oracle = fresh()
        with ClusterCoordinator(table, 2, 2, oracle=oracle) as c:
            c.shards[0][0].crash()
            assert_cluster_serves_exactly(c, table)
            kinds = [e.kind for e in c.events.cluster_events()]
            assert "failover" in kinds
            assert c.stats().failovers >= 1

    def test_all_replicas_down_is_unavailable(self):
        table, oracle = fresh()
        with ClusterCoordinator(table, 2, 2, oracle=oracle) as c:
            for replica in c.shards[1]:
                replica.crash()
            with pytest.raises(ShardUnavailable):
                c.cuboid(first_point(table))

    def test_heal_all_restores_service(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 2, 2, oracle=oracle) as c:
            for replica in c.shards[1]:
                replica.crash()
            c.delete(rows[:3])  # queued on the downed replicas
            assert c.heal_all() == 2
            assert_cluster_serves_exactly(c, table, rows[3:])

    def test_crashed_replica_catches_up_on_heal(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 2, 2, oracle=oracle) as c:
            backup = c.shards[0][1]
            backup.crash()
            c.delete(rows[:4])
            backup.heal()
            assert backup.version == c.shards[0][0].version


class TestStaleReplicas:
    def test_stale_replica_synced_before_answering(self):
        table, oracle = fresh()
        rows = list(table.rows)
        chaos = ChaosEngine(
            ChaosProfile(name="stale-only", stale_rate=1.0), seed=1
        )
        with ClusterCoordinator(
            table, 2, 2, oracle=oracle, chaos=chaos
        ) as c:
            c.delete(rows[:3])  # every replica defers (stale_rate=1)
            assert_cluster_serves_exactly(c, table, rows[3:])
            assert c.stats().stale_retries >= 1
            kinds = [e.kind for e in c.events.cluster_events()]
            assert "stale" in kinds and "stale_retry" in kinds

    def test_runaway_replica_rejects_then_errors(self):
        table, oracle = fresh()
        with ClusterCoordinator(
            table, 2, 1, oracle=oracle, max_read_rounds=2
        ) as c:
            # A replica that applied a write the coordinator never
            # issued: its version is permanently ahead of the write
            # log, so no gather can ever be consistent.
            rogue = c.shards[0][0]
            rogue.apply("delete", list(rogue.table.rows[:1]))
            with pytest.raises(ClusterError):
                c.cuboid(first_point(table))
            assert c.stats().rejects >= 1
            kinds = [e.kind for e in c.events.cluster_events()]
            assert "reject" in kinds


class TestHedgedReads:
    def test_straggler_triggers_hedge(self):
        table, oracle = fresh()
        chaos = ChaosEngine(
            ChaosProfile(
                name="slow", straggle_rate=1.0, straggle_seconds=2.0
            ),
            seed=1,
        )
        with ClusterCoordinator(
            table, 2, 2, oracle=oracle, chaos=chaos,
            hedge_deadline_seconds=0.01,
        ) as c:
            point = first_point(table)
            assert c.cuboid(point) == reference_cuboid(
                table, table.rows, point
            )
            assert c.stats().hedges >= 1
            kinds = [e.kind for e in c.events.cluster_events()]
            assert "straggle" in kinds and "hedge" in kinds

    def test_hedge_bounds_modeled_latency(self):
        table, oracle = fresh()

        def slow_chaos():
            return ChaosEngine(
                ChaosProfile(
                    name="slow", straggle_rate=1.0, straggle_seconds=5.0
                ),
                seed=1,
            )

        with ClusterCoordinator(
            table, 2, 2, oracle=oracle, chaos=slow_chaos(),
            hedge_deadline_seconds=0.01,
        ) as hedged:
            hedged.cuboid(first_point(table))
            hedged_latency = hedged.modeled_latencies()[0]
        with ClusterCoordinator(
            table, 2, 2, oracle=oracle, chaos=slow_chaos(),
            hedge_deadline_seconds=None,
        ) as unhedged:
            unhedged.cuboid(first_point(table))
            unhedged_latency = unhedged.modeled_latencies()[0]
        assert hedged_latency < unhedged_latency
        assert unhedged_latency >= 5.0


class TestObservability:
    def test_read_and_write_events_carry_versions(self):
        table, oracle = fresh()
        rows = list(table.rows)
        with ClusterCoordinator(table, 3, 1, oracle=oracle) as c:
            c.delete(rows[:2])
            c.cuboid(first_point(table))
            events = c.events.cluster_events()
            reads = [e for e in events if e.kind == "read"]
            writes = [e for e in events if e.kind == "write"]
            assert reads and len(reads[-1].versions) == 3
            assert writes and sum(writes[-1].versions) >= 1

    def test_metrics_and_spans_emitted_under_trace(self):
        from repro import obs

        table, oracle = fresh()
        with obs.trace() as tracer:
            with ClusterCoordinator(table, 2, 2, oracle=oracle) as c:
                c.cuboid(first_point(table))
        trace = tracer.trace()
        assert "x3_cluster_requests_total" in trace.to_prometheus()
        names = set(trace.span_names())
        assert {"cluster.request", "cluster.shard", "cluster.merge"} \
            <= names

    def test_stats_snapshot(self):
        table, oracle = fresh()
        with ClusterCoordinator(table, 4, 2, oracle=oracle) as c:
            points = list(table.lattice.points())[:3]
            for point in points:
                c.cuboid(point)
            stats = c.stats()
            assert stats.requests == 3
            assert stats.shards == 4 and stats.replicas == 2
            assert stats.healthy_replicas == 8
            assert stats.merged_cells > 0
            assert stats.modeled_cost_seconds > 0
            assert len(c.modeled_latencies()) == 3
            assert "requests" in stats.summary()
