"""Unit tests for the X^3QL compiler (AST -> Query / X3Query)."""

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.query import Query, X3Query
from repro.core.xq_parser import parse_x3_query
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.errors import (
    InvalidQuery,
    QueryCompileError,
    QueryParseError,
    UnknownCube,
)
from repro.lang.compiler import (
    LANG_SECONDS_PER_STATEMENT,
    LANG_SECONDS_PER_TOKEN,
    VERB_KINDS,
    CompiledDefinition,
    CompiledQuery,
    compile_statement,
    compile_text,
    compile_x3,
    modeled_lang_seconds,
)
from repro.lang.parser import parse_statement
from repro.serve import CubeServer
from repro.server.model import CubeCatalog, LogicalCube


@pytest.fixture(scope="module")
def figure1_table():
    return extract_fact_table(
        [figure1_document()], parse_x3_query(QUERY1_TEXT)
    )


@pytest.fixture()
def catalog(figure1_table):
    server = CubeServer(
        figure1_table, PropertyOracle.from_data(figure1_table)
    )
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", server.lattice), server
    )
    return catalog


def compile_one(text, catalog):
    return compile_statement(parse_statement(text), catalog)


class TestVerbKinds:
    def test_every_verb_maps_to_a_query_kind(self):
        from repro.core.query import QUERY_KINDS
        from repro.lang.ast import NAV_VERBS

        assert set(VERB_KINDS) == set(NAV_VERBS)
        assert set(VERB_KINDS.values()) == set(QUERY_KINDS)


class TestCompileNav:
    def test_rollup_point(self, catalog):
        compiled = compile_one(
            "ROLLUP pubs BY n:detail, y:detail", catalog
        )
        assert isinstance(compiled, CompiledQuery)
        assert compiled.cube == "pubs"
        assert compiled.query == Query(
            point="$n:rigid, $p:LND, $y:rigid", kind="aggregate"
        )
        assert not compiled.explain

    def test_unmentioned_dimensions_default_to_all(self, catalog):
        compiled = compile_one("ROLLUP pubs", catalog)
        assert compiled.query.point == "$n:LND, $p:LND, $y:LND"

    def test_raw_state_labels_pass_through(self, catalog):
        compiled = compile_one("ROLLUP pubs BY n:SP", catalog)
        assert compiled.query.point == "$n:SP, $p:LND, $y:LND"

    def test_drilldown_axis_resolved(self, catalog):
        compiled = compile_one("DRILLDOWN pubs ON n", catalog)
        assert compiled.query.kind == "drilldown"
        assert compiled.query.axis == "$n"

    def test_slice(self, catalog):
        compiled = compile_one(
            "SLICE pubs ON y = '2003' BY n:detail, y:detail", catalog
        )
        assert compiled.query.kind == "slice"
        assert compiled.query.axis == "$y"
        assert compiled.query.value == "2003"

    def test_dice_filters_resolve_dimension_names(self, catalog):
        compiled = compile_one(
            "DICE pubs BY y:detail WHERE y IN ('2003', '2004')",
            catalog,
        )
        assert compiled.query.filters == (("$y", ("2003", "2004")),)

    def test_cell_key(self, catalog):
        compiled = compile_one(
            "CELL pubs KEY ('John', NULL) BY n:detail, y:detail",
            catalog,
        )
        assert compiled.query.kind == "cell"
        assert compiled.query.key == ("John", None)

    def test_explain_flag(self, catalog):
        compiled = compile_one("EXPLAIN ROLLUP pubs", catalog)
        assert compiled.explain

    def test_version_deadline_measure(self, catalog):
        compiled = compile_one(
            "ROLLUP pubs AT VERSION 0 WITHIN 50ms MEASURE COUNT",
            catalog,
        )
        assert compiled.query.read_version == (0,)
        assert compiled.query.deadline_seconds == 0.05
        assert compiled.query.measure == "COUNT"

    def test_unknown_cube_passes_through(self, catalog):
        with pytest.raises(UnknownCube):
            compile_one("ROLLUP nope", catalog)

    def test_unknown_dimension_is_a_compile_error(self, catalog):
        with pytest.raises(QueryCompileError) as excinfo:
            compile_one("ROLLUP pubs BY bogus:detail", catalog)
        assert excinfo.value.line == 1
        assert excinfo.value.column == 16
        assert isinstance(excinfo.value, InvalidQuery)

    def test_unknown_level_is_a_compile_error(self, catalog):
        with pytest.raises(QueryCompileError, match="level"):
            compile_one("ROLLUP pubs BY n:bogus", catalog)

    def test_duplicate_by_dimension(self, catalog):
        with pytest.raises(QueryCompileError, match="assigned twice"):
            compile_one("ROLLUP pubs BY n:detail, n:all", catalog)

    def test_where_on_non_dice_is_rejected(self, catalog):
        with pytest.raises(QueryCompileError, match="DICE only"):
            compile_one("ROLLUP pubs WHERE y = '2003'", catalog)

    def test_duplicate_where_dimension(self, catalog):
        with pytest.raises(QueryCompileError, match="filtered twice"):
            compile_one(
                "DICE pubs WHERE y = '2003' AND y = '2004'", catalog
            )

    def test_unknown_where_dimension(self, catalog):
        with pytest.raises(QueryCompileError, match="bogus"):
            compile_one("DICE pubs WHERE bogus = 'x'", catalog)


class TestCompileX3:
    def test_query1_matches_the_legacy_front_end(self, catalog):
        compiled = compile_one(QUERY1_TEXT, catalog)
        assert isinstance(compiled, CompiledDefinition)
        assert isinstance(compiled.spec, X3Query)
        assert compiled.spec == parse_x3_query(QUERY1_TEXT)

    def test_axis_must_be_fact_relative(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a, $m in $n/x '
            "X^3 $b by $n (LND), $m (LND) return COUNT()."
        )
        with pytest.raises(QueryParseError, match="relative to the fact"):
            compile_x3(statement)

    def test_unbound_by_variable(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b by $z (LND) return COUNT()."
        )
        with pytest.raises(QueryParseError, match="unbound variable"):
            compile_x3(statement)

    def test_binding_missing_from_by_clause(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a, $m in $b/c '
            "X^3 $b by $n (LND) return COUNT()."
        )
        with pytest.raises(QueryParseError, match="missing"):
            compile_x3(statement)

    def test_unknown_relaxation_carries_position(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b by $n (WAT) return COUNT()."
        )
        with pytest.raises(QueryParseError) as excinfo:
            compile_x3(statement)
        assert excinfo.value.line == 1

    def test_bad_aggregate(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b by $n (LND) return FROB()."
        )
        with pytest.raises(QueryParseError):
            compile_x3(statement)

    def test_measure_path_from_aggregate_argument(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b/@id by $n (LND) return SUM($b/price)."
        )
        spec = compile_x3(statement)
        assert spec.aggregate.function.upper() == "SUM"
        assert spec.aggregate.measure_path == "price"
        assert spec.fact_id_path == "@id"

    def test_bare_fact_measure_means_node_identity(self):
        statement = parse_statement(
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b by $n (LND) return COUNT()."
        )
        assert compile_x3(statement).fact_id_path == ""


class TestCompileText:
    def test_charges_the_token_cost_model(self, catalog):
        text = "ROLLUP pubs BY n:detail"
        compiled = compile_text(text, catalog)
        # ROLLUP pubs BY n : detail -> 6 tokens (EOF free).
        assert compiled.modeled_seconds == modeled_lang_seconds(6)
        assert compiled.modeled_seconds == pytest.approx(
            LANG_SECONDS_PER_STATEMENT + 6 * LANG_SECONDS_PER_TOKEN
        )

    def test_definition_carries_the_cost_too(self, catalog):
        compiled = compile_text(QUERY1_TEXT, catalog)
        assert isinstance(compiled, CompiledDefinition)
        assert compiled.modeled_seconds > LANG_SECONDS_PER_STATEMENT

    def test_cost_grows_with_statement_size(self, catalog):
        small = compile_text("ROLLUP pubs", catalog)
        large = compile_text(
            "ROLLUP pubs BY n:detail, p:detail, y:detail", catalog
        )
        assert large.modeled_seconds > small.modeled_seconds

    def test_single_statement_only(self, catalog):
        with pytest.raises(QueryParseError, match="one statement"):
            compile_text("ROLLUP pubs; ROLLUP pubs", catalog)

    def test_trailing_semicolon_allowed(self, catalog):
        compiled = compile_text("ROLLUP pubs;", catalog)
        assert compiled.query.kind == "aggregate"
