"""Setuptools shim: lets `pip install -e .` work on minimal offline
environments that lack the `wheel` package (PEP 660 fallback)."""
from setuptools import setup

setup()
