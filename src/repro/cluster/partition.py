"""Deterministic hash partitioning of the fact table across shards.

Facts — not lattice points — are what the cluster splits: the paper's
Sec. 2 analysis shows *grouping* may be non-disjoint (one fact can land
in several groups of a cuboid) or incomplete (a fact can miss a cuboid
entirely), but the facts themselves are identified by a unique
``fact_id`` and can therefore be partitioned disjointly.  Every group
contribution of a fact is made on exactly one shard, so per-shard
partial aggregate states merge losslessly (see :mod:`repro.core.merge`).

The shard function is an explicit FNV-1a hash over the fact id rather
than Python's builtin ``hash``: it must be stable across processes,
Python versions and ``PYTHONHASHSEED`` so that a replayed workload maps
facts to the same shards every time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.bindings import FactRow, FactTable
from repro.errors import ClusterError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    return value


def shard_of(fact_id: Tuple[int, int], n_shards: int) -> int:
    """The shard a fact lives on: deterministic, uniform, stable."""
    if n_shards <= 0:
        raise ClusterError(
            f"a cluster needs at least one shard, got {n_shards}"
        )
    doc_id, node_id = fact_id
    payload = doc_id.to_bytes(8, "big", signed=True) + node_id.to_bytes(
        8, "big", signed=True
    )
    return _fnv1a(payload) % n_shards


def partition_rows(
    rows: Sequence[FactRow], n_shards: int
) -> List[List[FactRow]]:
    """Split rows into ``n_shards`` disjoint slices by fact id.

    Within a slice the original row order is preserved, so per-shard
    folds are as deterministic as the serial fold they replace.
    """
    slices: List[List[FactRow]] = [[] for _ in range(n_shards)]
    for row in rows:
        slices[shard_of(row.fact_id, n_shards)].append(row)
    return slices


def partition_table(table: FactTable, n_shards: int) -> List[FactTable]:
    """One :class:`FactTable` per shard, sharing lattice and aggregate.

    The slices are a partition of the input rows: disjoint (each fact id
    hashes to one shard) and covering (every row is assigned).
    """
    return [
        FactTable(table.lattice, rows, table.aggregate)
        for rows in partition_rows(table.rows, n_shards)
    ]
