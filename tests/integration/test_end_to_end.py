"""End-to-end integration: text query -> XML text -> cube, both backends."""

from repro import (
    TimberDB,
    compute_cube,
    extract_fact_table,
    parse,
    parse_x3_query,
)
from repro.core.properties import PropertyOracle

SALES_XML = """
<sales>
  <sale id="1"><store><region>EU</region></store><item>pen</item>
    <item>ink</item><amount>10</amount></sale>
  <sale id="2"><store><region>US</region></store><item>pen</item>
    <amount>5</amount></sale>
  <sale id="3"><division><store><region>EU</region></store></division>
    <item>ink</item><amount>2</amount></sale>
  <sale id="4"><item>pen</item><amount>1</amount></sale>
</sales>
"""

QUERY = """
for $s in doc("sales.xml")//sale,
    $r in $s/store/region,
    $i in $s/item
X^3 $s/@id by $r (LND, SP, PC-AD),
            $i (LND)
return COUNT($s).
"""


class TestFullPipeline:
    def test_memory_backend(self):
        doc = parse(SALES_XML)
        query = parse_x3_query(QUERY)
        table = extract_fact_table(doc, query)
        cube = compute_cube(table, "BUC")
        # region rigid: sale3's region hides under division (PC-AD/SP
        # territory); sale4 has none at all.
        rigid = cube.cuboid_by_description("$r:rigid, $i:LND")
        assert rigid == {("EU",): 1.0, ("US",): 1.0}
        relaxed = cube.cuboid_by_description("$r:PC-AD, $i:LND")
        assert relaxed == {("EU",): 2.0, ("US",): 1.0}
        items = cube.cuboid_by_description("$r:LND, $i:rigid")
        assert items == {("pen",): 3.0, ("ink",): 2.0}

    def test_db_backend_identical(self):
        query = parse_x3_query(QUERY)
        memory_cube = compute_cube(
            extract_fact_table(parse(SALES_XML), query), "NAIVE"
        )
        db = TimberDB()
        db.load(SALES_XML)
        db_cube = compute_cube(extract_fact_table(db, query), "NAIVE")
        assert memory_cube.same_contents(db_cube)

    def test_all_algorithms_agree_via_data_oracle(self):
        query = parse_x3_query(QUERY)
        table = extract_fact_table(parse(SALES_XML), query)
        oracle = PropertyOracle.from_data(table)
        reference = compute_cube(table, "NAIVE")
        for name in ("COUNTER", "BUC", "TD", "BUCCUST", "TDCUST"):
            assert compute_cube(table, name, oracle=oracle).same_contents(
                reference
            )

    def test_sum_pipeline(self):
        text = QUERY.replace("COUNT($s)", "SUM($s/amount)")
        query = parse_x3_query(text)
        table = extract_fact_table(parse(SALES_XML), query)
        cube = compute_cube(table, "NAIVE")
        items = cube.cuboid_by_description("$r:LND, $i:rigid")
        assert items[("pen",)] == 16.0  # 10 + 5 + 1
        assert items[("ink",)] == 12.0  # 10 + 2


class TestMultiDocumentWarehouse:
    def test_facts_across_documents(self):
        query = parse_x3_query(QUERY)
        docs = [parse(SALES_XML, name="a"), parse(SALES_XML, name="b")]
        table = extract_fact_table(docs, query)
        assert len(table) == 8
        cube = compute_cube(table, "COUNTER")
        items = cube.cuboid_by_description("$r:LND, $i:rigid")
        assert items[("pen",)] == 6.0
