"""Named workload configurations used by the benchmark harness.

A :class:`WorkloadConfig` identifies a complete experiment input: the
generator, its knobs, and the declared summarizability regime.  The
regime feeds :class:`~repro.core.properties.PropertyOracle` the same way
the paper's controlled Treebank queries declared theirs, while the DBLP
workload carries a DTD so the oracle is schema-derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bindings import FactTable
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.query import X3Query
from repro.datagen.dblp import DblpConfig, dblp_dtd, dblp_query, generate_dblp
from repro.datagen.treebank import (
    TreebankConfig,
    generate_treebank,
    treebank_query,
)
from repro.schema.dtd import Dtd
from repro.xmlmodel.nodes import Document


@dataclass
class Workload:
    """A ready-to-run experiment input."""

    name: str
    documents: List[Document]
    query: X3Query
    oracle_disjoint: Optional[bool] = None
    oracle_covered: Optional[bool] = None
    dtd: Optional[Dtd] = None

    def fact_table(self) -> FactTable:
        return extract_fact_table(self.documents, self.query)

    def oracle(self, table: FactTable) -> PropertyOracle:
        """The property oracle this workload ships with.

        Treebank workloads declare the regime globally (as the paper's
        controlled queries did); DBLP derives it from the DTD (Sec. 3.7).
        """
        if self.dtd is not None:
            return PropertyOracle.from_schema(
                table.lattice, self.dtd, self.query.fact_tag
            )
        return PropertyOracle.from_flags(
            table.lattice,
            bool(self.oracle_disjoint),
            bool(self.oracle_covered),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Declarative description of a workload."""

    kind: str  # "treebank" | "dblp"
    n_facts: int = 1000
    n_axes: int = 3
    density: str = "sparse"
    coverage: bool = True
    disjoint: bool = True
    seed: int = 42

    @property
    def name(self) -> str:
        cov = "cov" if self.coverage else "nocov"
        dis = "disj" if self.disjoint else "nodisj"
        return (
            f"{self.kind}-{self.density}-{cov}-{dis}-"
            f"k{self.n_axes}-n{self.n_facts}"
        )


def build_workload(config: WorkloadConfig) -> Workload:
    """Materialize a workload from its configuration."""
    if config.kind == "treebank":
        tb = TreebankConfig(
            n_facts=config.n_facts,
            n_axes=config.n_axes,
            density=config.density,
            coverage=config.coverage,
            disjoint=config.disjoint,
            seed=config.seed,
        )
        return Workload(
            name=config.name,
            documents=[generate_treebank(tb)],
            query=treebank_query(tb),
            oracle_disjoint=config.disjoint,
            oracle_covered=config.coverage,
        )
    if config.kind == "dblp":
        dblp = DblpConfig(n_articles=config.n_facts, seed=config.seed)
        return Workload(
            name=config.name,
            documents=[generate_dblp(dblp)],
            query=dblp_query(),
            dtd=dblp_dtd(),
        )
    raise ValueError(f"unknown workload kind {config.kind!r}")
