"""An LRU buffer pool over the simulated disk.

Every page access goes through :meth:`BufferPool.fetch`.  A miss charges a
page read against the cost model; an eviction of a dirty page charges a
page write.  The pool size is what makes the paper's cold-cache behaviour
reproducible: algorithms that stream sequentially stay cheap, algorithms
that revisit pages beyond the pool size (COUNTER thrashing, repeated
external sorts in TD) pay for it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.errors import BufferPoolError
from repro.timber.pages import Disk, Page
from repro.timber.stats import CostModel


class BufferPool:
    """LRU cache of pages with I/O accounting.

    Args:
        disk: the simulated device.
        cost: the cost model charged for misses and dirty evictions.
        capacity_pages: number of frames; the paper used a 512 MB pool of
            8 KB pages (65536 frames) against ~1 GB of data, i.e. roughly
            half the working set fits.
    """

    def __init__(self, disk: Disk, cost: CostModel, capacity_pages: int = 1024) -> None:
        if capacity_pages <= 0:
            raise BufferPoolError("buffer pool capacity must be positive")
        self.disk = disk
        self.cost = cost
        self.capacity_pages = capacity_pages
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Return the page, charging a read on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self.cost.io.buffer_hits += 1
            return frame
        self.cost.io.buffer_misses += 1
        self.cost.charge_read()
        page = self.disk.page(page_id)
        self._admit(page)
        return page

    def admit_new(self, page: Page) -> None:
        """Admit a freshly allocated page without charging a read."""
        self._admit(page)

    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.capacity_pages:
            victim_id, victim = next(iter(self._frames.items()))
            del self._frames[victim_id]
            self.cost.io.evictions += 1
            if victim.dirty:
                self.cost.charge_write()
                victim.dirty = False

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty cached page (end-of-operation flush)."""
        for page in self._frames.values():
            if page.dirty:
                self.cost.charge_write()
                page.dirty = False

    def drop_all(self) -> None:
        """Empty the pool (simulate a cold cache), flushing dirty pages."""
        self.flush()
        self._frames.clear()

    def cached_ids(self) -> Iterator[int]:
        return iter(self._frames.keys())

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)
