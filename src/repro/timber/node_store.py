"""The node store: XML elements as fixed-size records on pages.

Loading a document writes one :class:`NodeRecord` per element, in document
order, so sequential scans are page-friendly.  Records carry the region
encoding, the tag, the parent's node id, the direct text value, and the
attribute map — everything the pattern evaluator needs without going back
to the in-memory tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.timber.buffer_pool import BufferPool
from repro.timber.pages import Disk
from repro.xmlmodel.nodes import Document


@dataclass(frozen=True)
class NodeRecord:
    """One stored element.

    Attributes:
        doc_id: owning document.
        node_id: document-order ordinal within the document.
        tag: element name.
        start, end, level: region encoding.
        parent_id: node id of the parent (-1 for the root).
        text: direct text value.
        attrs: attribute name -> value.
    """

    doc_id: int
    node_id: int
    tag: str
    start: int
    end: int
    level: int
    parent_id: int
    text: str
    attrs: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def attr(self, name: str) -> Optional[str]:
        for key, value in self.attrs:
            if key == name:
                return value
        return None

    @property
    def region(self) -> Tuple[int, int, int]:
        return (self.start, self.end, self.level)


@dataclass(frozen=True)
class RecordAddress:
    """Physical address of a record: (page id, slot)."""

    page_id: int
    slot: int


class NodeStore:
    """Append documents as node records; read them back through the pool."""

    def __init__(self, disk: Disk, pool: BufferPool) -> None:
        self._disk = disk
        self._pool = pool
        self._doc_names: List[str] = []
        # doc_id -> node_id -> address
        self._directory: List[List[RecordAddress]] = []
        self._current_page = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_document(self, doc: Document) -> int:
        """Store a document; returns its doc id."""
        doc_id = len(self._doc_names)
        self._doc_names.append(doc.name or f"doc{doc_id}")
        addresses: List[RecordAddress] = []
        for element in doc.elements:
            parent_id = element.parent.node_id if element.parent is not None else -1
            record = NodeRecord(
                doc_id=doc_id,
                node_id=element.node_id,
                tag=element.tag,
                start=element.start,
                end=element.end,
                level=element.level,
                parent_id=parent_id,
                text=element.text,
                attrs=tuple(element.attrs.items()),
            )
            addresses.append(self._append_record(record))
        self._directory.append(addresses)
        self._pool.flush()
        return doc_id

    def _append_record(self, record: NodeRecord) -> RecordAddress:
        page = self._disk.last_page()
        if page is None or page.full:
            page = self._disk.allocate()
            self._pool.admit_new(page)
            self._pool.cost.charge_write()
        slot = page.append(record)
        return RecordAddress(page.page_id, slot)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._doc_names)

    def document_name(self, doc_id: int) -> str:
        self._check_doc(doc_id)
        return self._doc_names[doc_id]

    def node_count(self, doc_id: int) -> int:
        self._check_doc(doc_id)
        return len(self._directory[doc_id])

    def read(self, doc_id: int, node_id: int) -> NodeRecord:
        """Read one record through the buffer pool."""
        self._check_doc(doc_id)
        try:
            address = self._directory[doc_id][node_id]
        except IndexError:
            raise StorageError(
                f"document {doc_id} has no node {node_id}"
            ) from None
        page = self._pool.fetch(address.page_id)
        record = page.get(address.slot)
        self._pool.cost.charge_cpu()
        return record

    def scan(self, doc_id: int) -> Iterator[NodeRecord]:
        """Scan a document's records in document order."""
        self._check_doc(doc_id)
        for address in self._directory[doc_id]:
            page = self._pool.fetch(address.page_id)
            self._pool.cost.charge_cpu()
            yield page.get(address.slot)

    def scan_all(self) -> Iterator[NodeRecord]:
        """Scan every document in load order."""
        for doc_id in range(self.document_count):
            yield from self.scan(doc_id)

    def children_of(self, doc_id: int, node_id: int) -> List[NodeRecord]:
        """Direct children of a node (scan of the containing region)."""
        parent = self.read(doc_id, node_id)
        out: List[NodeRecord] = []
        cursor = node_id + 1
        total = self.node_count(doc_id)
        while cursor < total:
            record = self.read(doc_id, cursor)
            if record.start > parent.end:
                break
            if record.parent_id == node_id:
                out.append(record)
            cursor += 1
        return out

    def subtree_of(self, doc_id: int, node_id: int) -> Iterator[NodeRecord]:
        """The node and all its descendants, in document order."""
        top = self.read(doc_id, node_id)
        cursor = node_id
        total = self.node_count(doc_id)
        while cursor < total:
            record = self.read(doc_id, cursor)
            if record.start > top.end:
                break
            yield record
            cursor += 1

    def _check_doc(self, doc_id: int) -> None:
        if not 0 <= doc_id < len(self._doc_names):
            raise StorageError(f"no document with id {doc_id}")

    def stats(self) -> Dict[str, int]:
        return {
            "documents": self.document_count,
            "nodes": sum(len(addrs) for addrs in self._directory),
            "pages": len(self._disk),
        }
