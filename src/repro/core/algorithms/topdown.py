"""Top-down cube computation: TD, TDOPT, TDOPTALL, TDCUST (Sec. 3.5).

The family is XMLized from PartitionCube/MemoryCube [Ross & Srivastava]:
cuboids are produced by sorting and scanning, and coarser cuboids are —
when the summarizability properties allow — computed from finer *aggregate
rows* instead of the base data.

- ``TD`` (unoptimized, always correct): every cuboid is computed from the
  base fact table — a full scan plus an (external, when the table exceeds
  the memory budget) sort per lattice point, with identity tracking.  The
  exponential number of sorts is its meltdown mode.
- ``TDOPT`` (requires disjointness): cuboids with every axis kept are
  computed from base; every other cuboid is rolled up from the smallest
  already-computed finer cuboid by merging aggregate rows.  Coverage
  violations are absorbed by carrying "null value" groups (Sec. 3.5) in
  the intermediate cuboids, stripped at reporting time.  Non-disjoint
  facts are double-counted by the roll-up, so TDOPT is wrong when
  disjointness fails (Fig. 9).
- ``TDOPTALL`` (requires disjointness *and* total coverage): assumes full
  summarizability — only the all-rigid top cuboid touches the base;
  structurally-relaxed points are assumed identical to their rigid
  counterparts (relaxation adds nothing under total coverage of the rigid
  pattern) and everything else is a pure aggregate roll-up with no null
  bookkeeping.  Fastest of the family on dense cubes, and wrong when
  either property fails.
- ``TDCUST`` (Sec. 4.5, always correct): per lattice point, rolls up from
  a finer cuboid only when the property oracle proves the source cuboid
  disjoint; otherwise recomputes that point from base with the safe
  (identity-tracking) path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.groupby import Cuboid, augmented_keys, strip_null_groups
from repro.core.lattice import LatticePoint
from repro.timber.external_sort import sorted_with_cost

AugKey = Tuple[Optional[str], ...]
AugCuboid = Dict[AugKey, object]  # key -> aggregate partial state


class TdAlgorithm(CubeAlgorithm):
    """TD: every cuboid from base, with identity tracking.  Always correct."""

    name = "TD"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        fn = table.aggregate.fn
        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            context.charge_base_scan()
            context.bump("td_base_sorts")
            placements: List[Tuple[Tuple[str, ...], float]] = []
            for row in table.rows:
                for key in table.key_combinations(row, point):
                    placements.append((key, row.measure))
                    # Identity tracking: the safe algorithm keeps fact ids
                    # alongside to guard against double counting.
                    context.cost.charge_cpu(2)
            placements = sorted_with_cost(
                placements,
                context.cost,
                budget=context.budget,
                key=lambda placement: placement[0],
            )
            cuboid: Cuboid = {}
            current_key: Optional[Tuple[str, ...]] = None
            state = fn.new()
            for key, measure in placements:
                if key != current_key:
                    if current_key is not None:
                        cuboid[current_key] = fn.finalize(state)
                    current_key = key
                    state = fn.new()
                state = fn.add(state, measure)
                context.cost.charge_cpu()
            if current_key is not None:
                cuboid[current_key] = fn.finalize(state)
            cuboids[point] = cuboid
        return cuboids, 1


class TdOptAlgorithm(CubeAlgorithm):
    """TDOPT: roll-up with null groups; needs disjointness."""

    name = "TDOPT"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        wanted = set(points)
        computed: Dict[LatticePoint, AugCuboid] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}

        for point in lattice.topo_finer_first():
            kept = lattice.kept_axes(point)
            if len(kept) == lattice.axis_count:
                aug = self._from_base(context, point)
            else:
                source = _pick_source(lattice, computed, point)
                assert source is not None, "all-kept points precede drops"
                aug = _rollup(context, lattice, computed[source], source, point, fn)
            computed[point] = aug
            if point in wanted:
                cuboids[point] = strip_null_groups(
                    {key: fn.finalize(state) for key, state in aug.items()}
                )
                context.cost.charge_cpu(len(aug))
        return {point: cuboids[point] for point in points}, 1

    def _from_base(
        self, context: ExecutionContext, point: LatticePoint
    ) -> AugCuboid:
        table = context.table
        fn = table.aggregate.fn
        context.charge_base_scan()
        placements: List[Tuple[AugKey, float]] = []
        for row in table.rows:
            for key in augmented_keys(table, row, point):
                placements.append((key, row.measure))
                context.cost.charge_cpu()
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: _sortable(placement[0]),
        )
        aug: AugCuboid = {}
        for key, measure in placements:
            if key not in aug:
                aug[key] = fn.new()
            aug[key] = fn.add(aug[key], measure)
            context.cost.charge_cpu()
        return aug


class TdOptAllAlgorithm(CubeAlgorithm):
    """TDOPTALL: pure roll-up; needs disjointness *and* coverage."""

    name = "TDOPTALL"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        computed: Dict[LatticePoint, AugCuboid] = {}
        top = lattice.top

        # One base pass for the all-rigid top cuboid (no null groups:
        # total coverage is assumed, facts lacking an axis are dropped —
        # the source of TDOPTALL's undercounting when coverage fails).
        context.charge_base_scan()
        placements: List[Tuple[Tuple[str, ...], float]] = []
        for row in table.rows:
            for key in table.key_combinations(row, top):
                placements.append((key, row.measure))
                context.cost.charge_cpu()
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: placement[0],
        )
        top_aug: AugCuboid = {}
        for key, measure in placements:
            if key not in top_aug:
                top_aug[key] = fn.new()
            top_aug[key] = fn.add(top_aug[key], measure)
            context.cost.charge_cpu()
        computed[top] = top_aug

        for point in lattice.topo_finer_first():
            if point in computed:
                continue
            rigid_twin = _rigid_twin(lattice, point)
            if rigid_twin != point:
                # Full summarizability assumed: a structurally relaxed
                # point is taken to equal its rigid twin.
                source_cuboid = computed[rigid_twin]
                computed[point] = dict(source_cuboid)
                context.cost.charge_cpu(len(source_cuboid))
                continue
            source = _pick_source(lattice, computed, point)
            assert source is not None
            computed[point] = _rollup(
                context, lattice, computed[source], source, point, fn
            )

        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            aug = computed[point]
            cuboids[point] = {
                key: fn.finalize(state) for key, state in aug.items()
            }
            context.cost.charge_cpu(len(aug))
        return cuboids, 1


class TdCustAlgorithm(CubeAlgorithm):
    """TDCUST: roll-up only where the oracle proves it safe.  Correct."""

    name = "TDCUST"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        oracle = context.oracle
        computed: Dict[LatticePoint, AugCuboid] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}
        wanted = set(points)

        for point in lattice.topo_finer_first():
            source = _pick_source(
                lattice,
                {
                    candidate: aug
                    for candidate, aug in computed.items()
                    if oracle.disjoint(candidate)
                },
                point,
            )
            if source is not None:
                aug = _rollup(
                    context, lattice, computed[source], source, point, fn
                )
            else:
                aug = self._safe_from_base(context, point)
            computed[point] = aug
            if point in wanted:
                cuboids[point] = strip_null_groups(
                    {key: fn.finalize(state) for key, state in aug.items()}
                )
                context.cost.charge_cpu(len(aug))
        return {point: cuboids[point] for point in points}, 1

    def _safe_from_base(
        self, context: ExecutionContext, point: LatticePoint
    ) -> AugCuboid:
        table = context.table
        fn = table.aggregate.fn
        context.charge_base_scan()
        placements: List[Tuple[AugKey, float]] = []
        for row in table.rows:
            for key in augmented_keys(table, row, point):
                placements.append((key, row.measure))
                # Safe path keeps identities, like TD.
                context.cost.charge_cpu(2)
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: _sortable(placement[0]),
        )
        aug: AugCuboid = {}
        for key, measure in placements:
            if key not in aug:
                aug[key] = fn.new()
            aug[key] = fn.add(aug[key], measure)
            context.cost.charge_cpu()
        return aug


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

def _sortable(key: AugKey) -> Tuple[Tuple[int, str], ...]:
    """Total order over keys containing None."""
    return tuple((0, "") if part is None else (1, part) for part in key)


def _rigid_twin(lattice, point: LatticePoint) -> LatticePoint:
    """The point with every kept axis forced to the rigid state."""
    twin = []
    for states, index in zip(lattice.axis_states, point):
        if states.is_dropped(index):
            twin.append(index)
        else:
            twin.append(states.rigid_index)
    return tuple(twin)


def _pick_source(
    lattice,
    computed: Dict[LatticePoint, AugCuboid],
    point: LatticePoint,
) -> Optional[LatticePoint]:
    """The smallest computed finer cuboid that derives ``point`` by
    dropping axes (kept axes must agree exactly on their states)."""
    best: Optional[LatticePoint] = None
    best_size = -1
    for candidate, aug in computed.items():
        if candidate == point:
            continue
        ok = True
        for position, states in enumerate(lattice.axis_states):
            if point[position] == states.dropped_index:
                continue
            if candidate[position] != point[position]:
                ok = False
                break
        if not ok:
            continue
        # The candidate must actually be finer: every axis dropped in the
        # candidate must be dropped in the point too.
        for position, states in enumerate(lattice.axis_states):
            if candidate[position] == states.dropped_index and point[
                position
            ] != states.dropped_index:
                ok = False
                break
        if ok and (best is None or len(aug) < best_size):
            best = candidate
            best_size = len(aug)
    return best


def _rollup(
    context: ExecutionContext,
    lattice,
    source_aug: AugCuboid,
    source: LatticePoint,
    point: LatticePoint,
    fn,
) -> AugCuboid:
    """Merge a finer cuboid's aggregate rows into a coarser cuboid."""
    context.bump("td_rollups")
    src_kept = lattice.kept_axes(source)
    dst_kept = set(lattice.kept_axes(point))
    keep_positions = [
        index for index, axis in enumerate(src_kept) if axis in dst_kept
    ]
    rows = list(source_aug.items())
    rows = sorted_with_cost(
        rows,
        context.cost,
        budget=context.budget,
        key=lambda item: _sortable(item[0]),
    )
    out: AugCuboid = {}
    for key, state in rows:
        new_key = tuple(key[index] for index in keep_positions)
        if new_key in out:
            out[new_key] = fn.merge(out[new_key], state)
        else:
            out[new_key] = state
        context.cost.charge_cpu()
    return out
