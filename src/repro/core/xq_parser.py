"""Parser for the paper's augmented FLWOR syntax (Query 1).

Accepted shape::

    for $b in doc("book.xml")//publication,
        $n in $b/author/name,
        $p in $b//publisher/@id,
        $y in $b/year
    X^3 $b/@id by $n (LND, SP, PC-AD),
        $p (LND, PC-AD),
        $y (LND)
    return COUNT($b).

``X^3`` may also be written ``X3``, ``X~3`` or ``X"3`` (OCR variants
of the operator glyph).  The fact variable is whichever variable the
``doc()`` binding introduces; every axis path must be relative to it.

.. deprecated::
    This module is a thin compatibility front end over the
    :mod:`repro.lang` tokenizer/parser/compiler (the original DOTALL
    regex silently misparsed nested parentheses and raised
    position-free errors).  New code should call
    :func:`repro.lang.parser.parse_statement` and
    :func:`repro.lang.compiler.compile_x3` directly — they expose the
    typed AST and source positions this shim discards.
"""

from __future__ import annotations

from repro.core.query import X3Query
from repro.errors import QueryParseError
from repro.lang.ast import X3Statement
from repro.lang.compiler import compile_x3
from repro.lang.parser import parse_statement


def parse_x3_query(text: str) -> X3Query:
    """Parse an augmented FLWOR text into an :class:`X3Query`.

    Raises :class:`~repro.errors.QueryParseError` (with the source
    position where the new parser can pin one) on any malformed input.
    """
    statement = parse_statement(text)
    if not isinstance(statement, X3Statement):
        raise QueryParseError(
            "query must have the shape: for ... X^3 <measure> by ... "
            "return AGG(...)"
        )
    return compile_x3(statement)
