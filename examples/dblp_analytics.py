#!/usr/bin/env python3
"""DBLP analytics: schema-driven customized cubing (paper Sec. 4.5).

Generates a DBLP-shaped warehouse, derives the summarizability
properties from the DBLP DTD (Sec. 3.7), and compares the whole
algorithm line-up the way Fig. 10 does — including which optimized
variants silently produce wrong answers and how the customized
algorithms (BUCCUST / TDCUST) get speed *and* correctness.

Run:  python examples/dblp_analytics.py
"""

from repro.core.cube import compute_cube
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.dblp import DblpConfig, dblp_dtd, dblp_query, generate_dblp


def main() -> None:
    doc = generate_dblp(DblpConfig(n_articles=800, seed=3))
    query = dblp_query()
    print("query:")
    print(query.to_flwor())

    table = extract_fact_table(doc, query)
    lattice = table.lattice
    print(f"\n{len(table)} articles, {lattice.size()} cuboids")

    # Sec. 3.7: the DTD tells us where the properties hold.
    dtd = dblp_dtd()
    oracle = PropertyOracle.from_schema(lattice, dtd, "article")
    print("\nschema-derived per-axis properties:")
    for position, states in enumerate(lattice.axis_states):
        axis = states.axis
        print(
            f"  {axis.name} ({axis.path_text():8s}): "
            f"disjoint={oracle.axis_disjoint(position, states.rigid_index)} "
            f"covered={oracle.axis_covered(position, states.rigid_index)}"
        )
    print("  (author repeats and may be missing; month may be missing;")
    print("   year and journal are mandatory and unique - as the DTD says)")

    reference = compute_cube(table, "NAIVE")
    print(f"\n{'algorithm':<10} {'sim-s':>8}  correct")
    for name in (
        "COUNTER", "BUC", "BUCOPT", "BUCCUST",
        "TD", "TDOPT", "TDOPTALL", "TDCUST",
    ):
        result = compute_cube(
            table, name, oracle=oracle, memory_entries=30_000
        )
        ok = result.same_contents(reference)
        print(f"{name:<10} {result.simulated_seconds:>8.3f}  {ok}")

    # A concrete analytic answer: articles per (year, journal).
    point = lattice.point_by_description(
        "$a:LND, $m:LND, $y:rigid, $j:rigid"
    )
    cuboid = reference.cuboids[point]
    top = sorted(cuboid.items(), key=lambda item: -item[1])[:5]
    print("\nbusiest (year, journal) cells:")
    for key, count in top:
        print(f"  {key}: {int(count)} articles")


if __name__ == "__main__":
    main()
