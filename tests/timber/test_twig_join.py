"""Tests for the holistic twig join, cross-validated against the
navigational matcher."""

import random

import pytest

from repro.errors import PatternError
from repro.patterns.match import match_db
from repro.patterns.parse import parse_pattern
from repro.timber.database import TimberDB
from repro.timber.twig_join import path_stack, twig_join


def db_of(*docs):
    db = TimberDB()
    for doc in docs:
        db.load(doc)
    db.build_index()
    return db


def twig_keys(db, pattern_text):
    pattern = parse_pattern(pattern_text)
    return sorted(
        tuple((p.doc_id, p.node_id) for p in match)
        for match in twig_join(db, pattern)
    )


def reference_keys(db, pattern_text):
    pattern = parse_pattern(pattern_text)
    out = []
    for witness in match_db(db, pattern):
        out.append(
            tuple(
                (record.doc_id, record.node_id)
                for record in witness.bindings
            )
        )
    return sorted(set(out))


EQUIV_CASES = [
    (["<a><b><c/></b></a>"], "//a/b/c"),
    (["<a><b><c/></b><c/></a>"], "//a[/b][/c]"),
    (["<a><x><b/></x><b/></a>"], "//a//b"),
    (["<a><a><b/></a></a>"], "//a//b"),
    (["<a><a><b/></a></a>"], "//a//a"),
    (["<a><b/><b/><c/><c/></a>"], "//a[/b][/c]"),
    (["<r><a><b><d/></b><c/></a></r>"], "//a[/b/d][//c]"),
    (["<a><b/></a>", "<x><a><c><b/></c></a></x>"], "//a//b"),
    (["<a/>"], "//a//b"),
    (["<a><b><a><b/></a></b></a>"], "//a/b"),
]


class TestEquivalence:
    @pytest.mark.parametrize("docs,pattern", EQUIV_CASES)
    def test_matches_navigational_matcher(self, docs, pattern):
        db = db_of(*docs)
        assert twig_keys(db, pattern) == reference_keys(db, pattern)

    def test_child_root_axis(self):
        db = db_of("<a><a><b/></a></a>")
        assert len(twig_keys(db, "a//b")) == 1
        assert len(twig_keys(db, "//a//b")) == 2

    def test_randomized_trees(self):
        rng = random.Random(99)

        def random_tree(depth=0):
            tag = rng.choice("abc")
            if depth > 3 or rng.random() < 0.4:
                return f"<{tag}/>"
            inner = "".join(
                random_tree(depth + 1) for _ in range(rng.randrange(1, 4))
            )
            return f"<{tag}>{inner}</{tag}>"

        docs = [f"<r>{random_tree()}{random_tree()}</r>" for _ in range(4)]
        db = db_of(*docs)
        for pattern in [
            "//a//b", "//a/b", "//r[/a][//b]", "//a[//b][//c]",
            "//a//b//c", "//r/a/b",
        ]:
            assert twig_keys(db, pattern) == reference_keys(db, pattern), (
                pattern
            )


class TestPathStack:
    def test_single_node_spine(self):
        db = db_of("<a><a/></a>")
        pattern = parse_pattern("//a")
        paths = path_stack(db, pattern.nodes())
        assert len(paths) == 2

    def test_chain_counts(self):
        db = db_of("<a><b/><x><b/></x></a>")
        pattern = parse_pattern("//a//b")
        assert len(path_stack(db, pattern.nodes())) == 2

    def test_charges_cost(self):
        db = db_of("<a><b/></a>")
        db.reset_cost()
        pattern = parse_pattern("//a//b")
        path_stack(db, pattern.nodes())
        assert db.cost.cpu_ops > 0


class TestRestrictions:
    def test_attribute_nodes_rejected(self):
        db = db_of("<a x='1'/>")
        with pytest.raises(PatternError):
            twig_join(db, parse_pattern("//a[/@x]"))

    def test_optional_nodes_rejected(self):
        db = db_of("<a><b/></a>")
        with pytest.raises(PatternError):
            twig_join(db, parse_pattern("//a/b?"))
