#!/usr/bin/env python3
"""Explore a query's relaxed-cube lattice (the paper's Fig. 3, live).

Prints the level census of Query 1's 30-point lattice, the one-step
relaxations out of the rigid pattern, the schema-proved coincidences a
DTD collapses, and writes a GraphViz rendering of the whole lattice.

Run:  python examples/lattice_explorer.py
"""

from repro.core.lattice_graph import edge_label, level_census, to_dot
from repro.core.prune import prune_lattice
from repro.datagen.publications import figure1_document, query1
from repro.schema.inference import infer_dtd


def main() -> None:
    query = query1()
    lattice = query.lattice()
    print(f"Query 1 lattice: {lattice.size()} cuboids over "
          f"{lattice.axis_count} axes")
    print(f"  top    = {lattice.describe(lattice.top)}")
    print(f"  bottom = {lattice.describe(lattice.bottom)}")

    print("\nlevel census (relaxation steps -> cuboids):")
    for steps, count in level_census(lattice):
        print(f"  {steps:>2}: {'#' * count}  ({count})")

    print("\none-step relaxations of the rigid pattern (Fig. 3 (b)-(g)):")
    for successor in lattice.successors(lattice.top):
        label = edge_label(lattice, lattice.top, successor)
        print(f"  --{label:<12}-> {lattice.describe(successor)}")

    # Schema-driven coincidences: infer a DTD from Figure 1 itself.
    dtd = infer_dtd([figure1_document()])
    mapping = prune_lattice(lattice, dtd, "publication")
    collapsed = {
        point: canonical
        for point, canonical in mapping.items()
        if point != canonical
    }
    print(f"\nschema-proved coincident points: {len(collapsed)}")
    for point, canonical in sorted(collapsed.items())[:5]:
        print(f"  {lattice.describe(point)}")
        print(f"    == {lattice.describe(canonical)}")

    dot = to_dot(lattice)
    path = "/tmp/x3_lattice.dot"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    print(f"\nwrote GraphViz source to {path} "
          f"({dot.count('->')} edges); render with:")
    print(f"  dot -Tpdf {path} -o lattice.pdf")


if __name__ == "__main__":
    main()
