"""Shared benchmark fixtures.

Each figure's workload is extracted once per session (the paper's
protocol: pattern evaluation is materialized up front and excluded from
the cubing measurement).  Benchmarks then time ``compute_cube`` runs via
pytest-benchmark (wall clock) while the simulated-seconds cost series —
the reproducible signal — is validated by shape assertions.

The workload machinery lives in :mod:`repro.testing`; this conftest
binds the figure settings as session fixtures and marks every collected
benchmark ``bench`` + ``slow``.
"""

from __future__ import annotations

import pytest

from repro.datagen.workload import WorkloadConfig
from repro.testing import (  # noqa: F401  (re-exported for the bench files)
    BENCH_AXES,
    BENCH_MEMORY,
    PreparedWorkload,
    bench_once,
    treebank_workload as _treebank,
)


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def sparse_nocov_disj():
    """Figs. 4/5 setting (scaled down)."""
    return _treebank("sparse", coverage=False, disjoint=True)


@pytest.fixture(scope="session")
def sparse_nocov_disj_small():
    """Fig. 4's smaller population for the scaling comparison."""
    return _treebank("sparse", coverage=False, disjoint=True, n_facts=100)


@pytest.fixture(scope="session")
def dense_nocov_disj():
    """Fig. 6 setting."""
    return _treebank("dense", coverage=False, disjoint=True)


@pytest.fixture(scope="session")
def sparse_cov_disj():
    """Fig. 7 setting.

    600 facts so the sparse cube exceeds the counter budget — at the
    paper's 10^5 scale the sparse cube never fits memory either.
    """
    return _treebank("sparse", coverage=True, disjoint=True, n_facts=600)


@pytest.fixture(scope="session")
def dense_cov_disj():
    """Fig. 8 setting."""
    return _treebank("dense", coverage=True, disjoint=True)


@pytest.fixture(scope="session")
def dense_nocov_nodisj():
    """Fig. 9 setting."""
    return _treebank("dense", coverage=False, disjoint=False)


@pytest.fixture(scope="session")
def dblp():
    """Fig. 10 setting (DBLP, 4 axes, schema oracle)."""
    return PreparedWorkload(
        WorkloadConfig(kind="dblp", n_facts=1200, n_axes=4),
        memory_entries=30_000,
    )
