"""Cluster benchmark: modeled throughput and p95 latency vs shard count.

Replays the standard skewed request mix against
:class:`repro.cluster.ClusterCoordinator` at 1 / 2 / 4 / 8 shards with
cold replicas (zero cache budget, so every shard read recomputes its
slice — the regime where scatter-gather genuinely buys latency), and
writes the curves to ``BENCH_cluster.json`` at the repository root via
the unified artifact helper.

The acceptance signal is modeled, not wall clock: fan-out must pay off
— modeled throughput strictly increases from 1 to 4 shards and p95
latency strictly decreases, because each shard's recompute walks a
fact slice that shrinks with the shard count while the gather adds only
one merge op per output cell.
"""

import json

import pytest

from repro.bench.runner import bench_artifact_path, write_bench_artifact
from repro.cluster import ClusterCoordinator
from repro.core.query import Query
from repro.serve.cli import sample_points

from benchmarks.test_bench_serve import REPO_ROOT

OUT_PATH = bench_artifact_path("cluster", REPO_ROOT)

REQUESTS = 60
SEED = 13
SHARD_COUNTS = (1, 2, 4, 8)
REPLICAS = 2


def percentile(values, fraction):
    ordered = sorted(values)
    rank = min(
        len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1))))
    )
    return ordered[rank]


@pytest.fixture(scope="module")
def cluster_curves(dense_cov_disj):
    table = dense_cov_disj.table
    oracle = dense_cov_disj.oracle
    replay = sample_points(table.lattice, REQUESTS, SEED)
    curves = []
    for n_shards in SHARD_COUNTS:
        with ClusterCoordinator(
            table,
            n_shards,
            REPLICAS,
            oracle=oracle,
            cache_cells=0,
            hedge_deadline_seconds=None,
        ) as cluster:
            for point in replay:
                cluster.query(Query(point=point))
            latencies = cluster.modeled_latencies()
            stats = cluster.stats()
        total = sum(latencies)
        curves.append(
            {
                "shards": n_shards,
                "replicas": REPLICAS,
                "requests": stats.requests,
                "rows_per_shard": list(stats.per_shard_rows),
                "modeled_total_seconds": total,
                "throughput_rps": stats.requests / total,
                "p50_modeled_seconds": percentile(latencies, 0.50),
                "p95_modeled_seconds": percentile(latencies, 0.95),
                "merged_cells": stats.merged_cells,
            }
        )
    payload = {
        "workload": {
            "kind": dense_cov_disj.config.kind,
            "n_facts": dense_cov_disj.config.n_facts,
            "n_axes": dense_cov_disj.config.n_axes,
            "density": dense_cov_disj.config.density,
        },
        "requests": REQUESTS,
        "seed": SEED,
        "curves": curves,
    }
    write_bench_artifact("cluster", payload, REPO_ROOT)
    return curves


def test_writes_bench_cluster_json(cluster_curves):
    assert OUT_PATH.exists()
    document = json.loads(OUT_PATH.read_text())
    assert document["artifact"] == "cluster"
    assert len(document["curves"]) == len(SHARD_COUNTS)


def test_throughput_monotonic_one_to_four_shards(cluster_curves):
    by_shards = {curve["shards"]: curve for curve in cluster_curves}
    assert (
        by_shards[1]["throughput_rps"]
        < by_shards[2]["throughput_rps"]
        < by_shards[4]["throughput_rps"]
    ), [curve["throughput_rps"] for curve in cluster_curves]


def test_p95_latency_shrinks_with_shards(cluster_curves):
    by_shards = {curve["shards"]: curve for curve in cluster_curves}
    assert (
        by_shards[4]["p95_modeled_seconds"]
        < by_shards[2]["p95_modeled_seconds"]
        < by_shards[1]["p95_modeled_seconds"]
    )


def test_sharding_covers_all_rows(cluster_curves):
    expected = None
    for curve in cluster_curves:
        total_rows = sum(curve["rows_per_shard"])
        expected = total_rows if expected is None else expected
        assert total_rows == expected
        assert len(curve["rows_per_shard"]) == curve["shards"]


def test_merge_output_independent_of_sharding(cluster_curves):
    merged = {curve["merged_cells"] for curve in cluster_curves}
    assert len(merged) == 1
