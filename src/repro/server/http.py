"""The HTTP/JSON front door: stdlib transport over the CubeBackend API.

Layering, outermost first:

- :class:`X3HttpServer` — a ``ThreadingHTTPServer`` wrapper (one thread
  per connection, stdlib only) that owns a socket and delegates every
  request to the API core;
- :class:`X3Api` — the transport-independent core: route parsing, JSON
  decoding, auth, admission, error mapping.  ``handle()`` takes
  ``(method, path, body, headers)`` and returns an
  :class:`ApiResponse`, so tests (and the perf gate) drive the complete
  request path without sockets;
- :class:`~repro.core.query.CubeBackend` — the only thing the API calls
  into.  A single :class:`~repro.serve.CubeServer` and a
  :class:`~repro.cluster.ClusterCoordinator` are interchangeable here.

Error taxonomy mapping (the 1:1 contract the errors module documents):
:class:`InvalidQuery` -> 400, unauthenticated -> 401,
:class:`UnknownCube` -> 404, :class:`StaleVersion` -> 409,
:class:`Overloaded` -> 429 (with ``Retry-After``).

Admission control is a bounded concurrent-request budget
(:class:`AdmissionController`): the transport layer admits a request
before doing any work and releases on completion; when the budget is
exhausted the request is refused immediately with 429 rather than
queued without bound — load-shedding at the door, which is what keeps
tail latency bounded under overload.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.query import Query
from repro.errors import (
    InvalidQuery,
    Overloaded,
    QueryParseError,
    StaleVersion,
    UnknownCube,
    X3Error,
)
from repro.obs.live import SERVE_LATENCY_BUCKETS
from repro.obs.metrics import MetricsRegistry
from repro.obs.propagate import TRACEPARENT_HEADER
from repro.obs.trace_store import TraceStore
from repro.server.model import BoundCube, CubeCatalog

API_PREFIX = "/api/v1"

#: Route operation -> the Query kind it forces.
QUERY_OPS = {
    "aggregate": "aggregate",
    "drilldown": "drilldown",
    "cell": "cell",
    "slice": "slice",
    "dice": "dice",
}


class _Unauthorized(X3Error):
    """Missing or unknown bearer token (HTTP 401; internal)."""


@dataclass(frozen=True)
class ApiResponse:
    """One HTTP response, transport-agnostic."""

    status: int
    body: str
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def json(
        cls,
        status: int,
        payload: Mapping[str, Any],
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "ApiResponse":
        return cls(
            status=status,
            body=json.dumps(payload, indent=1) + "\n",
            headers=headers,
        )

    @classmethod
    def error(
        cls,
        status: int,
        kind: str,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "ApiResponse":
        return cls.json(
            status,
            {"error": {"kind": kind, "message": message}},
            headers=headers,
        )


class AdmissionController:
    """A bounded concurrent-request budget (the backpressure valve).

    ``admit()`` either grants a slot for the duration of the request or
    raises :class:`Overloaded` immediately — no unbounded queueing, so
    an overloaded server sheds load with 429 + ``Retry-After`` instead
    of stacking latency.
    """

    def __init__(
        self,
        max_inflight: int = 64,
        *,
        retry_after_seconds: float = 0.05,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._rejected = 0
        self._peak = 0

    @contextmanager
    def admit(self) -> Iterator[None]:
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._rejected += 1
                raise Overloaded(
                    f"admission queue full "
                    f"({self._inflight}/{self.max_inflight} in flight)",
                    retry_after_seconds=self.retry_after_seconds,
                )
            self._inflight += 1
            self._admitted += 1
            self._peak = max(self._peak, self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "peak_inflight": self._peak,
                "max_inflight": self.max_inflight,
            }


class TenantAuth:
    """Per-tenant bearer-token auth stub.

    With no tokens registered, auth is open and every request runs as
    the ``anonymous`` tenant (the single-user dev default).  With
    tokens, a request must carry ``Authorization: Bearer <token>`` for
    a known token; the resolved tenant labels the per-tenant request
    counters.
    """

    def __init__(self, tokens: Optional[Mapping[str, str]] = None) -> None:
        self._tokens = dict(tokens or {})

    @property
    def open(self) -> bool:
        return not self._tokens

    def authenticate(self, headers: Mapping[str, str]) -> str:
        if self.open:
            return "anonymous"
        header = ""
        for name, value in headers.items():
            if name.lower() == "authorization":
                header = value
                break
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            raise _Unauthorized(
                "missing bearer token (Authorization: Bearer <token>)"
            )
        tenant = self._tokens.get(token.strip())
        if tenant is None:
            raise _Unauthorized("unknown bearer token")
        return tenant


class X3Api:
    """The transport-independent HTTP API core.

    Args:
        catalog: the named-cube registry to serve.
        auth: tenant auth (default: open / anonymous).
        admission: the admission budget (default: 64 in flight).
        registry: front-door metrics registry; a private one is created
            when omitted.  ``/metrics`` concatenates this registry's
            exposition with each distinct backend's own (via
            ``prometheus()`` where the backend offers it).
        trace_store: optional distributed-tracing store.  When set,
            every request parses (or mints) a W3C ``traceparent``,
            binds the request root span around routing so backend spans
            nest under it, echoes the context in a ``traceparent``
            response header, and the store is served at
            ``GET /api/v1/traces[/{id}]``.
    """

    def __init__(
        self,
        catalog: CubeCatalog,
        *,
        auth: Optional[TenantAuth] = None,
        admission: Optional[AdmissionController] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_store: Optional[TraceStore] = None,
    ) -> None:
        self.catalog = catalog
        self.auth = auth if auth is not None else TenantAuth()
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.trace_store = trace_store

    # ------------------------------------------------------------------
    # the single entry point
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> ApiResponse:
        """Serve one request; never raises (errors become responses).

        With a trace store attached, the request runs under a root span
        whose context comes from the incoming ``traceparent`` header
        when one parses (the upstream's sampling verdict is honored) or
        is freshly minted otherwise; the response always echoes the
        context back in a ``traceparent`` header.
        """
        headers = headers or {}
        store = self.trace_store
        if store is None:
            return self._handle(method, path, body, headers)
        traceparent = next(
            (
                value
                for name, value in headers.items()
                if name.lower() == TRACEPARENT_HEADER
            ),
            None,
        )
        with store.root(
            "http.request",
            category="http",
            traceparent=traceparent,
            method=method,
            path=path.split("?", 1)[0],
        ) as root:
            response = self._handle(method, path, body, headers)
            if root.enabled:
                root.annotate(status=response.status)
                if response.status >= 500:
                    root.set_status("error")
            return replace(
                response,
                headers=response.headers
                + ((TRACEPARENT_HEADER, root.traceparent),),
            )

    def _handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> ApiResponse:
        route = "unroutable"
        try:
            tenant = self.auth.authenticate(headers)
            route, response = self._route(method, path, body, tenant)
        except _Unauthorized as error:
            response = ApiResponse.error(401, "unauthorized", str(error))
        except Overloaded as error:
            response = ApiResponse.error(
                429,
                "overloaded",
                str(error),
                headers=(
                    (
                        "Retry-After",
                        f"{error.retry_after_seconds:.3f}",
                    ),
                ),
            )
        except QueryParseError as error:
            # X^3QL syntax errors: still a caller mistake (400), but a
            # distinct kind carrying the source position for editors.
            response = ApiResponse.json(
                400,
                {
                    "error": {
                        "kind": "parse_error",
                        "message": str(error),
                        "line": error.line,
                        "column": error.column,
                    }
                },
            )
        except InvalidQuery as error:
            response = ApiResponse.error(400, "invalid_query", str(error))
        except UnknownCube as error:
            response = ApiResponse.error(404, "unknown_cube", str(error))
        except StaleVersion as error:
            response = ApiResponse.error(409, "stale_version", str(error))
        except X3Error as error:
            response = ApiResponse.error(500, "internal", str(error))
        self.registry.counter(
            "x3_http_requests_total",
            route=route,
            status=str(response.status),
        ).inc()
        return response

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        tenant: str,
    ) -> Tuple[str, ApiResponse]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            if method != "GET":
                return "metrics", self._method_not_allowed(method)
            return "metrics", self._metrics()
        if path == API_PREFIX + "/healthz":
            if method != "GET":
                return "healthz", self._method_not_allowed(method)
            return "healthz", self._healthz()
        if path == API_PREFIX + "/traces":
            if method != "GET":
                return "traces", self._method_not_allowed(method)
            return "traces", self._traces(None)
        if path.startswith(API_PREFIX + "/traces/"):
            if method != "GET":
                return "trace", self._method_not_allowed(method)
            trace_id = path[len(API_PREFIX + "/traces/"):]
            return "trace", self._traces(trace_id)
        if path == API_PREFIX + "/query":
            if method != "POST":
                return "query", self._method_not_allowed(method)
            with self.admission.admit():
                return "query", self._lang_query(body, tenant)
        if path == API_PREFIX + "/cubes":
            if method != "GET":
                return "cubes", self._method_not_allowed(method)
            return "cubes", ApiResponse.json(
                200, {"cubes": self.catalog.describe()}
            )
        if path.startswith(API_PREFIX + "/cubes/"):
            rest = path[len(API_PREFIX + "/cubes/"):]
            parts = rest.split("/")
            if len(parts) == 1:
                if method != "GET":
                    return "cube", self._method_not_allowed(method)
                bound = self.catalog.get(parts[0])
                return "cube", ApiResponse.json(200, bound.describe())
            if len(parts) == 2:
                name, op = parts
                if op in QUERY_OPS or op == "explain":
                    if method != "POST":
                        return op, self._method_not_allowed(method)
                    with self.admission.admit():
                        return op, self._query(name, op, body, tenant)
        return "unroutable", ApiResponse.error(
            404, "not_found", f"no route for {method} {path}"
        )

    @staticmethod
    def _method_not_allowed(method: str) -> ApiResponse:
        return ApiResponse.error(
            405, "method_not_allowed", f"method {method} not allowed"
        )

    # ------------------------------------------------------------------
    # the five query endpoints + explain
    # ------------------------------------------------------------------
    def _query(
        self, name: str, op: str, body: Optional[bytes], tenant: str
    ) -> ApiResponse:
        bound = self.catalog.get(name)
        payload = self._decode(body)
        query = self._build_query(bound, op, payload)
        if op == "explain":
            explanation = bound.backend.explain_query(query)
            return ApiResponse.json(200, explanation.to_dict())
        result = bound.backend.query(query)
        self.registry.counter(
            "x3_http_tenant_requests_total", tenant=tenant, cube=name
        ).inc()
        self.registry.histogram(
            "x3_http_query_modeled_seconds",
            buckets=SERVE_LATENCY_BUCKETS,
            kind=result.kind,
        ).observe(result.modeled_seconds)
        return ApiResponse.json(200, result.to_dict())

    @staticmethod
    def _decode(body: Optional[bytes]) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise InvalidQuery(f"request body is not JSON: {error}")
        if not isinstance(decoded, dict):
            raise InvalidQuery(
                f"request body must be a JSON object, got "
                f"{type(decoded).__name__}"
            )
        return decoded

    def _build_query(
        self, bound: BoundCube, op: str, payload: Dict[str, Any]
    ) -> Query:
        """The wire body to a :class:`Query`, resolving the logical
        model: ``group_by`` levels to a lattice point, dimension names
        in ``axis``/``filters`` to physical axes."""
        payload = dict(payload)
        group_by = payload.pop("group_by", None)
        if group_by is not None:
            if "point" in payload:
                raise InvalidQuery(
                    "pass either 'group_by' or 'point', not both"
                )
            if not isinstance(group_by, dict):
                raise InvalidQuery(
                    f"'group_by' must be an object of "
                    f"{{dimension: level}}, got "
                    f"{type(group_by).__name__}"
                )
            payload["point"] = bound.point_for(group_by)
        elif "point" not in payload:
            # No grouping at all: the apex (every dimension at "all").
            payload["point"] = bound.point_for({})
        kind = QUERY_OPS.get(op)
        if kind is not None:
            declared = payload.setdefault("kind", kind)
            if declared != kind:
                raise InvalidQuery(
                    f"body kind {declared!r} contradicts the "
                    f"/{op} endpoint"
                )
        axis = payload.get("axis")
        if isinstance(axis, str):
            payload["axis"] = bound.axis_for(axis)
        filters = payload.get("filters")
        if isinstance(filters, dict):
            payload["filters"] = {
                bound.axis_for(str(dim)): values
                for dim, values in filters.items()
            }
        return Query.from_dict(payload)

    # ------------------------------------------------------------------
    # the X^3QL text endpoint
    # ------------------------------------------------------------------
    def _lang_query(
        self, body: Optional[bytes], tenant: str
    ) -> ApiResponse:
        """``POST /api/v1/query``: one X^3QL statement as raw text (or
        JSON ``{"query": "..."}``), compiled against the catalog and
        answered by the cube's own backend.

        The response is the ordinary :class:`QueryResult` wire form
        plus the resolved ``cube`` and compiled ``query``, with the
        deterministic parse+compile cost folded into
        ``modeled_seconds`` (broken out as ``lang_modeled_seconds``).
        """
        # Imported lazily: repro.lang.compiler resolves names through
        # repro.server.model, so a module-level import would cycle
        # through this package's __init__.
        from repro.lang.compiler import CompiledDefinition, compile_text

        text = self._lang_text(body)
        compiled = compile_text(text, self.catalog)
        if isinstance(compiled, CompiledDefinition):
            # The FLWOR form defines a cube rather than querying one:
            # answer with the definition, not a cuboid.
            spec = compiled.spec
            return ApiResponse.json(
                200,
                {
                    "kind": "definition",
                    "fact_tag": spec.fact_tag,
                    "document": spec.document,
                    "axes": [axis.name for axis in spec.axes],
                    "lattice_points": spec.lattice().size(),
                    "flwor": spec.to_flwor(),
                    "lang_modeled_seconds": compiled.modeled_seconds,
                },
            )
        bound = self.catalog.get(compiled.cube)
        self.registry.counter(
            "x3_http_lang_statements_total",
            verb=compiled.statement.verb,
        ).inc()
        if compiled.explain:
            explanation = bound.backend.explain_query(compiled.query)
            payload = explanation.to_dict()
        else:
            result = bound.backend.query(compiled.query)
            self.registry.counter(
                "x3_http_tenant_requests_total",
                tenant=tenant,
                cube=compiled.cube,
            ).inc()
            self.registry.histogram(
                "x3_http_query_modeled_seconds",
                buckets=SERVE_LATENCY_BUCKETS,
                kind=result.kind,
            ).observe(result.modeled_seconds + compiled.modeled_seconds)
            payload = result.to_dict()
            payload["modeled_seconds"] = (
                result.modeled_seconds + compiled.modeled_seconds
            )
        payload["cube"] = compiled.cube
        payload["query"] = compiled.query.to_dict()
        payload["lang_modeled_seconds"] = compiled.modeled_seconds
        return ApiResponse.json(200, payload)

    @staticmethod
    def _lang_text(body: Optional[bytes]) -> str:
        """The request body to statement text: raw X^3QL, a JSON
        string, or a JSON object with a ``query`` field."""
        if not body:
            raise InvalidQuery(
                "POST /api/v1/query needs a body holding the "
                "statement text"
            )
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise QueryParseError(
                f"request body is not UTF-8: {error}"
            ) from None
        if text.lstrip()[:1] in ('{', '"'):
            try:
                decoded = json.loads(text)
            except json.JSONDecodeError:
                return text  # raw X^3QL, not JSON after all
            if isinstance(decoded, str):
                return decoded
            if isinstance(decoded, dict):
                query = decoded.get("query")
                if isinstance(query, str):
                    return query
                raise InvalidQuery(
                    "JSON body must carry the statement text in a "
                    "'query' string field"
                )
        return text

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def _healthz(self) -> ApiResponse:
        """Per-backend shard/replica health, summarized once per
        distinct backend (two cubes over one backend report it once,
        under the first cube name that uses it)."""
        backends: Dict[str, Any] = {}
        seen: Set[int] = set()
        degraded = False
        for name in self.catalog.names():
            backend = self.catalog.get(name).backend
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            shards = getattr(backend, "shards", None)
            if shards is not None:
                replicas = [
                    [replica.healthy for replica in shard]
                    for shard in shards
                ]
                healthy = sum(sum(shard) for shard in replicas)
                total = sum(len(shard) for shard in replicas)
                lagging = sum(
                    1
                    for shard in shards
                    for replica in shard
                    if replica.healthy and replica.lagging
                )
                shard_down = any(
                    not any(shard) for shard in replicas
                )
                degraded = degraded or healthy < total or lagging > 0
                backends[name] = {
                    "kind": "cluster",
                    "status": (
                        "down"
                        if shard_down
                        else ("ok" if healthy == total and not lagging
                              else "degraded")
                    ),
                    "shards": len(replicas),
                    "replicas_per_shard": (
                        len(replicas[0]) if replicas else 0
                    ),
                    "healthy_replicas": healthy,
                    "total_replicas": total,
                    "lagging_replicas": lagging,
                    "replica_health": replicas,
                    "version": list(backend.version_token()),
                }
            else:
                backends[name] = {
                    "kind": "server",
                    "status": "ok",
                    "version": list(backend.version_token()),
                }
        status = "degraded" if degraded else "ok"
        return ApiResponse.json(
            200, {"status": status, "backends": backends}
        )

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def _traces(self, trace_id: Optional[str]) -> ApiResponse:
        store = self.trace_store
        if store is None:
            return ApiResponse.error(
                404,
                "not_found",
                "tracing is not enabled on this server",
            )
        if trace_id is not None:
            record = store.get(trace_id)
            if record is None:
                return ApiResponse.error(
                    404,
                    "not_found",
                    f"no retained trace {trace_id!r} (it may never "
                    f"have been sampled, or was ring-evicted)",
                )
            return ApiResponse.json(200, record.to_dict())
        exemplars: List[Dict[str, Any]] = []
        seen: Set[int] = set()
        for name in self.catalog.names():
            backend = self.catalog.get(name).backend
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            telemetry = getattr(backend, "telemetry", None)
            if telemetry is None:
                continue
            for exemplar in telemetry.exemplars():
                exemplars.append(
                    {
                        "cube": name,
                        "tier": exemplar.tier,
                        "bucket_le": exemplar.bucket_le,
                        "trace_id": exemplar.trace_id,
                        "modeled_seconds": exemplar.modeled_seconds,
                    }
                )
        summaries = [
            {
                "trace_id": record.trace_id,
                "name": record.name,
                "status": record.status,
                "retained": record.retained,
                "sim_seconds": record.sim_seconds,
                "wall_seconds": record.wall_seconds,
                "spans": len(record.spans),
            }
            for record in store.traces()
        ]
        return ApiResponse.json(
            200,
            {
                "traces": summaries,
                "stats": store.stats(),
                "exemplars": exemplars,
            },
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _metrics(self) -> ApiResponse:
        from repro.obs.export import prometheus_text

        if self.trace_store is not None:
            stats = self.trace_store.stats()
            self.registry.gauge("x3_trace_started_total").set(
                float(stats["started"])
            )
            self.registry.gauge("x3_trace_sampled_total").set(
                float(stats["sampled"])
            )
            self.registry.gauge("x3_trace_retained_total").set(
                float(stats["retained"])
            )
        chunks: List[str] = [prometheus_text(self.registry)]
        seen: Set[int] = set()
        for name in self.catalog.names():
            backend = self.catalog.get(name).backend
            if id(backend) in seen:
                continue
            seen.add(id(backend))
            exporter = getattr(backend, "prometheus", None)
            if callable(exporter):
                chunks.append(exporter())
        return ApiResponse(
            status=200,
            body="".join(chunks),
            content_type="text/plain; version=0.0.4",
        )


# ----------------------------------------------------------------------
# the socket transport
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """One connection; delegates everything to the owning API core."""

    server: "_Server"  # narrowed for mypy
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        response = self.server.api.handle(
            self.command, self.path, body, dict(self.headers.items())
        )
        encoded = response.body.encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch()

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log (metrics cover it)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    api: X3Api


class X3HttpServer:
    """The socket front door: bind, serve in a daemon thread, close.

    Args:
        api: the API core to serve.
        host: bind address (default loopback).
        port: bind port; 0 (the default) picks a free one — read it
            back from :attr:`port`.
    """

    def __init__(
        self, api: X3Api, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.api = api
        self._httpd = _Server((host, port), _Handler)
        self._httpd.api = api
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    def start(self) -> "X3HttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="x3-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "X3HttpServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
