"""Unit tests for navigation axes and simple path evaluation."""

import pytest

from repro.errors import PatternParseError
from repro.xmlmodel.navigation import (
    Step,
    StepAxis,
    axis_nodes,
    common_ancestor,
    evaluate_path_str,
    parse_path,
    path_to_string,
    select,
)
from repro.xmlmodel.parser import parse

DOC = parse(
    """
    <lib>
      <book id="b1"><author><name>Ada</name></author><year>2001</year></book>
      <book id="b2"><meta><author><name>Alan</name></author></meta></book>
      <journal id="j1"><name>VLDBJ</name></journal>
    </lib>
    """
)


class TestParsePath:
    def test_child_steps(self):
        steps = parse_path("a/b/c")
        assert [step.test for step in steps] == ["a", "b", "c"]
        assert all(step.axis is StepAxis.CHILD for step in steps)

    def test_descendant_steps(self):
        steps = parse_path("//a//b")
        assert [step.axis for step in steps] == [
            StepAxis.DESCENDANT, StepAxis.DESCENDANT,
        ]

    def test_attribute_last(self):
        steps = parse_path("a/@id")
        assert steps[-1].is_attribute
        assert steps[-1].attribute_name == "id"

    def test_attribute_not_last_rejected(self):
        with pytest.raises(PatternParseError):
            parse_path("a/@id/b")

    @pytest.mark.parametrize("bad", ["", " a", "a//", "a//@"])
    def test_bad_paths(self, bad):
        with pytest.raises(PatternParseError):
            parse_path(bad)

    def test_round_trip(self):
        for path in ["a/b", "//a/b//c", "book/@id", "a"]:
            assert path_to_string(parse_path(path)) == path


class TestAxisNodes:
    def test_child_axis(self):
        books = list(axis_nodes(DOC.root, Step(StepAxis.CHILD, "book")))
        assert len(books) == 2

    def test_descendant_axis(self):
        names = list(axis_nodes(DOC.root, Step(StepAxis.DESCENDANT, "name")))
        assert len(names) == 3

    def test_wildcard(self):
        children = list(axis_nodes(DOC.root, Step(StepAxis.CHILD, "*")))
        assert len(children) == 3


class TestEvaluatePath:
    def test_simple_chain(self):
        book = DOC.root.children[0]
        names = evaluate_path_str(book, "author/name")
        assert [node.text for node in names] == ["Ada"]

    def test_descendant_recovers_nested(self):
        book2 = DOC.root.children[1]
        assert evaluate_path_str(book2, "author/name") == []
        names = evaluate_path_str(book2, "//author/name")
        assert [node.text for node in names] == ["Alan"]

    def test_attribute_result(self):
        results = evaluate_path_str(DOC.root, "book/@id")
        assert [value for _, value in results] == ["b1", "b2"]

    def test_descendant_attribute_is_proper(self):
        # //@id from a book must not return the book's own attribute.
        book = DOC.root.children[0]
        results = evaluate_path_str(book, "//@id")
        assert results == []

    def test_dedup_across_branches(self):
        doc = parse("<r><a><b><c/></b></a></r>")
        # //b reachable via both r and a frontier nodes must dedup.
        results = evaluate_path_str(doc.root, "//a//c")
        assert len(results) == 1


class TestSelect:
    def test_absolute_root_path(self):
        assert [n.tag for n in select(DOC, "/lib")] == ["lib"]

    def test_absolute_deeper(self):
        names = select(DOC, "/lib/journal/name")
        assert [n.text for n in names] == ["VLDBJ"]

    def test_root_mismatch_empty(self):
        assert select(DOC, "/nope/x") == []

    def test_double_slash_everywhere(self):
        assert len(select(DOC, "//name")) == 3

    def test_double_slash_with_tail(self):
        results = select(DOC, "//author/name")
        assert [n.text for n in results] == ["Ada", "Alan"]


class TestCommonAncestor:
    def test_basic(self):
        ada = select(DOC, "//author/name")[0]
        year = select(DOC, "//year")[0]
        anc = common_ancestor(ada, year)
        assert anc is not None and anc.tag == "book"

    def test_self_is_ancestor_of_descendant(self):
        book = DOC.root.children[0]
        name = select(DOC, "//author/name")[0]
        assert common_ancestor(book, name) is book
