"""Lattice visualization and graph-theoretic views (Fig. 3 as data).

:func:`to_networkx` exposes the relaxed-cube lattice as a DAG (nodes:
lattice points with their descriptions; edges: single relaxation steps
labelled with the relaxation that produced them), which the tests use
to validate lattice laws with an independent library.
:func:`to_dot` emits GraphViz text so Fig. 3 can be redrawn for any
query.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.core.lattice import CubeLattice, LatticePoint


def edge_label(
    lattice: CubeLattice, finer: LatticePoint, coarser: LatticePoint
) -> str:
    """Which axis/relaxation one lattice edge applies."""
    for position, states in enumerate(lattice.axis_states):
        if finer[position] == coarser[position]:
            continue
        axis = states.axis.name
        if coarser[position] == states.dropped_index:
            return f"{axis}:LND"
        before = states.states[finer[position]]
        after = states.states[coarser[position]]
        added = after - before
        names = "+".join(sorted(r.value for r in added))
        return f"{axis}:{names}"
    return ""


def to_networkx(lattice: CubeLattice) -> "nx.DiGraph":
    """The lattice as a directed graph, finer -> coarser."""
    graph = nx.DiGraph()
    for point in lattice.points():
        graph.add_node(
            point,
            label=lattice.describe(point),
            kept=len(lattice.kept_axes(point)),
        )
    for point in lattice.points():
        for successor in lattice.successors(point):
            graph.add_edge(
                point,
                successor,
                relaxation=edge_label(lattice, point, successor),
            )
    return graph


def to_dot(lattice: CubeLattice, name: str = "x3_lattice") -> str:
    """GraphViz source of the lattice (Fig. 3 for any query)."""
    lines = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        '  node [shape=box, fontsize=10];',
    ]
    index: Dict[LatticePoint, str] = {}
    for number, point in enumerate(lattice.topo_finer_first()):
        node_id = f"p{number}"
        index[point] = node_id
        lines.append(
            f'  {node_id} [label="{lattice.describe(point)}"];'
        )
    for point in lattice.points():
        for successor in lattice.successors(point):
            label = edge_label(lattice, point, successor)
            lines.append(
                f'  {index[point]} -> {index[successor]} '
                f'[label="{label}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def partition_cut_edges(
    lattice: CubeLattice,
    partitions: List[List[LatticePoint]],
) -> int:
    """Lattice edges whose endpoints land in different partitions.

    The engine reports this as a partition-quality metric: roll-up reuse
    (TD's sorted-run sharing, BUC's prefix sharing) follows lattice edges,
    so a cut edge is reuse the partitioned run may repeat.
    """
    assignment: Dict[LatticePoint, int] = {}
    for index, points in enumerate(partitions):
        for point in points:
            assignment[point] = index
    cut = 0
    for point, home in assignment.items():
        for successor in lattice.successors(point):
            other = assignment.get(successor)
            if other is not None and other != home:
                cut += 1
    return cut


def level_census(lattice: CubeLattice) -> List[Tuple[int, int]]:
    """(relaxation steps, point count) per lattice level — the row
    widths of Fig. 3's drawing."""
    census: Dict[int, int] = {}
    for point in lattice.points():
        steps = lattice.rank(point)
        census[steps] = census.get(steps, 0) + 1
    return sorted(census.items())
