"""Cuboid materialization under a space budget (paper Sec. 3.6).

"In many cases, we may be better off to materialize some intermediate
cube results.  The incompleteness of coverage directly affects the
computation from these intermediate results."  This module turns that
discussion into an advisor + store:

- :func:`select_views` — greedy benefit-per-space view selection in the
  spirit of Harinarayan/Rajaraman/Ullman, *adapted to the XML lattice*:
  a cuboid can only serve queries it can soundly derive (drop-only
  moves, and only when the property oracle proves it disjoint and
  covering — otherwise serving from it would need the fact items kept
  around, which Sec. 3.6 notes defeats the purpose).
- :class:`MaterializedCube` — holds the chosen cuboids and answers any
  lattice point: directly when materialized, by safe roll-up when
  derivable, or by recomputation from the fact table as the fallback.

Costs are reported through the same deterministic cost model as the
algorithms, so the ablation benchmark can quantify the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.groupby import Cuboid, cuboid_from_rows
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.core.rollup import derivable, rollup
from repro.errors import CubeError
from repro import obs


@dataclass(frozen=True)
class ViewSelection:
    """Outcome of the advisor."""

    chosen: Tuple[LatticePoint, ...]
    space_used: int
    space_budget: int
    # point -> cheapest sound source among the chosen views (or None
    # when the point must be recomputed from base).
    serving: Dict[LatticePoint, Optional[LatticePoint]] = field(
        default_factory=dict
    )

    def coverage_ratio(self) -> float:
        """Fraction of lattice points servable without touching base."""
        served = sum(
            1 for source in self.serving.values() if source is not None
        )
        return served / len(self.serving) if self.serving else 0.0


def cuboid_sizes(
    table: FactTable,
    lattice: CubeLattice,
    points: Optional[Iterable[LatticePoint]] = None,
) -> Dict[LatticePoint, int]:
    """Exact cell counts per cuboid (the advisor's space estimates).

    ``points`` restricts the census to a subset — the serving layer uses
    this to refresh size estimates for just the lattice points a write
    batch touched instead of re-scanning the whole lattice.
    """
    sizes: Dict[LatticePoint, int] = {}
    for point in points if points is not None else lattice.points():
        keys = set()
        for row in table.rows:
            keys.update(table.key_combinations(row, point))
        sizes[point] = len(keys)
    return sizes


def _service_cost(
    sizes: Dict[LatticePoint, int],
    base_cost: int,
    chosen: Set[LatticePoint],
    lattice: CubeLattice,
    oracle: PropertyOracle,
    point: LatticePoint,
) -> int:
    """Cost of answering ``point``: cheapest sound chosen source, else
    a base recomputation."""
    best = base_cost
    for source in chosen:
        ok, _ = derivable(lattice, source, point, oracle)
        if ok:
            best = min(best, sizes[source])
    return best


def select_views(
    table: FactTable,
    oracle: PropertyOracle,
    space_budget: int,
    always_include_top: bool = True,
) -> ViewSelection:
    """Greedy view selection: repeatedly materialize the cuboid with the
    best total-service-cost reduction per cell of space, within budget.
    """
    lattice = table.lattice
    points = list(lattice.points())
    with obs.span(
        "materialize.select_views",
        category="materialize",
        budget=space_budget,
        points=len(points),
    ) as span:
        sizes = cuboid_sizes(table, lattice)
        base_cost = max(1, len(table.rows))
        chosen: Set[LatticePoint] = set()
        space_used = 0

        if always_include_top and sizes[lattice.top] <= space_budget:
            chosen.add(lattice.top)
            space_used += sizes[lattice.top]

        def total_cost() -> int:
            return sum(
                _service_cost(sizes, base_cost, chosen, lattice, oracle, point)
                for point in points
            )

        current = total_cost()
        while True:
            best_gain = 0.0
            best_point: Optional[LatticePoint] = None
            best_cost = current
            for candidate in points:
                if candidate in chosen:
                    continue
                size = sizes[candidate]
                if size == 0 or space_used + size > space_budget:
                    continue
                chosen.add(candidate)
                candidate_cost = total_cost()
                chosen.discard(candidate)
                gain = (current - candidate_cost) / size
                if gain > best_gain:
                    best_gain = gain
                    best_point = candidate
                    best_cost = candidate_cost
            if best_point is None:
                break
            chosen.add(best_point)
            space_used += sizes[best_point]
            current = best_cost

        serving: Dict[LatticePoint, Optional[LatticePoint]] = {}
        for point in points:
            best_source: Optional[LatticePoint] = None
            best_size = base_cost
            for source in chosen:
                ok, _ = derivable(lattice, source, point, oracle)
                if ok and sizes[source] <= best_size:
                    best_source = source
                    best_size = sizes[source]
            serving[point] = best_source
        span.annotate(chosen=len(chosen), space_used=space_used)
    return ViewSelection(
        chosen=tuple(sorted(chosen)),
        space_used=space_used,
        space_budget=space_budget,
        serving=serving,
    )


class MaterializedCube:
    """A partial cube: chosen cuboids materialized, the rest derived.

    Args:
        table: the fact table (fallback recomputation source).
        selection: which cuboids to materialize.
        oracle: property oracle used for sound derivation.
        algorithm: algorithm used to materialize the chosen cuboids.
    """

    def __init__(
        self,
        table: FactTable,
        selection: ViewSelection,
        oracle: PropertyOracle,
        algorithm: str = "BUC",
    ) -> None:
        self.table = table
        self.selection = selection
        self.oracle = oracle
        with obs.span(
            "materialize.compute",
            category="materialize",
            algorithm=algorithm,
            views=len(selection.chosen),
        ):
            self._result: CubeResult = compute_cube(
                table,
                ExecutionOptions(
                    algorithm=algorithm,
                    oracle=oracle,
                    points=tuple(selection.chosen),
                ),
            )
        self.stats = {"direct": 0, "rolled_up": 0, "recomputed": 0}

    # ------------------------------------------------------------------
    def cuboid(self, point: LatticePoint) -> Cuboid:
        """Answer one lattice point, preferring materialized views."""
        if point in self._result.cuboids:
            self.stats["direct"] += 1
            return self._result.cuboids[point]
        source = self.selection.serving.get(point)
        if source is not None and self._result.aggregate in ("COUNT", "SUM"):
            self.stats["rolled_up"] += 1
            return rollup(self._result, source, point, self.oracle)
        self.stats["recomputed"] += 1
        return cuboid_from_rows(
            self.table, self.table.rows, point, self.table.aggregate.fn
        )

    def cell(self, point: LatticePoint, key: Tuple[str, ...]):
        return self.cuboid(point).get(key)

    def materialized_points(self) -> List[LatticePoint]:
        return list(self._result.cuboids)

    def verify_against(self, reference: CubeResult) -> None:
        """Check every lattice point against a full cube (test helper)."""
        for point in self.table.lattice.points():
            mine = self.cuboid(point)
            theirs = reference.cuboids[point]
            if mine != theirs:
                raise CubeError(
                    f"materialized answer differs at "
                    f"{self.table.lattice.describe(point)}"
                )
