"""The relaxed-cube lattice (paper Fig. 3).

A :class:`LatticePoint` is a vector of per-axis state indices; the lattice
is the product of the per-axis posets of :mod:`repro.core.states`.  The
*top* (in the paper's orientation: the finest aggregation) is the
all-rigid point; the *bottom* is all-DROPPED, where every fact falls into
one group.  An edge is a single relaxation step on a single axis: adding
one structural relaxation, or applying LND (dropping the axis).

The paper draws the lattice with the rigid pattern first and the most
relaxed pattern last; ``finer``/``coarser`` here follow that reading:
``p`` is *finer* than ``q`` when ``p``'s states are all below ``q``'s.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.axes import AxisSpec
from repro.core.states import AxisStates

LatticePoint = Tuple[int, ...]


class CubeLattice:
    """The product lattice over the axes' relaxation states."""

    def __init__(self, axes: Sequence[AxisSpec]) -> None:
        if not axes:
            raise ValueError("a cube needs at least one axis")
        self.axes: Tuple[AxisSpec, ...] = tuple(axes)
        self.axis_states: Tuple[AxisStates, ...] = tuple(
            AxisStates.for_axis(axis) for axis in axes
        )

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def axis_count(self) -> int:
        return len(self.axes)

    @property
    def top(self) -> LatticePoint:
        """The finest point: every axis rigid."""
        return tuple(states.rigid_index for states in self.axis_states)

    @property
    def bottom(self) -> LatticePoint:
        """The coarsest point: every axis dropped (one global group)."""
        return tuple(states.dropped_index for states in self.axis_states)

    def size(self) -> int:
        total = 1
        for states in self.axis_states:
            total *= states.state_count
        return total

    def points(self) -> Iterator[LatticePoint]:
        """All lattice points (product enumeration)."""
        ranges = [range(states.state_count) for states in self.axis_states]
        for combo in product(*ranges):
            yield tuple(combo)

    # ------------------------------------------------------------------
    # order and edges
    # ------------------------------------------------------------------
    def leq(self, finer: LatticePoint, coarser: LatticePoint) -> bool:
        """Is ``finer`` less-or-equally relaxed than ``coarser``?"""
        return all(
            states.leq(first, second)
            for states, first, second in zip(self.axis_states, finer, coarser)
        )

    def successors(self, point: LatticePoint) -> List[LatticePoint]:
        """Points one relaxation step *more relaxed* than ``point``."""
        out: List[LatticePoint] = []
        for position, states in enumerate(self.axis_states):
            for next_state in states.successors(point[position]):
                candidate = list(point)
                candidate[position] = next_state
                out.append(tuple(candidate))
        return out

    def predecessors(self, point: LatticePoint) -> List[LatticePoint]:
        """Points one relaxation step *less relaxed* (finer)."""
        out: List[LatticePoint] = []
        for position, states in enumerate(self.axis_states):
            current = point[position]
            for prev in range(states.state_count):
                if prev != current and current in states.successors(prev):
                    candidate = list(point)
                    candidate[position] = prev
                    out.append(tuple(candidate))
        return out

    def lnd_parents(self, point: LatticePoint) -> List[Tuple[int, LatticePoint]]:
        """The finer points obtained by *undoing* one LND: for each dropped
        axis, the variants that keep it (one per structural state).

        Returns (axis position, finer point) pairs.  Used for coverage
        accounting: coverage fails between ``finer`` and ``point`` when
        some fact participates in ``point`` but not in ``finer``.
        """
        out: List[Tuple[int, LatticePoint]] = []
        for position, states in enumerate(self.axis_states):
            if point[position] == states.dropped_index:
                for state in range(len(states.states)):
                    candidate = list(point)
                    candidate[position] = state
                    out.append((position, tuple(candidate)))
        return out

    # ------------------------------------------------------------------
    # traversal orders
    # ------------------------------------------------------------------
    def topo_finer_first(self) -> List[LatticePoint]:
        """All points ordered finest -> coarsest (topological)."""
        return sorted(self.points(), key=self._rank)

    def topo_coarser_first(self) -> List[LatticePoint]:
        return sorted(self.points(), key=self._rank, reverse=True)

    def rank(self, point: LatticePoint) -> int:
        """Total relaxation steps from the top: structural set size per
        axis, DROPPED counting as (max structural size + 1) steps.  Points
        of equal rank form an antichain."""
        steps = 0
        for states, index in zip(self.axis_states, point):
            if index == states.dropped_index:
                steps += len(states.axis.structural) + 1
            else:
                steps += len(states.states[index])
        return steps

    def _rank(self, point: LatticePoint) -> Tuple[int, LatticePoint]:
        return (self.rank(point), point)

    # ------------------------------------------------------------------
    # partitioning views (used by repro.core.engine)
    # ------------------------------------------------------------------
    def level_slices(
        self, points: Optional[Sequence[LatticePoint]] = None
    ) -> List[Tuple[int, List[LatticePoint]]]:
        """Points grouped by rank, finest level first.

        Each slice is an antichain (no lattice edge runs inside a level),
        which makes contiguous runs of slices natural units for parallel
        cubing.
        """
        census: Dict[int, List[LatticePoint]] = {}
        for point in points if points is not None else self.points():
            census.setdefault(self.rank(point), []).append(point)
        return [
            (rank, sorted(census[rank])) for rank in sorted(census)
        ]

    def axis_state_slices(
        self,
        position: int,
        points: Optional[Sequence[LatticePoint]] = None,
    ) -> List[Tuple[int, List[LatticePoint]]]:
        """Points grouped by one axis's state index: the per-axis subtrees
        of the lattice (each slice is itself a product sub-lattice over the
        remaining axes)."""
        if not 0 <= position < self.axis_count:
            raise IndexError(
                f"axis position {position} out of range "
                f"(lattice has {self.axis_count} axes)"
            )
        slices: Dict[int, List[LatticePoint]] = {}
        for point in points if points is not None else self.points():
            slices.setdefault(point[position], []).append(point)
        return [
            (state, sorted(slices[state])) for state in sorted(slices)
        ]

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def kept_axes(self, point: LatticePoint) -> List[int]:
        """Positions of axes not dropped at this point."""
        return [
            position
            for position, states in enumerate(self.axis_states)
            if point[position] != states.dropped_index
        ]

    def describe(self, point: LatticePoint) -> str:
        """Human-readable point label, e.g. ``$n:SP+PC-AD, $p:rigid, $y:LND``."""
        parts = []
        for states, index in zip(self.axis_states, point):
            parts.append(f"{states.axis.name}:{states.describe(index)}")
        return ", ".join(parts)

    def point_by_description(self, text: str) -> LatticePoint:
        """Inverse of :meth:`describe` (used in tests and the CLI)."""
        wanted: Dict[str, str] = {}
        for chunk in text.split(","):
            if not chunk.strip():
                continue
            name, _, state = chunk.strip().partition(":")
            wanted[name] = state
        known = {states.axis.name for states in self.axis_states}
        unknown = set(wanted) - known
        if unknown:
            raise KeyError(
                f"unknown axes {sorted(unknown)}; this lattice has "
                f"{sorted(known)}"
            )
        point: List[int] = []
        for states in self.axis_states:
            label = wanted.get(states.axis.name, "rigid")
            for index in range(states.state_count):
                if states.describe(index) == label:
                    point.append(index)
                    break
            else:
                raise KeyError(
                    f"axis {states.axis.name} has no state {label!r}"
                )
        return tuple(point)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CubeLattice axes={[a.name for a in self.axes]} "
            f"points={self.size()}>"
        )
