"""Schema-driven lattice pruning (paper Sec. 3.7 + the stated future
work: "Automated determination of lattice properties from available
schemas that helps choosing and optimizing cube computation").

Two lattice points can provably *coincide* — same groups, same
aggregates — when the schema shows a relaxation adds nothing:

- **PC-AD no-op**: if every declared path from the step's parent tag to
  its child tag is a direct edge (the child never appears deeper), then
  generalizing that edge cannot add matches.  E.g. the paper's
  ``//publication/publisher`` vs ``//publication//publisher`` when
  publisher only ever occurs as a direct child.
- **SP no-op** (the paper's own example): "if the schema says that every
  path from publication to name goes through author, then
  //publication/author/name and //publication//name have the same
  coverage" — the SP state coincides with the PC-AD state.

:func:`prune_lattice` maps every lattice point to a canonical
representative; :func:`compute_cube_pruned` computes only the canonical
points and copies the rest, reporting how much work was saved.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.axes import AxisSpec
from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.properties import PropertyOracle
from repro.core.states import AxisStates
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import Relaxation
from repro.schema.dtd import Dtd


def _pc_ad_is_noop(dtd: Dtd, axis: AxisSpec, fact_tag: str) -> bool:
    """PC-AD adds nothing when, for every child edge on the path, the
    child tag is only ever reachable from the parent tag directly."""
    parent = fact_tag
    for edge, test in axis.steps:
        if test.startswith("@"):
            # Attribute edges are never PC-AD'ed.
            parent = parent  # unchanged
            continue
        if edge is EdgeAxis.CHILD:
            if not _only_direct(dtd, parent, test):
                return False
        parent = test
    return True


def _only_direct(dtd: Dtd, parent: str, child: str) -> bool:
    """Is every declared path parent ->* child the single direct edge?"""
    if dtd.get(parent) is None or not dtd.child_paths(parent, child):
        return False
    paths = dtd._tag_paths_between(parent, child, max_depth=16)
    return len(paths) == 1 and paths[0] == (child,)


def _sp_equals_pcad(dtd: Dtd, axis: AxisSpec, fact_tag: str) -> bool:
    """SP coincides with PC-AD when the axis's intermediate chain is the
    exact prefix of *every* declared path from the fact to the binding
    tag (the paper's //publication//name example: every path from
    publication to name goes through author — as a direct child).

    The prefix must be exact because the SP state retains the rigid
    prefix as an existence requirement: a schema where the chain can
    appear deeper (e.g. under an ``authors`` wrapper) makes SP and PC-AD
    genuinely different.
    """
    binding = axis.binding_test
    if binding.startswith("@"):
        return False
    intermediates = tuple(
        test for _, test in axis.steps[:-1] if not test.startswith("@")
    )
    if not intermediates:
        return False
    paths = dtd._tag_paths_between(fact_tag, binding, max_depth=16)
    if not paths:
        return False
    return all(
        path[: len(intermediates)] == intermediates for path in paths
    )


def axis_state_aliases(
    dtd: Dtd, states: AxisStates, fact_tag: str
) -> Dict[int, int]:
    """Map each structural state index to its canonical equivalent."""
    axis = states.axis
    alias: Dict[int, int] = {}
    pc_noop = (
        Relaxation.PC_AD in axis.structural
        and _pc_ad_is_noop(dtd, axis, fact_tag)
    )
    sp_like_pcad = (
        Relaxation.SP in axis.structural
        and _sp_equals_pcad(dtd, axis, fact_tag)
    )
    for index, state in enumerate(states.states):
        canonical: FrozenSet[Relaxation] = state
        if sp_like_pcad and Relaxation.SP in canonical:
            canonical = (canonical - {Relaxation.SP}) | {Relaxation.PC_AD}
        if pc_noop and Relaxation.PC_AD in canonical:
            canonical = canonical - {Relaxation.PC_AD}
        if canonical != state and frozenset(canonical) in states.states:
            alias[index] = states.index_of(frozenset(canonical))
        else:
            alias[index] = index
    # Resolve chains (SP -> PC-AD -> rigid).
    for index in list(alias):
        target = alias[index]
        while alias[target] != target:
            target = alias[target]
        alias[index] = target
    return alias


def prune_lattice(
    lattice: CubeLattice, dtd: Dtd, fact_tag: str
) -> Dict[LatticePoint, LatticePoint]:
    """point -> canonical point, per the schema's coincidence proofs."""
    per_axis: List[Dict[int, int]] = []
    for states in lattice.axis_states:
        aliases = axis_state_aliases(dtd, states, fact_tag)
        aliases[states.dropped_index] = states.dropped_index
        per_axis.append(aliases)
    mapping: Dict[LatticePoint, LatticePoint] = {}
    for point in lattice.points():
        canonical = tuple(
            per_axis[position][state]
            for position, state in enumerate(point)
        )
        mapping[point] = canonical
    return mapping


def compute_cube_pruned(
    table: FactTable,
    dtd: Dtd,
    fact_tag: str,
    algorithm: str = "BUC",
    oracle: Optional[PropertyOracle] = None,
    memory_entries: Optional[int] = None,
) -> Tuple[CubeResult, int]:
    """Compute only the canonical lattice points and copy the aliases.

    Returns (full cube result, number of points saved).
    """
    lattice = table.lattice
    mapping = prune_lattice(lattice, dtd, fact_tag)
    canonical_points = sorted(set(mapping.values()))
    saved = lattice.size() - len(canonical_points)
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm=algorithm,
            oracle=oracle,
            memory_entries=memory_entries,
            points=tuple(canonical_points),
        ),
    )
    cuboids = {
        point: result.cuboids[mapping[point]] for point in lattice.points()
    }
    full = CubeResult(
        lattice=lattice,
        cuboids=cuboids,
        algorithm=f"{result.algorithm}+PRUNE",
        cost=result.cost,
        passes=result.passes,
        aggregate=result.aggregate,
    )
    return full, saved
