"""Holistic twig matching via stack-based path joins (PathStack + merge).

TIMBER evaluates tree patterns either edge-by-edge (binary structural
joins, :mod:`repro.timber.structural_join`) or holistically.  This
module implements the PathStack/TwigStack family [Bruno, Koudas &
Srivastava, SIGMOD 2002] in its path-decomposition form:

1. the pattern is decomposed into its root-to-leaf *spines*;
2. each spine is evaluated by **PathStack**: one synchronized pass over
   the spine's posting streams with linked stacks, emitting every
   root-to-leaf path solution in one scan (no intermediate pair lists,
   unlike a cascade of binary joins);
3. the per-spine path solutions are merge-joined on their shared prefix
   nodes into full twig matches.

Scope: element-only patterns (no attribute nodes) without optional
nodes.  Ancestor-descendant edges are handled natively; parent-child
edges are checked during path expansion (the classic post-filter — the
holistic algorithms are only optimal for A-D twigs).  The cube layer
does not depend on this module; it exists because the substrate the
paper ran on had holistic joins, and the tests cross-validate it
against the navigational matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import PatternError
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern
from repro.timber.database import TimberDB
from repro.timber.tag_index import Posting

PathSolution = Tuple[Posting, ...]
TwigMatch = Tuple[Posting, ...]


@dataclass
class _StackEntry:
    posting: Posting
    parent_top: int  # index of the parent stack's top at push time


def path_stack(
    db: TimberDB,
    spine: List[PatternNode],
) -> List[PathSolution]:
    """All root-to-leaf path solutions of a linear chain of nodes.

    ``spine[0]`` is the pattern root; edges are taken from each node's
    ``axis`` (parent-child edges filtered during expansion).  Postings
    stream from the tag index in document order; each stream is scanned
    exactly once.
    """
    streams = [db.postings(node.test) for node in spine]
    positions = [0] * len(spine)
    stacks: List[List[_StackEntry]] = [[] for _ in spine]
    solutions: List[PathSolution] = []
    depth = len(spine)

    def eof(level: int) -> bool:
        return positions[level] >= len(streams[level])

    def head(level: int) -> Posting:
        return streams[level][positions[level]]

    def clean(level: int, current: Posting) -> None:
        stack = stacks[level]
        while stack and (
            stack[-1].posting.doc_id != current.doc_id
            or stack[-1].posting.end < current.start
        ):
            stack.pop()
            db.cost.charge_cpu()

    def expand(level: int, index: int) -> Iterator[List[Posting]]:
        """Every path ending at stacks[level][index]."""
        entry = stacks[level][index]
        if level == 0:
            yield [entry.posting]
            return
        limit = entry.parent_top
        for parent_index in range(limit + 1):
            parent_entry = stacks[level - 1][parent_index]
            if spine[level].axis is EdgeAxis.CHILD:
                valid = parent_entry.posting.is_parent_of(entry.posting)
            else:
                # Proper containment; the explicit check matters for
                # recursive spines like a//a, where the same posting can
                # sit on two adjacent stacks.
                valid = parent_entry.posting.contains(entry.posting)
            if not valid:
                db.cost.charge_cpu()
                continue
            for prefix in expand(level - 1, parent_index):
                yield prefix + [entry.posting]

    while not all(eof(level) for level in range(depth)):
        # Pick the node whose next posting comes first in document order.
        q = min(
            (level for level in range(depth) if not eof(level)),
            key=lambda level: head(level).sort_key,
        )
        current = head(q)
        db.cost.charge_cpu()
        for level in range(depth):
            clean(level, current)
        if q == 0 or stacks[q - 1]:
            stacks[q].append(
                _StackEntry(
                    current,
                    len(stacks[q - 1]) - 1 if q > 0 else -1,
                )
            )
            if q == depth - 1:
                for path in expand(q, len(stacks[q]) - 1):
                    solutions.append(tuple(path))
                    db.cost.charge_cpu()
                stacks[q].pop()
        positions[q] += 1
    return solutions


class HolisticTwigJoin:
    """Twig matching by spine decomposition + path-solution merge."""

    def __init__(self, db: TimberDB, pattern: TreePattern) -> None:
        self.db = db
        self.pattern = pattern
        self.nodes = pattern.nodes()
        for node in self.nodes:
            if node.is_attribute:
                raise PatternError(
                    "holistic twig join operates on element-only patterns"
                )
            if node.optional:
                raise PatternError(
                    "holistic twig join does not support optional nodes"
                )
        self.index_of = {
            id(node): position for position, node in enumerate(self.nodes)
        }
        self.spines: List[List[int]] = []
        for position, node in enumerate(self.nodes):
            if node.children:
                continue
            spine = [position]
            cursor = node
            while cursor.parent is not None:
                cursor = cursor.parent
                spine.append(self.index_of[id(cursor)])
            self.spines.append(list(reversed(spine)))

    # ------------------------------------------------------------------
    def run(self) -> List[TwigMatch]:
        per_spine: List[List[Dict[int, Posting]]] = []
        for spine in self.spines:
            nodes = [self.nodes[position] for position in spine]
            paths = path_stack(self.db, nodes)
            per_spine.append(
                [dict(zip(spine, path)) for path in paths]
            )

        partial = per_spine[0]
        for candidates in per_spine[1:]:
            merged: List[Dict[int, Posting]] = []
            for assignment in partial:
                for candidate in candidates:
                    if all(
                        node not in assignment
                        or assignment[node] == posting
                        for node, posting in candidate.items()
                    ):
                        union = dict(assignment)
                        union.update(candidate)
                        merged.append(union)
                    self.db.cost.charge_cpu()
            partial = merged

        out: List[TwigMatch] = []
        seen = set()
        for assignment in partial:
            match = tuple(
                assignment[position] for position in range(len(self.nodes))
            )
            key = tuple(
                (posting.doc_id, posting.node_id) for posting in match
            )
            if key not in seen:
                seen.add(key)
                out.append(match)
        return out


def twig_join(db: TimberDB, pattern: TreePattern) -> List[TwigMatch]:
    """Match an element-only pattern holistically.

    Returns one tuple of postings per match, aligned with
    ``pattern.nodes()`` order.  Root-axis filtering mirrors
    :func:`repro.patterns.match.match_db`: a CHILD root axis anchors at
    document roots.
    """
    from repro.obs import current_tracer

    tracer = current_tracer()
    with tracer.span(
        "timber.twig_join",
        category="timber",
        cost=db.cost,
        pattern_nodes=len(list(pattern.nodes())),
    ) as span:
        matches = HolisticTwigJoin(db, pattern).run()
        if pattern.root_axis is EdgeAxis.CHILD:
            matches = [match for match in matches if match[0].level == 0]
        span.annotate(matches=len(matches))
    if tracer.enabled:
        tracer.metrics.counter("x3_join_pairs_total", join="twig").inc(
            len(matches)
        )
    return matches
