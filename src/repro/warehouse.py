"""A user-facing warehouse facade tying the pieces together.

:class:`XmlWarehouse` is the "just let me cube my XML" entry point a
downstream user starts with:

    warehouse = XmlWarehouse()
    warehouse.add(open("claims.xml").read())
    session = warehouse.query(QUERY_TEXT)
    cube = session.compute()                    # advisor-chosen algorithm
    session.cuboid("$r:rigid, $p:LND")

It wires together document loading, DTD inference, property oracles,
the Sec. 4.6 algorithm advisor, and cube computation; every component
remains usable on its own.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.core.advisor import (  # noqa: F401  (choose_algorithm re-exported)
    Recommendation,
    choose_algorithm,
    recommend_for_table,
)
from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions, compute_cube
from repro.core.extract import extract_from_documents
from repro.core.groupby import Cuboid
from repro.core.properties import PropertyOracle
from repro.core.query import X3Query
from repro.core.xq_parser import parse_x3_query
from repro.errors import QueryError
from repro.schema.dtd import Dtd
from repro.schema.inference import infer_dtd
from repro.xmlmodel.nodes import Document
from repro.xmlmodel.parser import parse


class CubeSession:
    """One query against a warehouse: extraction + computation + reads."""

    def __init__(
        self,
        query: X3Query,
        table: FactTable,
        oracle: PropertyOracle,
        memory_entries: int,
    ) -> None:
        self.query = query
        self.table = table
        self.oracle = oracle
        self.memory_entries = memory_entries
        self._result: Optional[CubeResult] = None

    # ------------------------------------------------------------------
    def recommend(self) -> Recommendation:
        """Sec. 4.6 advice for this query's data."""
        return recommend_for_table(
            self.table, self.oracle, self.memory_entries
        )

    def compute(
        self,
        algorithm: Optional[str] = None,
        options: Optional[ExecutionOptions] = None,
        **kwargs,
    ) -> CubeResult:
        """Compute (and cache) the cube; advisor picks the algorithm by
        default.

        The session fills in its own oracle and memory budget wherever the
        given :class:`ExecutionOptions` left them unset; extra keyword
        arguments (``workers=4``, ``min_support=2``, ...) are
        :class:`ExecutionOptions` fields.
        """
        if options is None:
            options = ExecutionOptions(
                algorithm=algorithm or self.recommend().algorithm,
                oracle=self.oracle,
                memory_entries=self.memory_entries,
                **kwargs,
            )
        else:
            if kwargs:
                options = options.replace(**kwargs)
            if algorithm is not None:
                options = options.replace(algorithm=algorithm)
            if options.oracle is None:
                options = options.replace(oracle=self.oracle)
            if options.memory_entries is None:
                options = options.replace(memory_entries=self.memory_entries)
        self._result = compute_cube(self.table, options)
        return self._result

    @property
    def result(self) -> CubeResult:
        if self._result is None:
            return self.compute()
        return self._result

    def cuboid(self, description: str) -> Cuboid:
        return self.result.cuboid_by_description(description)

    def properties_report(self) -> Dict[str, Tuple[bool, bool]]:
        """Axis name -> (disjoint, covered) at the rigid state."""
        out: Dict[str, Tuple[bool, bool]] = {}
        for position, states in enumerate(self.table.lattice.axis_states):
            out[states.axis.name] = (
                self.oracle.axis_disjoint(position, states.rigid_index),
                self.oracle.axis_covered(position, states.rigid_index),
            )
        return out


class XmlWarehouse:
    """Documents + (optional) schema + query sessions.

    Args:
        dtd: a known schema; when omitted, one is inferred from the
            loaded documents the first time a query needs it (the
            customized algorithms then use inferred cardinalities).
        memory_entries: operator budget handed to every session.
    """

    def __init__(
        self, dtd: Optional[Dtd] = None, memory_entries: int = 50_000
    ) -> None:
        self.documents: List[Document] = []
        self._declared_dtd = dtd
        self._inferred_dtd: Optional[Dtd] = None
        self.memory_entries = memory_entries

    # ------------------------------------------------------------------
    def add(self, source: Union[str, Document], name: str = "") -> Document:
        doc = source if isinstance(source, Document) else parse(source, name)
        self.documents.append(doc)
        self._inferred_dtd = None  # stale
        return doc

    @property
    def dtd(self) -> Dtd:
        if self._declared_dtd is not None:
            return self._declared_dtd
        if self._inferred_dtd is None:
            if not self.documents:
                raise QueryError("the warehouse has no documents")
            self._inferred_dtd = infer_dtd(self.documents)
        return self._inferred_dtd

    def query(self, query: Union[str, X3Query]) -> CubeSession:
        """Start a cube session for a query (text or structured)."""
        if not self.documents:
            raise QueryError("the warehouse has no documents")
        structured = (
            query if isinstance(query, X3Query) else parse_x3_query(query)
        )
        table = extract_from_documents(self.documents, structured)
        oracle = PropertyOracle.from_schema(
            table.lattice, self.dtd, structured.fact_tag
        )
        return CubeSession(
            structured, table, oracle, self.memory_entries
        )

    def fact_count(self, fact_tag: str) -> int:
        return sum(len(doc.find_all(fact_tag)) for doc in self.documents)
