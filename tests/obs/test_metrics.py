"""Unit tests for the central metrics registry."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.timber.stats import CostModel


class TestCounter:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("x3_things_total", kind="a")
        b = registry.counter("x3_things_total", kind="a")
        assert a is b
        assert registry.counter("x3_things_total", kind="b") is not a

    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("x3_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        counter = Counter("x3_things_total", ())
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("x3_level", ())
        gauge.set(4)
        gauge.inc(-1.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram("x3_seconds", (), buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)
        # bounds: (0.1, 1.0, +Inf); every bucket counts values <= bound.
        assert histogram.bounds == (0.1, 1.0, math.inf)
        assert histogram.bucket_counts == [1, 2, 3]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(100.55)
        assert histogram.mean == pytest.approx(100.55 / 3)

    def test_inf_bucket_always_appended(self):
        histogram = Histogram("x3_seconds", (), buckets=(1.0, 2.0))
        assert histogram.bounds[-1] == math.inf


class TestRegistryReads:
    def test_value_and_total(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total", algorithm="BUC").inc(3)
        registry.counter("x3_ops_total", algorithm="TD").inc(4)
        assert registry.value("x3_ops_total", algorithm="BUC") == 3
        assert registry.value("x3_ops_total", algorithm="NOPE") is None
        assert registry.total("x3_ops_total") == 7
        assert registry.total("absent") == 0.0

    def test_as_dict_and_len(self):
        registry = MetricsRegistry()
        registry.counter("x3_ops_total", algorithm="BUC").inc(3)
        registry.gauge("x3_level").set(2)
        assert registry.as_dict() == {
            'x3_ops_total{algorithm="BUC"}': 3.0,
            "x3_level": 2.0,
        }
        assert len(registry) == 2

    def test_collect_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        names = [(m.kind, m.name) for m in registry.collect()]
        assert names == sorted(names)


class TestAbsorption:
    def test_absorb_cost_from_mapping(self):
        registry = MetricsRegistry()
        registry.absorb_cost(
            {"cpu_ops": 10, "page_reads": 2, "buffer_hits": 5},
            algorithm="BUC",
        )
        assert registry.value("x3_cost_cpu_ops_total", algorithm="BUC") == 10
        assert registry.value("x3_cost_page_reads_total", algorithm="BUC") == 2
        assert registry.value("x3_buffer_hits_total", algorithm="BUC") == 5
        # zero-valued sources create no series
        assert registry.value("x3_cost_page_writes_total", algorithm="BUC") is None

    def test_absorb_cost_from_live_model(self):
        cost = CostModel()
        cost.charge_cpu(7)
        cost.charge_read(3)
        registry = MetricsRegistry()
        registry.absorb_cost(cost)
        assert registry.total("x3_cost_cpu_ops_total") == 7
        assert registry.total("x3_cost_page_reads_total") == 3
        assert registry.total("x3_cost_simulated_seconds_total") == pytest.approx(
            cost.simulated_seconds()
        )

    def test_absorb_phases(self):
        registry = MetricsRegistry()
        registry.absorb_phases(
            {"base_scans": 4, "td_rollups": 0}, algorithm="TD"
        )
        assert registry.value("x3_algo_base_scans_total", algorithm="TD") == 4
        # zero phases are skipped
        assert registry.value("x3_algo_td_rollups_total", algorithm="TD") is None

    def test_merge_combines_all_kinds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("x3_ops_total").inc(1)
        b.counter("x3_ops_total").inc(2)
        b.gauge("x3_level").set(9)
        b.histogram("x3_seconds").observe(0.3)
        a.merge(b)
        assert a.total("x3_ops_total") == 3
        assert a.value("x3_level") == 9
        merged = a.histogram("x3_seconds")
        assert merged.count == 1
        assert merged.sum == pytest.approx(0.3)
