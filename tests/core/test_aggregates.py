"""Unit tests for aggregate functions (distributive/algebraic protocol)."""

import pytest

from repro.core.aggregates import AggregateSpec, get_function
from repro.errors import QueryError


class TestCount:
    def test_basic(self):
        fn = get_function("COUNT")
        state = fn.new()
        for measure in (5.0, 7.0, 9.0):
            state = fn.add(state, measure)
        assert fn.finalize(state) == 3.0

    def test_merge(self):
        fn = get_function("count")
        left = fn.add(fn.new(), 1.0)
        right = fn.add(fn.add(fn.new(), 1.0), 1.0)
        assert fn.finalize(fn.merge(left, right)) == 3.0


class TestSum:
    def test_basic_and_merge(self):
        fn = get_function("SUM")
        left = fn.add(fn.new(), 2.5)
        right = fn.add(fn.new(), 1.5)
        assert fn.finalize(fn.merge(left, right)) == 4.0


class TestMinMax:
    def test_min(self):
        fn = get_function("MIN")
        state = fn.add(fn.add(fn.new(), 5.0), 2.0)
        assert fn.finalize(state) == 2.0

    def test_max_merge_with_empty(self):
        fn = get_function("MAX")
        assert fn.finalize(fn.merge(fn.new(), fn.add(fn.new(), 3.0))) == 3.0

    def test_empty_group_raises(self):
        for name in ("MIN", "MAX"):
            fn = get_function(name)
            with pytest.raises(QueryError):
                fn.finalize(fn.new())


class TestAvg:
    def test_algebraic_merge(self):
        fn = get_function("AVG")
        left = fn.add(fn.add(fn.new(), 1.0), 2.0)   # avg 1.5 of 2
        right = fn.add(fn.new(), 6.0)               # avg 6 of 1
        merged = fn.merge(left, right)
        assert fn.finalize(merged) == pytest.approx(3.0)

    def test_empty_raises(self):
        fn = get_function("AVG")
        with pytest.raises(QueryError):
            fn.finalize(fn.new())


class TestMergeEqualsSequential:
    """Distributivity: merging partials == folding everything at once."""

    @pytest.mark.parametrize("name", ["COUNT", "SUM", "MIN", "MAX", "AVG"])
    def test_split_points(self, name):
        fn = get_function(name)
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        whole = fn.new()
        for value in data:
            whole = fn.add(whole, value)
        for split in range(1, len(data)):
            left = fn.new()
            for value in data[:split]:
                left = fn.add(left, value)
            right = fn.new()
            for value in data[split:]:
                right = fn.add(right, value)
            assert fn.finalize(fn.merge(left, right)) == pytest.approx(
                fn.finalize(whole)
            )


class TestAggregateSpec:
    def test_count_default(self):
        spec = AggregateSpec()
        assert spec.function == "COUNT"
        assert str(spec) == "COUNT($fact)"

    def test_sum_needs_measure(self):
        with pytest.raises(QueryError):
            AggregateSpec("SUM")

    def test_sum_with_measure(self):
        spec = AggregateSpec("SUM", "@price")
        assert str(spec) == "SUM(@price)"
        assert spec.fn.name == "SUM"

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            AggregateSpec("MEDIAN", "x")
