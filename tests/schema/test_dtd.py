"""Unit tests for the DTD model and its path reasoning."""

import pytest

from repro.errors import SchemaError
from repro.schema.dtd import Cardinality, Dtd, ElementDecl


def build_pub_dtd() -> Dtd:
    dtd = Dtd()
    dtd.declare_element(
        "database", children=[("publication", Cardinality.STAR)]
    )
    dtd.declare_element(
        "publication",
        children=[
            ("author", Cardinality.STAR),
            ("publisher", Cardinality.OPTIONAL),
            ("year", Cardinality.PLUS),
        ],
        attributes=["id"],
    )
    dtd.declare_element(
        "author", children=[("name", Cardinality.ONE)], attributes=["id"]
    )
    dtd.declare_element("name", has_text=True)
    dtd.declare_element("publisher", attributes=["id"])
    dtd.declare_element("year", has_text=True)
    return dtd


class TestCardinality:
    def test_flags(self):
        assert Cardinality.ONE.may_be_absent is False
        assert Cardinality.ONE.may_repeat is False
        assert Cardinality.OPTIONAL.may_be_absent is True
        assert Cardinality.STAR.may_repeat is True
        assert Cardinality.PLUS.may_repeat is True
        assert Cardinality.PLUS.may_be_absent is False

    def test_from_indicator(self):
        assert Cardinality.from_indicator("") is Cardinality.ONE
        assert Cardinality.from_indicator("?") is Cardinality.OPTIONAL
        assert Cardinality.from_indicator("*") is Cardinality.STAR
        assert Cardinality.from_indicator("+") is Cardinality.PLUS
        with pytest.raises(SchemaError):
            Cardinality.from_indicator("!")

    @pytest.mark.parametrize(
        "first,second,expected",
        [
            (Cardinality.ONE, Cardinality.ONE, Cardinality.ONE),
            (Cardinality.ONE, Cardinality.OPTIONAL, Cardinality.OPTIONAL),
            (Cardinality.ONE, Cardinality.PLUS, Cardinality.PLUS),
            (Cardinality.OPTIONAL, Cardinality.PLUS, Cardinality.STAR),
            (Cardinality.STAR, Cardinality.ONE, Cardinality.STAR),
        ],
    )
    def test_join(self, first, second, expected):
        assert Cardinality.join(first, second) is expected


class TestDtd:
    def test_first_declared_is_root(self):
        dtd = build_pub_dtd()
        assert dtd.root == "database"

    def test_contains_and_tags(self):
        dtd = build_pub_dtd()
        assert "author" in dtd
        assert "nope" not in dtd
        assert set(dtd.tags) >= {"database", "publication", "name"}

    def test_child_paths(self):
        dtd = build_pub_dtd()
        assert dtd.child_paths("publication", "author")
        assert not dtd.child_paths("publication", "name")

    def test_reachable_tags(self):
        dtd = build_pub_dtd()
        reachable = dtd.reachable_tags("publication")
        assert {"author", "name", "publisher", "year"} <= reachable
        assert "database" not in reachable

    def test_descendant_cardinality_single_path(self):
        dtd = build_pub_dtd()
        card = dtd.descendant_step_cardinality("publication", "name")
        # publication -> author(*) -> name(1): repeatable and optional.
        assert card is Cardinality.STAR

    def test_descendant_cardinality_unreachable(self):
        dtd = build_pub_dtd()
        assert dtd.descendant_step_cardinality("author", "year") is None

    def test_descendant_cardinality_mandatory_chain(self):
        dtd = Dtd()
        dtd.declare_element("a", children=[("b", Cardinality.ONE)])
        dtd.declare_element("b", children=[("c", Cardinality.ONE)])
        dtd.declare_element("c")
        assert (
            dtd.descendant_step_cardinality("a", "c") is Cardinality.ONE
        )

    def test_descendant_cardinality_multiple_routes(self):
        dtd = Dtd()
        dtd.declare_element(
            "a",
            children=[("b", Cardinality.ONE), ("c", Cardinality.ONE)],
        )
        dtd.declare_element("b", children=[("x", Cardinality.ONE)])
        dtd.declare_element("c", children=[("x", Cardinality.ONE)])
        dtd.declare_element("x")
        card = dtd.descendant_step_cardinality("a", "x")
        assert card is not None and card.may_repeat

    def test_recursive_schema_conservative(self):
        dtd = Dtd()
        dtd.declare_element(
            "a", children=[("a", Cardinality.OPTIONAL), ("x", Cardinality.ONE)]
        )
        dtd.declare_element("x")
        assert (
            dtd.descendant_step_cardinality("a", "x") is Cardinality.STAR
        )

    def test_unique_path(self):
        dtd = build_pub_dtd()
        assert dtd.unique_path("publication", "name")
        dtd.declare_element(
            "publisher", children=[("name", Cardinality.ONE)]
        )
        assert not dtd.unique_path("publication", "name")

    def test_declare_replaces(self):
        dtd = build_pub_dtd()
        dtd.declare(ElementDecl("year", has_text=False))
        assert dtd.get("year").has_text is False
