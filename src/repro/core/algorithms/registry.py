"""Algorithm registry: name -> singleton instance."""

from __future__ import annotations

from typing import Dict, List

from repro.core.algorithms.auto import AutoAlgorithm
from repro.core.algorithms.base import CubeAlgorithm
from repro.core.algorithms.buc import (
    BucAlgorithm,
    BucCustAlgorithm,
    BucOptAlgorithm,
)
from repro.core.algorithms.columnar_sweep import ColumnarSweepAlgorithm
from repro.core.algorithms.counter import CounterAlgorithm
from repro.core.algorithms.naive import NaiveAlgorithm
from repro.core.algorithms.topdown import (
    TdAlgorithm,
    TdCustAlgorithm,
    TdOptAlgorithm,
    TdOptAllAlgorithm,
)
from repro.errors import CubeError

_REGISTRY: Dict[str, CubeAlgorithm] = {
    algorithm.name: algorithm
    for algorithm in (
        AutoAlgorithm(),
        NaiveAlgorithm(),
        CounterAlgorithm(),
        ColumnarSweepAlgorithm(),
        BucAlgorithm(),
        BucOptAlgorithm(),
        BucCustAlgorithm(),
        TdAlgorithm(),
        TdOptAlgorithm(),
        TdOptAllAlgorithm(),
        TdCustAlgorithm(),
    )
}

ALWAYS_CORRECT = (
    "NAIVE",
    "COUNTER",
    "COLUMNAR",
    "BUC",
    "TD",
    "BUCCUST",
    "TDCUST",
)
META = ("AUTO",)  # delegates; correct iff its oracle is truthful
NEEDS_DISJOINTNESS = ("BUCOPT", "TDOPT")
NEEDS_BOTH = ("TDOPTALL",)

#: Algorithms with both a legacy dict path and a columnar kernel, chosen
#: by ``ExecutionOptions(encoding=...)``: ``"auto"``/``"columnar"`` run
#: on the encoded columns, ``"dict"`` pins the legacy FactRow path (what
#: the duels time the columnar kernels against).  COLUMNAR itself is
#: columnar-only; NAIVE/COUNTER are dict-only and ignore the option.
COLUMNAR_CAPABLE = (
    "BUC",
    "BUCOPT",
    "BUCCUST",
    "TD",
    "TDOPT",
    "TDOPTALL",
    "TDCUST",
)


def available() -> List[str]:
    """Names of all registered algorithms."""
    return list(_REGISTRY)


def get_algorithm(name: str) -> CubeAlgorithm:
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise CubeError(
            f"unknown algorithm {name!r}; available: {available()}"
        ) from None


def new_instance(name: str) -> CubeAlgorithm:
    """A fresh, private instance of a registered algorithm.

    The registry hands out singletons, and several algorithms keep their
    per-run state on ``self`` — fine for sequential use, but concurrent
    ``run`` calls on one instance clobber each other.  Anything running
    algorithms from multiple threads (the parallel engine's thread pool)
    must use this instead of :func:`get_algorithm`.
    """
    return type(get_algorithm(name))()
