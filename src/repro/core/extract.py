"""Fact-table extraction: evaluate the most relaxed pattern once.

This is the paper's measurement protocol (Sec. 4): "we pre-evaluated the
query tree pattern, and materialized the results into a file.  The file
was then read in and the cubing was performed."  Extraction finds every
fact, and per axis evaluates the path of *every structural state* of that
axis, recording for each value the mask of states under which it binds.
The cube algorithms then only ever consume the resulting
:class:`~repro.core.bindings.FactTable`.

Two backends:

- :func:`extract_from_documents` — in-memory :class:`Document` trees;
- :func:`extract_from_db` — a :class:`~repro.timber.database.TimberDB`,
  going through the tag index and node store so the work is charged to
  the DB's cost model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.core.axes import AxisSpec, PathStep
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.query import X3Query
from repro.patterns.pattern import EdgeAxis
from repro.timber.database import TimberDB
from repro.timber.node_store import NodeRecord
from repro.xmlmodel.nodes import Document, Element


def extract_fact_table(
    source: Union[TimberDB, Document, Sequence[Document]], query: X3Query
) -> FactTable:
    """Extract the annotated fact table from documents or a TimberDB."""
    if isinstance(source, TimberDB):
        return extract_from_db(source, query)
    docs = [source] if isinstance(source, Document) else list(source)
    return extract_from_documents(docs, query)


# ----------------------------------------------------------------------
# in-memory backend
# ----------------------------------------------------------------------

def extract_from_documents(
    docs: Iterable[Document], query: X3Query
) -> FactTable:
    lattice = query.lattice()
    rows: List[FactRow] = []
    for doc_index, doc in enumerate(docs):
        for fact in doc.find_all(query.fact_tag):
            axes = tuple(
                _annotate_axis_memory(fact, states.axis, len(states.states))
                for states in lattice.axis_states
            )
            measure = _measure_memory(fact, query)
            rows.append(
                FactRow(
                    fact_id=(doc_index, fact.node_id),
                    measure=measure,
                    axes=axes,
                )
            )
    return FactTable(lattice, rows, aggregate=query.aggregate)


def _annotate_axis_memory(
    fact: Element, axis: AxisSpec, state_count: int
) -> Tuple[AnnotatedValue, ...]:
    masks: Dict[str, int] = {}
    order: List[str] = []
    from repro.core.states import AxisStates

    states = AxisStates.for_axis(axis)
    for index in range(state_count):
        applied = states.structural_state(index)
        binding, prefix = axis.steps_for_state(applied)
        if prefix and not _eval_steps_memory(fact, prefix):
            continue
        for value in _eval_steps_memory(fact, binding):
            if value not in masks:
                masks[value] = 0
                order.append(value)
            masks[value] |= 1 << index
    return tuple(AnnotatedValue(value, masks[value]) for value in order)


def _eval_steps_memory(
    context: Element, steps: Tuple[PathStep, ...]
) -> List[str]:
    """Values bound by a step sequence from an element (deduplicated,
    document order)."""
    frontier: List[Element] = [context]
    for axis, test in steps[:-1]:
        next_frontier: List[Element] = []
        seen = set()
        for node in frontier:
            pool = (
                node.children
                if axis is EdgeAxis.CHILD
                else list(node.iter_descendants())
            )
            for candidate in pool:
                if test in ("*", candidate.tag) and id(candidate) not in seen:
                    seen.add(id(candidate))
                    next_frontier.append(candidate)
        frontier = next_frontier
    last_axis, last_test = steps[-1]
    values: List[str] = []
    seen_values = set()
    if last_test.startswith("@"):
        name = last_test[1:]
        for node in frontier:
            owners = (
                [node]
                if last_axis is EdgeAxis.CHILD
                else list(node.iter_descendants())
            )
            for owner in owners:
                value = owner.attrs.get(name)
                if value is not None and value not in seen_values:
                    seen_values.add(value)
                    values.append(value)
        return values
    for node in frontier:
        pool = (
            node.children
            if last_axis is EdgeAxis.CHILD
            else list(node.iter_descendants())
        )
        for candidate in pool:
            if last_test in ("*", candidate.tag):
                value = candidate.text
                if value not in seen_values:
                    seen_values.add(value)
                    values.append(value)
    return values


def _measure_memory(fact: Element, query: X3Query) -> float:
    if query.aggregate.function.upper() == "COUNT":
        return 1.0
    steps = AxisSpec.from_path("$m", query.aggregate.measure_path).steps
    values = _eval_steps_memory(fact, steps)
    total = 0.0
    for value in values:
        try:
            total += float(value)
        except ValueError:
            continue
    return total


# ----------------------------------------------------------------------
# TimberDB backend
# ----------------------------------------------------------------------

def extract_from_db(db: TimberDB, query: X3Query) -> FactTable:
    lattice = query.lattice()
    rows: List[FactRow] = []
    for posting in db.postings(query.fact_tag):
        subtree = list(db.store.subtree_of(posting.doc_id, posting.node_id))
        db.cost.charge_cpu(len(subtree))
        fact = subtree[0]
        children_of: Dict[int, List[NodeRecord]] = {}
        for record in subtree[1:]:
            children_of.setdefault(record.parent_id, []).append(record)
        axes = tuple(
            _annotate_axis_db(fact, subtree, children_of, states.axis, db)
            for states in lattice.axis_states
        )
        measure = _measure_db(fact, subtree, children_of, query, db)
        rows.append(
            FactRow(
                fact_id=(posting.doc_id, posting.node_id),
                measure=measure,
                axes=axes,
            )
        )
    return FactTable(lattice, rows, aggregate=query.aggregate)


def _annotate_axis_db(
    fact: NodeRecord,
    subtree: List[NodeRecord],
    children_of: Dict[int, List[NodeRecord]],
    axis: AxisSpec,
    db: TimberDB,
) -> Tuple[AnnotatedValue, ...]:
    from repro.core.states import AxisStates

    states = AxisStates.for_axis(axis)
    masks: Dict[str, int] = {}
    order: List[str] = []
    for index in range(len(states.states)):
        applied = states.structural_state(index)
        binding, prefix = axis.steps_for_state(applied)
        if prefix and not _eval_steps_db(
            fact, subtree, children_of, prefix, db
        ):
            continue
        for value in _eval_steps_db(fact, subtree, children_of, binding, db):
            if value not in masks:
                masks[value] = 0
                order.append(value)
            masks[value] |= 1 << index
    return tuple(AnnotatedValue(value, masks[value]) for value in order)


def _descendants_db(
    context: NodeRecord, subtree: List[NodeRecord]
) -> List[NodeRecord]:
    return [
        record
        for record in subtree
        if context.start < record.start and record.end <= context.end
    ]


def _eval_steps_db(
    fact: NodeRecord,
    subtree: List[NodeRecord],
    children_of: Dict[int, List[NodeRecord]],
    steps: Tuple[PathStep, ...],
    db: TimberDB,
) -> List[str]:
    frontier: List[NodeRecord] = [fact]
    for axis, test in steps[:-1]:
        next_frontier: List[NodeRecord] = []
        seen = set()
        for node in frontier:
            if axis is EdgeAxis.CHILD:
                pool = children_of.get(node.node_id, [])
            else:
                pool = _descendants_db(node, subtree)
            db.cost.charge_cpu(len(pool))
            for candidate in pool:
                if test in ("*", candidate.tag) and candidate.node_id not in seen:
                    seen.add(candidate.node_id)
                    next_frontier.append(candidate)
        frontier = next_frontier
    last_axis, last_test = steps[-1]
    values: List[str] = []
    seen_values = set()
    if last_test.startswith("@"):
        name = last_test[1:]
        for node in frontier:
            owners = (
                [node]
                if last_axis is EdgeAxis.CHILD
                else _descendants_db(node, subtree)
            )
            db.cost.charge_cpu(len(owners))
            for owner in owners:
                value = owner.attr(name)
                if value is not None and value not in seen_values:
                    seen_values.add(value)
                    values.append(value)
        return values
    for node in frontier:
        if last_axis is EdgeAxis.CHILD:
            pool = children_of.get(node.node_id, [])
        else:
            pool = _descendants_db(node, subtree)
        db.cost.charge_cpu(len(pool))
        for candidate in pool:
            if last_test in ("*", candidate.tag):
                value = candidate.text
                if value not in seen_values:
                    seen_values.add(value)
                    values.append(value)
    return values


def _measure_db(
    fact: NodeRecord,
    subtree: List[NodeRecord],
    children_of: Dict[int, List[NodeRecord]],
    query: X3Query,
    db: TimberDB,
) -> float:
    if query.aggregate.function.upper() == "COUNT":
        return 1.0
    steps = AxisSpec.from_path("$m", query.aggregate.measure_path).steps
    values = _eval_steps_db(fact, subtree, children_of, steps, db)
    total = 0.0
    for value in values:
        try:
            total += float(value)
        except ValueError:
            continue
    return total
