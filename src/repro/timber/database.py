"""The TimberDB facade: load documents, scan, index, and account costs.

A :class:`TimberDB` bundles the simulated disk, buffer pool, node store and
tag index behind one object.  The pattern matcher
(:mod:`repro.patterns.match`) and the cube extraction layer
(:mod:`repro.core.extract`) take a TimberDB and charge all their work to
its cost model, which is what the benchmark harness reads out.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.obs import current_tracer
from repro.timber.buffer_pool import BufferPool
from repro.timber.node_store import NodeRecord, NodeStore
from repro.timber.pages import DEFAULT_PAGE_CAPACITY, Disk
from repro.timber.stats import CostModel, MemoryBudget
from repro.timber.tag_index import Posting, TagIndex
from repro.timber.value_index import ValueIndex
from repro.xmlmodel.nodes import Document
from repro.xmlmodel.parser import parse


class TimberDB:
    """A tiny native XML database with cost accounting.

    Args:
        buffer_pages: buffer pool frames (default mirrors the paper's
            "half the working set fits" regime at our scale).
        page_capacity: records per page.
        memory_entries: in-memory working budget for operators (sorting,
            counters); see :class:`MemoryBudget`.
    """

    def __init__(
        self,
        buffer_pages: int = 1024,
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        memory_entries: int = 100_000,
    ) -> None:
        self.cost = CostModel()
        self.disk = Disk(page_capacity=page_capacity)
        self.pool = BufferPool(self.disk, self.cost, capacity_pages=buffer_pages)
        self.store = NodeStore(self.disk, self.pool)
        self.index = TagIndex(self.disk, self.pool)
        self.values = ValueIndex(self.disk, self.pool)
        self.memory = MemoryBudget(memory_entries)
        self._index_dirty = False
        self._value_index_built = False

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, source: Union[Document, str], name: str = "") -> int:
        """Load a document (tree or XML text).  Returns the doc id."""
        doc = source if isinstance(source, Document) else parse(source, name=name)
        with current_tracer().span(
            "timber.load", category="timber", cost=self.cost, doc=name
        ):
            doc_id = self.store.load_document(doc)
        self._index_dirty = True
        return doc_id

    def load_many(self, sources: List[Union[Document, str]]) -> List[int]:
        return [self.load(source) for source in sources]

    def build_index(self) -> None:
        """(Re-)build the tag index; called lazily by index accessors."""
        with current_tracer().span(
            "timber.index.build", category="timber", cost=self.cost
        ):
            self.index.build(self.store)
        self._index_dirty = False
        self._value_index_built = False

    def build_value_index(self) -> None:
        """(Re-)build the (tag, value) index (lazy, like the tag index)."""
        with current_tracer().span(
            "timber.value_index.build", category="timber", cost=self.cost
        ):
            self.values.build(self.store)
        self._value_index_built = True

    def _ensure_index(self) -> None:
        if self._index_dirty:
            self.build_index()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return self.store.document_count

    def node(self, doc_id: int, node_id: int) -> NodeRecord:
        return self.store.read(doc_id, node_id)

    def postings(self, tag: str) -> List[Posting]:
        """Sorted postings of a tag (index scan)."""
        self._ensure_index()
        return self.index.scan_list(tag)

    def postings_iter(self, tag: str) -> Iterator[Posting]:
        self._ensure_index()
        return self.index.scan(tag)

    def tag_cardinality(self, tag: str) -> int:
        self._ensure_index()
        return self.index.cardinality(tag)

    def tags(self) -> List[str]:
        self._ensure_index()
        return self.index.tags()

    def postings_with_value(self, tag: str, value: str) -> List[Posting]:
        """Postings of elements with the tag and exact text value
        (value-index lookup; built on first use)."""
        self._ensure_index()
        if not self._value_index_built:
            self.build_value_index()
        return self.values.lookup(tag, value)

    def record_of(self, posting: Posting) -> NodeRecord:
        """Fetch the full node record behind a posting."""
        return self.store.read(posting.doc_id, posting.node_id)

    # ------------------------------------------------------------------
    # lifecycle / accounting
    # ------------------------------------------------------------------
    def cold_cache(self) -> None:
        """Drop the buffer pool: the paper measures with a cold cache."""
        self.pool.drop_all()

    def reset_cost(self, cold: bool = True) -> None:
        """Zero the cost counters (and optionally chill the cache)."""
        if cold:
            self.cold_cache()
        self.cost.reset()

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = dict(self.store.stats())
        out.update(self.cost.snapshot())
        return out

    def publish_metrics(self) -> None:
        """Fold this DB's cost counters (page I/O, buffer hits/misses)
        into the active observability registry, labelled as the timber
        component.  No-op when tracing is off."""
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.absorb_cost(self.cost, component="timber")

    def new_budget(
        self, capacity_entries: Optional[int] = None, fail_on_overflow: bool = False
    ) -> MemoryBudget:
        """A fresh operator memory budget bound to this DB's page maths."""
        return MemoryBudget(
            capacity_entries or self.memory.capacity_entries,
            fail_on_overflow=fail_on_overflow,
            entries_per_page=self.disk.page_capacity,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.store.stats()
        return (
            f"<TimberDB docs={stats['documents']} nodes={stats['nodes']} "
            f"pages={stats['pages']}>"
        )
