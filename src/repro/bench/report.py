"""Rendering of figure and serving results: ASCII for the terminal,
plus a dependency-free HTML serving report for CI artifacts."""

from __future__ import annotations

import html
from typing import TYPE_CHECKING, List

from repro.bench.figures import FigureSpec, series_of
from repro.bench.harness import AlgorithmRun

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> bench)
    from repro.serve.server import CubeServer


def format_figure(spec: FigureSpec, runs: List[AlgorithmRun]) -> str:
    """Render one figure's runs: a series table (axes sweep) or a bar
    chart (single-point figures like Fig. 10)."""
    lines = [
        f"== {spec.figure_id}: {spec.title}",
        f"   expected shape: {spec.expected_shape}",
        "",
    ]
    series = series_of(runs)
    axis_values = sorted({run.n_axes for run in runs})
    if len(axis_values) > 1:
        header = ["algorithm".ljust(10)] + [
            f"{axis:>10}" for axis in axis_values
        ]
        lines.append("   sim-seconds by # of axes")
        lines.append("   " + " ".join(header))
        for algorithm in spec.algorithms:
            cells = dict(series.get(algorithm, []))
            row = [algorithm.ljust(10)] + [
                f"{cells[axis]:>10.3f}" if axis in cells else " " * 10
                for axis in axis_values
            ]
            lines.append("   " + " ".join(row))
    else:
        lines.append("   sim-seconds (bar chart)")
        peak = max(run.simulated_seconds for run in runs) or 1.0
        for run in runs:
            name = (
                run.algorithm
                if run.encoding == "auto"
                else f"{run.algorithm}[{run.encoding}]"
            )
            bar = "#" * max(1, int(40 * run.simulated_seconds / peak))
            flag = "" if run.correct in (None, True) else "  [INCORRECT]"
            lines.append(
                f"   {name:<10} {run.simulated_seconds:>10.3f} "
                f"{bar}{flag}"
            )
    wrong = [run for run in runs if run.correct is False]
    if wrong and len(axis_values) > 1:
        names = sorted({run.algorithm for run in wrong})
        lines.append(
            f"   note: incorrect results (as the paper expects here): "
            f"{', '.join(names)}"
        )
    thrash = [run for run in runs if run.passes > 1]
    if thrash:
        worst = max(thrash, key=lambda run: run.passes)
        lines.append(
            f"   note: COUNTER multi-pass thrash up to {worst.passes} "
            f"passes at {worst.n_axes} axes"
        )
    return "\n".join(lines)


def format_runs_csv(runs: List[AlgorithmRun]) -> str:
    """Machine-readable dump of all runs."""
    header = (
        "workload,algorithm,axes,facts,sim_seconds,wall_seconds,"
        "cells,passes,correct,dnf,workers,engine,par_sim_seconds,"
        "merge_seconds,queue_wait_seconds,encoding"
    )
    lines = [header]
    for run in runs:
        row = run.as_row()
        lines.append(
            ",".join(str(row[column]) for column in header.split(","))
        )
    return "\n".join(lines)


def format_smoke(runs: List[AlgorithmRun]) -> str:
    """Render the smoke benchmark: serial vs parallel per algorithm."""
    lines = [
        "== smoke: parallel engine vs serial, "
        f"{runs[0].workload if runs else '?'}",
        f"   {'algorithm':<10} {'workers':>7} {'engine':>8} "
        f"{'sim-s':>10} {'par-sim-s':>10} {'speedup':>8} {'wall-s':>10} "
        f"{'ok':>4}",
    ]
    for run in runs:
        ok = "-" if run.correct is None else ("yes" if run.correct else "NO")
        lines.append(
            f"   {run.algorithm:<10} {run.workers:>7} {run.engine:>8} "
            f"{run.simulated_seconds:>10.4f} {run.par_sim_seconds:>10.4f} "
            f"{run.modeled_speedup:>7.2f}x {run.wall_seconds:>10.4f} "
            f"{ok:>4}"
        )
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: monospace; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.7em; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
p.note { color: #666; }
""".strip()


def _html_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    """One table; a header or cell starting with ``<`` is left-aligned."""

    def cell(tag: str, text: str) -> str:
        left = text.startswith("<")
        body = html.escape(text[1:] if left else text)
        attr = " class='l'" if left else ""
        return f"<{tag}{attr}>{body}</{tag}>"

    lines = ["<table>"]
    lines.append("<tr>" + "".join(cell("th", h) for h in headers) + "</tr>")
    for row in rows:
        lines.append("<tr>" + "".join(cell("td", c) for c in row) + "</tr>")
    lines.append("</table>")
    return lines


def format_serving_html(server: "CubeServer") -> str:
    """A standalone HTML serving report: the ``x3-top`` dashboard as
    tables (windows, ladder rungs, hottest points, cache residency).

    No chart libraries and no external assets — the file is attached
    as a CI artifact and has to render anywhere.
    """
    from repro.obs.live import WINDOW_QUANTILES
    from repro.serve.server import TIERS

    stats = server.stats()
    snapshots = server.telemetry.refresh_gauges()
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>x3 serving report</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>x3 serving report</h1>",
        "<p>"
        + html.escape(
            f"version {stats.version}: {stats.requests} requests, "
            f"hit rate {stats.hit_rate:.0%}, modeled "
            f"{stats.modeled_cost_seconds:.4f}s vs cold "
            f"{stats.cold_cost_seconds:.4f}s "
            f"({stats.modeled_speedup:.1f}x), {stats.writes} writes"
        )
        + "</p>",
        "<h2>sliding windows</h2>",
    ]
    quantile_heads = [
        f"p{int(q * 100):02d} modeled" for q in WINDOW_QUANTILES
    ]
    out += _html_table(
        ["<window", "requests"]
        + quantile_heads
        + ["hit ratio", "churn", "SLO burn"],
        [
            [
                f"<{snap.window_seconds:g}s",
                str(snap.requests),
            ]
            + [
                f"{snap.modeled_quantiles[q]:.3e}" for q in WINDOW_QUANTILES
            ]
            + [
                f"{snap.hit_ratio:.0%}",
                str(snap.evictions),
                f"{snap.slo_burn_rate:.2f}",
            ]
            for snap in snapshots
        ],
    )
    out.append(
        "<p class='note'>modeled-latency quantiles (simulated seconds); "
        "SLO burn = violating fraction / error budget</p>"
    )
    out.append("<h2>sound-source ladder</h2>")
    out += _html_table(
        ["<rung", "requests"],
        [
            [f"<{tier}", str(stats.tiers.get(tier, 0))]
            for tier in TIERS
            if stats.tiers.get(tier, 0)
        ],
    )
    if snapshots and snapshots[0].top_points:
        out.append(
            "<h2>hottest lattice points "
            f"({snapshots[0].window_seconds:g}s window)</h2>"
        )
        out += _html_table(
            ["<point", "requests"],
            [
                [f"<{point}", str(count)]
                for point, count in snapshots[0].top_points
            ],
        )
    out.append(
        "<h2>cache residency "
        f"({stats.cache_used_cells}/{stats.cache_budget_cells} cells)</h2>"
    )
    entries = sorted(
        server.cache.entries(), key=lambda e: (-e.size, e.point)
    )
    out += _html_table(
        ["<point", "cells", "hits", "priority"],
        [
            [
                f"<{server.lattice.describe(entry.point)}",
                str(entry.size),
                str(entry.hits),
                f"{entry.priority:.4e}",
            ]
            for entry in entries
        ],
    )
    out.append("</body></html>")
    return "\n".join(out)
