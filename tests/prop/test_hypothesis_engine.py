"""Property-based tests for the parallel execution engine: on random
``datagen.workload`` configurations, every registered algorithm run
through the engine (any worker count, any pool) produces exactly the
cube the serial NAIVE oracle produces."""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.registry import available
from repro.core.cube import ExecutionOptions, compute_cube
from repro.datagen.workload import WorkloadConfig, build_workload

# Coverage + disjointness hold on these workloads (and the workload
# oracle reports them truthfully), so *every* registered algorithm —
# including the optimized variants that assume the properties — must
# match NAIVE exactly.
ALGORITHMS = tuple(available())
WORKER_COUNTS = (1, 2, 4)


@lru_cache(maxsize=None)
def _prepared(n_facts, n_axes, density, seed):
    config = WorkloadConfig(
        kind="treebank",
        n_facts=n_facts,
        n_axes=n_axes,
        density=density,
        coverage=True,
        disjoint=True,
        seed=seed,
    )
    workload = build_workload(config)
    table = workload.fact_table()
    oracle = workload.oracle(table)
    reference = compute_cube(table, ExecutionOptions(algorithm="NAIVE"))
    return table, oracle, reference


workload_params = st.tuples(
    st.integers(min_value=5, max_value=60),       # n_facts
    st.integers(min_value=2, max_value=3),        # n_axes
    st.sampled_from(["sparse", "dense"]),         # density
    st.integers(min_value=0, max_value=5),        # seed
)


@given(
    params=workload_params,
    algorithm=st.sampled_from(ALGORITHMS),
    workers=st.sampled_from(WORKER_COUNTS),
    strategy=st.sampled_from(["balanced", "antichain", "axis"]),
)
@settings(max_examples=60, deadline=None)
def test_parallel_engine_matches_serial_naive(
    params, algorithm, workers, strategy
):
    table, oracle, reference = _prepared(*params)
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm=algorithm,
            oracle=oracle,
            workers=workers,
            engine="thread" if workers > 1 else "auto",
            partition_strategy=strategy,
        ),
    )
    assert result.same_contents(reference), (
        algorithm,
        workers,
        strategy,
        result.diff(reference)[:3],
    )


@given(params=workload_params)
@settings(max_examples=10, deadline=None)
def test_process_engine_matches_serial_naive(params):
    table, oracle, reference = _prepared(*params)
    result = compute_cube(
        table,
        ExecutionOptions(
            algorithm="BUC",
            oracle=oracle,
            workers=2,
            engine="process",
        ),
    )
    assert result.same_contents(reference), result.diff(reference)[:3]


def test_every_algorithm_every_worker_count_deterministic():
    """Non-random safety net: the full algorithm line-up at every worker
    count on one fixed workload."""
    table, oracle, reference = _prepared(40, 3, "sparse", 42)
    for algorithm in ALGORITHMS:
        for workers in WORKER_COUNTS:
            result = compute_cube(
                table,
                ExecutionOptions(
                    algorithm=algorithm,
                    oracle=oracle,
                    workers=workers,
                ),
            )
            assert result.same_contents(reference), (algorithm, workers)
