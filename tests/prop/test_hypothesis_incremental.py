"""Property-based tests for IncrementalCube deletion support.

Deletion is defined for the invertible aggregates (COUNT/SUM/AVG): an
insert-then-delete round trip must land exactly on the recomputed cube
of the surviving facts, fully-retracted groups must vanish from every
cuboid, and the non-invertible aggregates (MIN/MAX) must refuse.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.bindings import AnnotatedValue, FactRow, FactTable
from repro.core.cube import compute_cube
from repro.core.incremental import IncrementalCube
from repro.core.lattice import CubeLattice
from repro.errors import CubeError
from repro.patterns.relaxation import Relaxation

VALUES = ["u", "v", "w"]


def _axes():
    return [
        AxisSpec.from_path("$a", "a", frozenset({Relaxation.LND})),
        AxisSpec.from_path("$b", "b", frozenset({Relaxation.LND})),
    ]


def _spec(function):
    if function == "COUNT":
        return AggregateSpec()
    return AggregateSpec(function=function, measure_path="@m")


@st.composite
def rows_strategy(draw, min_size=0, max_size=10, id_offset=0):
    """Fact rows with unique ids and integer-valued measures (so float
    subtraction in deletion is exact)."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    rows = []
    for number in range(count):
        axes_values = tuple(
            tuple(
                AnnotatedValue(value, 0b1)
                for value in draw(
                    st.lists(st.sampled_from(VALUES), unique=True, max_size=2)
                )
            )
            for _ in range(2)
        )
        measure = float(draw(st.integers(min_value=0, max_value=9)))
        rows.append(FactRow((0, id_offset + number), measure, axes_values))
    return rows


@given(
    initial=rows_strategy(max_size=8),
    delta=rows_strategy(min_size=1, max_size=6, id_offset=1000),
    function=st.sampled_from(["COUNT", "SUM", "AVG"]),
)
@settings(max_examples=40, deadline=None)
def test_insert_then_delete_round_trips(initial, delta, function):
    lattice = CubeLattice(_axes())
    table = FactTable(lattice, list(initial), aggregate=_spec(function))
    live = IncrementalCube(table)
    live.insert(list(delta))
    live.delete(list(delta))

    reference_table = FactTable(
        CubeLattice(_axes()), list(initial), aggregate=_spec(function)
    )
    reference = compute_cube(reference_table, "NAIVE")
    maintained = live.as_result()
    for point in lattice.points():
        assert maintained.cuboids[point] == reference.cuboids[point]
    assert live.applied_rows == len(initial)


@given(rows=rows_strategy(min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_full_retraction_empties_every_cuboid(rows):
    lattice = CubeLattice(_axes())
    table = FactTable(lattice, list(rows), aggregate=_spec("SUM"))
    live = IncrementalCube(table)
    live.delete(list(rows))
    for point in lattice.points():
        assert live.cuboid(point) == {}
    assert live.applied_rows == 0
    assert live.table.rows == []


@given(
    rows=rows_strategy(min_size=1, max_size=6),
    function=st.sampled_from(["MIN", "MAX"]),
)
@settings(max_examples=20, deadline=None)
def test_non_invertible_deletion_refused(rows, function):
    lattice = CubeLattice(_axes())
    table = FactTable(lattice, list(rows), aggregate=_spec(function))
    live = IncrementalCube(table)
    with pytest.raises(CubeError):
        live.delete([rows[0]])
    # the refusal must not have mutated the table
    assert len(live.table.rows) == len(rows)


@given(
    rows=rows_strategy(min_size=2, max_size=8),
    function=st.sampled_from(["COUNT", "SUM", "AVG"]),
)
@settings(max_examples=30, deadline=None)
def test_partial_deletion_matches_recompute(rows, function):
    """Deleting an arbitrary prefix leaves exactly the suffix's cube."""
    cut = len(rows) // 2
    doomed, kept = rows[:cut], rows[cut:]
    if not doomed:
        return
    lattice = CubeLattice(_axes())
    table = FactTable(lattice, list(rows), aggregate=_spec(function))
    live = IncrementalCube(table)
    live.delete(list(doomed))

    reference = compute_cube(
        FactTable(CubeLattice(_axes()), list(kept), aggregate=_spec(function)),
        "NAIVE",
    )
    for point in lattice.points():
        assert live.cuboid(point) == reference.cuboids[point]
