"""HTTP front-door benchmark: load-generator latency distribution.

Boots a real :class:`repro.server.X3HttpServer` (socket transport, not
the in-process API core) over a single :class:`repro.serve.CubeServer`,
drives it with the deterministic closed-loop load generator, and writes
the resulting latency distribution to ``BENCH_server.json`` at the
repository root.  The acceptance signal is the modeled latency columns
— the wall-clock columns ride along for operator context but vary with
the host.  The modeled p95 of the same replay is separately pinned by
the perf gate (``server_p95_modeled_seconds``); this artifact is the
richer companion: per-status counts, per-op mix, admission stats and
both quantile families.
"""

import json
import pathlib

import pytest

from repro.bench.runner import bench_artifact_path, write_bench_artifact
from repro.obs.live import LiveTelemetry
from repro.serve import CubeServer
from repro.server import (
    AdmissionController,
    CubeCatalog,
    LoadGenerator,
    LogicalCube,
    X3Api,
    X3HttpServer,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_PATH = bench_artifact_path("server", REPO_ROOT)

CLIENTS = 4
REQUESTS_PER_CLIENT = 30
SEED = 17
QUANTILES = (0.50, 0.95, 0.99)


@pytest.fixture(scope="module")
def server_load(dense_cov_disj):
    table = dense_cov_disj.table
    backend = CubeServer(table, dense_cov_disj.oracle)
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("bench", table.lattice), backend
    )
    api = X3Api(catalog, admission=AdmissionController(64))
    telemetry = LiveTelemetry()
    with X3HttpServer(api) as front:
        generator = LoadGenerator(
            front.host,
            front.port,
            "bench",
            table.lattice,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            seed=SEED,
            telemetry=telemetry,
        )
        report = generator.run()
    ops = {}
    for record in report.records:
        ops[record.op] = ops.get(record.op, 0) + 1
    payload = {
        "workload": {
            "kind": dense_cov_disj.config.kind,
            "n_facts": dense_cov_disj.config.n_facts,
            "n_axes": dense_cov_disj.config.n_axes,
            "density": dense_cov_disj.config.density,
        },
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "seed": SEED,
        "statuses": {
            str(status): count
            for status, count in sorted(report.statuses.items())
        },
        "ops": ops,
        "modeled_quantiles": {
            str(q): report.modeled_quantiles[q] for q in QUANTILES
        },
        "wall_quantiles": {
            str(q): report.wall_quantiles[q] for q in QUANTILES
        },
        "admission": api.admission.stats(),
        "backend_hit_rate": backend.stats().hit_rate,
    }
    write_bench_artifact("server", payload, REPO_ROOT)
    return report, telemetry, api


def test_writes_bench_server_json(server_load):
    assert OUT_PATH.exists()
    document = json.loads(OUT_PATH.read_text())
    assert document["clients"] == CLIENTS
    assert document["modeled_quantiles"]["0.95"] > 0.0


def test_every_request_answered(server_load):
    report, _, _ = server_load
    assert report.requests == CLIENTS * REQUESTS_PER_CLIENT
    # A generously sized admission budget sheds nothing; every request
    # must come back 200 over the real socket transport.
    assert set(report.statuses) == {200}, report.statuses


def test_quantiles_are_ordered(server_load):
    report, _, _ = server_load
    modeled = [report.modeled_quantiles[q] for q in QUANTILES]
    assert modeled == sorted(modeled), modeled
    assert modeled[0] > 0.0


def test_telemetry_absorbed_the_run(server_load):
    report, telemetry, _ = server_load
    explains = sum(1 for r in report.records if r.op == "explain")
    window = telemetry.snapshot()
    # Every answered non-explain request re-enters the serving
    # telemetry pipeline as a synthesized RequestEvent.
    assert window.requests == report.ok - explains


def test_admission_saw_every_request(server_load):
    report, _, api = server_load
    stats = api.admission.stats()
    assert stats["admitted"] == report.requests
    assert stats["rejected"] == 0
    assert 1 <= stats["peak_inflight"] <= CLIENTS
