"""The ``x3-serve`` command line tool: serve cube queries over XML files.

Usage::

    x3-serve --query query.xq data.xml
    x3-serve --query query.xq data.xml --requests 200 --cache-cells 2048
    x3-serve --query query.xq data.xml --view-cells 512 --warm
    x3-serve --query query.xq data.xml --cuboid '$n:LND, $y:rigid'

Without ``--cuboid`` the tool replays a deterministic, skewed request
workload (``--requests`` samples over the lattice, biased towards fine
cuboids like real dashboards) against a :class:`repro.serve.CubeServer`
and reports the resolution-tier breakdown, cache behaviour and modeled
cost against cold recomputation.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core.cube import ENGINE_CHOICES, ExecutionOptions
from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.xq_parser import parse_x3_query
from repro.errors import X3Error
from repro.serve.server import TIERS, CubeServer
from repro.xmlmodel.parser import parse_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-serve",
        description=(
            "Serve X^3 cube queries (cache + views + sound roll-up + "
            "engine recompute) over XML files."
        ),
    )
    parser.add_argument("files", nargs="+", help="XML input files")
    parser.add_argument(
        "--query", required=True, help="file holding the X^3 FLWOR text"
    )
    parser.add_argument(
        "--cache-cells",
        type=int,
        default=4096,
        help="cuboid cache budget in cells (default 4096; 0 disables)",
    )
    parser.add_argument(
        "--view-cells",
        type=int,
        default=0,
        help="materialized-view space budget in cells (default 0: no"
        " views)",
    )
    parser.add_argument(
        "--oracle",
        choices=("data", "none"),
        default="data",
        help="property oracle for sound roll-ups: 'data' measures the"
        " fact table, 'none' is pessimistic (no roll-up tier)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="pre-fill the cache with the best-fitting cuboids",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        help="replayed requests (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="replay sampling seed (default 7)",
    )
    parser.add_argument(
        "--cuboid",
        action="append",
        metavar="DESC",
        help="serve and print one cuboid instead of replaying, e.g."
        " '$n:LND, $y:rigid'; repeatable",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows shown per printed cuboid (default 10)",
    )
    parser.add_argument(
        "--algorithm",
        default="NAIVE",
        help="recompute algorithm (default NAIVE)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker pool for recomputes (default 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine for recomputes (default auto)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the serving session and print a span summary",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="with --profile: write a Chrome trace_event JSON file",
    )
    return parser


def sample_points(lattice, n: int, seed: int) -> List:
    """A deterministic skewed request mix: finer points drawn more often
    (dashboards hammer detailed cuboids), with a long tail over the rest.
    """
    points = lattice.topo_finer_first()
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(points))]
    return rng.choices(points, weights=weights, k=n)


def _print_cuboid(server: CubeServer, description: str, top: int) -> None:
    lattice = server.lattice
    point = lattice.point_by_description(description)
    cuboid = server.cuboid(point)
    print(f"-- {lattice.describe(point)} ({len(cuboid)} groups)")
    rows = sorted(cuboid.items(), key=lambda item: (-item[1], item[0]))
    for key, value in rows[:top]:
        label = ", ".join(part if part is not None else "-" for part in key)
        print(f"   ({label}): {value:g}")
    if len(rows) > top:
        print(f"   ... {len(rows) - top} more")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace_out and not args.profile:
        print("error: --trace-out requires --profile", file=sys.stderr)
        return 1
    from repro import obs

    session = obs.trace() if args.profile else None
    tracer = session.__enter__() if session is not None else None
    try:
        try:
            with open(args.query, "r", encoding="utf-8") as handle:
                query = parse_x3_query(handle.read())
            docs = [parse_file(path) for path in args.files]
            table = extract_fact_table(docs, query)
        except (OSError, X3Error) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

        oracle = (
            PropertyOracle.from_data(table)
            if args.oracle == "data"
            else None
        )
        try:
            server = CubeServer(
                table,
                oracle,
                options=ExecutionOptions(
                    algorithm=args.algorithm,
                    workers=args.workers,
                    engine=args.engine,
                ),
                cache_cells=args.cache_cells,
                view_cells=args.view_cells,
            )
            if args.warm:
                warmed = server.warm()
                print(
                    f"warmed {len(warmed)} cuboids "
                    f"({server.cache.used_cells} cells)"
                )
            if args.cuboid:
                for description in args.cuboid:
                    try:
                        _print_cuboid(server, description, args.top)
                    except KeyError as error:
                        print(
                            f"error: unknown cuboid {error}",
                            file=sys.stderr,
                        )
                        return 1
            else:
                for point in sample_points(
                    table.lattice, args.requests, args.seed
                ):
                    server.cuboid(point)
        except X3Error as error:
            print(f"error: {error}", file=sys.stderr)
            return 1

        stats = server.stats()
        print(
            f"{len(table)} facts, {table.lattice.size()} cuboids, "
            f"cache {stats.cache_used_cells}/{stats.cache_budget_cells}"
            f" cells, {stats.view_points} views"
        )
        print(f"serve: {stats.summary()}")
        print(
            "tiers: "
            + ", ".join(
                f"{tier}={stats.tiers.get(tier, 0)}" for tier in TIERS
            )
        )
        cache = stats.cache
        print(
            f"cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['evictions']} evictions, "
            f"{cache['rejections']} rejections"
        )
        if stats.singleflight_shared:
            print(
                f"single-flight: {stats.singleflight_shared} deduplicated"
                f" of {stats.singleflight_led} computes"
            )
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    if tracer is not None:
        report = tracer.trace()
        print("profile (top spans by wall time):")
        for line in report.summary(top=args.top).splitlines():
            print(f"   {line}")
        if args.trace_out:
            report.write_chrome(args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
