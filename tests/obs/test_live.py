"""Unit tests for live serving telemetry (repro.obs.live)."""

import pytest

from repro.obs.events import EvictionRecord, RequestEvent
from repro.obs.export import prometheus_text
from repro.obs.live import (
    SERVE_LATENCY_BUCKETS,
    WINDOW_QUANTILES,
    LiveTelemetry,
    percentile,
)


class FakeClock:
    """An injectable monotonic clock tests advance by hand."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def request(tier="cache", point="$a:rigid", modeled=1e-5, wall=2e-5):
    return RequestEvent(
        seq=0,
        kind="cuboid",
        point=point,
        tier=tier,
        version=0,
        modeled_seconds=modeled,
        cold_seconds=1e-2,
        wall_seconds=wall,
        cells=4,
    )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 0.50) == 2.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestWindows:
    def test_requires_windows(self):
        with pytest.raises(ValueError):
            LiveTelemetry(windows=())
        with pytest.raises(ValueError):
            LiveTelemetry(windows=(-5.0,))
        with pytest.raises(ValueError):
            LiveTelemetry(slo_target=1.0)

    def test_snapshot_counts_and_quantiles(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        for modeled in (1e-5, 2e-5, 3e-5, 4e-5):
            telemetry.record(request(modeled=modeled))
        snap = telemetry.snapshot()
        assert snap.requests == 4
        assert snap.modeled_quantiles[0.50] == 2e-5
        assert snap.modeled_quantiles[0.95] == 4e-5
        assert snap.hit_ratio == 1.0

    def test_old_samples_age_out_of_the_window(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        telemetry.record(request())
        clock.advance(61.0)
        telemetry.record(request())
        snap = telemetry.snapshot()
        assert snap.requests == 1

    def test_windows_see_different_horizons(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0, 300.0), clock=clock)
        telemetry.record(request())
        clock.advance(120.0)
        telemetry.record(request())
        short, long = telemetry.snapshots()
        assert short.window_seconds == 60.0
        assert short.requests == 1
        assert long.requests == 2

    def test_hit_ratio_counts_everything_above_recompute(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        for tier in ("cache", "rollup", "recompute", "recompute"):
            telemetry.record(request(tier=tier))
        snap = telemetry.snapshot()
        assert snap.hit_ratio == 0.5
        assert snap.tiers == {"cache": 1, "rollup": 1, "recompute": 2}

    def test_top_points(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock, top_k=2)
        for point in ("$a", "$a", "$a", "$b", "$b", "$c"):
            telemetry.record(request(point=point))
        snap = telemetry.snapshot()
        assert snap.top_points == (("$a", 3), ("$b", 2))

    def test_eviction_churn(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        telemetry.record_eviction(
            EvictionRecord("evicted", "$a", 0.1, 8)
        )
        clock.advance(61.0)
        telemetry.record_eviction(
            EvictionRecord("admitted", "$b", 0.2, 4)
        )
        assert telemetry.snapshot().evictions == 1


class TestSlo:
    def test_burn_rate_scales_by_error_budget(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(
            windows=(60.0,),
            clock=clock,
            slo_modeled_seconds=1e-4,
            slo_target=0.99,
        )
        # 1 violation in 100 requests burns exactly the 1% budget.
        for index in range(100):
            modeled = 1e-3 if index == 0 else 1e-5
            telemetry.record(request(modeled=modeled))
        snap = telemetry.snapshot()
        assert snap.slo_violations == 1
        assert snap.slo_burn_rate == pytest.approx(1.0)

    def test_no_traffic_means_no_burn(self):
        snap = LiveTelemetry(windows=(60.0,)).snapshot()
        assert snap.requests == 0
        assert snap.slo_burn_rate == 0.0
        assert snap.hit_ratio == 0.0


class TestRegistryExport:
    def test_counters_and_histograms(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(
            windows=(60.0,), clock=clock, slo_modeled_seconds=1e-4
        )
        telemetry.record(request(tier="cache", modeled=1e-5))
        telemetry.record(request(tier="recompute", modeled=1e-2))
        registry = telemetry.registry
        assert registry.value(
            "x3_serve_requests_total", tier="cache"
        ) == 1.0
        assert registry.value("x3_serve_slo_violations_total") == 1.0

    def test_refresh_gauges_and_prometheus_names(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        telemetry.record(request())
        telemetry.record_eviction(
            EvictionRecord("admitted", "$a", 0.2, 4)
        )
        snapshots = telemetry.refresh_gauges()
        assert len(snapshots) == 1
        text = prometheus_text(telemetry.registry)
        for name in (
            "x3_serve_requests_total",
            "x3_serve_request_modeled_seconds",
            "x3_serve_request_wall_seconds",
            "x3_serve_cache_audit_total",
            "x3_serve_window_modeled_latency_seconds",
            "x3_serve_window_wall_latency_seconds",
            "x3_serve_window_requests",
            "x3_serve_window_hit_ratio",
            "x3_serve_window_eviction_churn",
            "x3_serve_window_slo_burn_rate",
        ):
            assert name in text, name
        assert 'window="60s"' in text
        assert 'quantile="p95"' in text

    def test_gauge_values_match_snapshot(self):
        clock = FakeClock()
        telemetry = LiveTelemetry(windows=(60.0,), clock=clock)
        for modeled in (1e-5, 2e-5, 3e-5):
            telemetry.record(request(modeled=modeled))
        snap = telemetry.refresh_gauges()[0]
        for q in WINDOW_QUANTILES:
            assert telemetry.registry.value(
                "x3_serve_window_modeled_latency_seconds",
                window="60s",
                quantile=snap.quantile_label(q),
            ) == snap.modeled_quantiles[q]

    def test_buckets_cover_the_modeled_range(self):
        assert SERVE_LATENCY_BUCKETS[0] <= 1e-6
        assert SERVE_LATENCY_BUCKETS[-1] == float("inf")
