#!/usr/bin/env python3
"""Electronic-catalog analytics with cost-based algorithm planning.

The intro's third motivating domain: heterogeneous vendor catalog feeds.
This example shows the planner path a downstream system would use:

1. collect cheap statistics of the extracted fact table;
2. let the analytic cost estimator rank the algorithm line-up;
3. run the predicted winner, then verify the prediction against the
   actual simulated costs;
4. export the cube as an XML document and read it back.

Run:  python examples/catalog_planner.py
"""

from repro.core.cube import compute_cube
from repro.core.estimate import CostEstimator
from repro.core.export import cube_from_xml, cube_to_xml
from repro.core.extract import extract_fact_table
from repro.datagen.catalog import CatalogConfig, catalog_query, generate_catalog

ALGORITHMS = ["COUNTER", "BUC", "TD", "TDOPT", "TDOPTALL"]


def main() -> None:
    doc = generate_catalog(CatalogConfig(n_products=600, seed=13))
    query = catalog_query()
    table = extract_fact_table(doc, query)
    print(f"catalog: {len(table)} products, "
          f"{table.lattice.size()} cuboids")

    # 1-2. Statistics + predicted ranking.
    estimator = CostEstimator(table, memory_entries=4000)
    print("\npredicted cost ranking:")
    for name in estimator.rank(ALGORITHMS):
        print(f"   {name:<9} ~{estimator.estimate(name):.4f} sim-s")

    # 3. Run everything; compare predicted vs actual ordering.
    print("\nactual:")
    actual = {}
    for name in ALGORITHMS:
        result = compute_cube(table, name, memory_entries=4000)
        actual[name] = result.simulated_seconds
        print(f"   {name:<9}  {result.simulated_seconds:.4f} sim-s")
    predicted_winner = estimator.rank(ALGORITHMS)[0]
    actual_winner = min(actual, key=actual.get)
    print(f"\npredicted winner: {predicted_winner}; "
          f"actual winner: {actual_winner}")
    print("(cost is only half the story: TDOPT/TDOPTALL also require")
    print(" summarizability to be *correct* — see the Sec. 4.6 advisor")
    print(" in repro.warehouse, which gates on the property oracle)")

    # The business question: product counts by (category, brand), with
    # PC-AD recovering the nested vendor shapes.
    cube = compute_cube(table, actual_winner)
    cuboid = cube.cuboid_by_description("$c:PC-AD, $b:PC-AD")
    top = sorted(cuboid.items(), key=lambda kv: -kv[1])[:5]
    print("\nbusiest (category, brand) cells (all vendor shapes):")
    for key, count in top:
        print(f"   {key}: {int(count)}")

    # 4. Persist and reload.
    text = cube_to_xml(cube, query=query)
    again = cube_from_xml(text, table.lattice)
    assert again.same_contents(cube)
    print(f"\ncube XML round-trip verified ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
