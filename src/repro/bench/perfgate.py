"""The CI performance-regression gate (``python -m repro.bench.perfgate``).

Collects a small battery of **modeled** performance metrics — the
deterministic cost-model numbers the whole benchmark suite is built on,
host-independent by construction — and compares them against a baseline
committed to the repository.  A metric that regresses by more than the
tolerance (default 25%) fails the build; improvements merely update the
report.

Metrics:

- ``engine_serial_seconds`` — simulated seconds of a serial NAIVE run
  over the standard dense/covered/disjoint workload;
- ``engine_parallel_critical_path_seconds`` — the busiest worker's
  simulated seconds under the 4-worker thread engine (the engine's
  modeled latency);
- ``engine_modeled_speedup`` — serial work over critical path;
- ``serve_cold_seconds`` — total modeled cost of the standard serve
  replay with a zero cache budget (every request recomputes);
- ``serve_warm_seconds`` — the same replay with a full-lattice budget;
- ``serve_hit_rate`` — fraction of replayed requests answered above the
  recompute tier at the standard budget;
- ``serve_p95_modeled_seconds`` — p95 modeled request latency of the
  warm replay, straight from the live-telemetry window (the SLO the
  serving layer reports in production);
- ``cluster_p95_modeled_seconds`` — p95 modeled request latency of the
  same replay scatter-gathered over a 4-shard / 2-replica cluster with
  cold replicas (every shard read recomputes its slice), the cluster
  layer's fan-out SLO;
- ``server_p95_modeled_seconds`` — p95 modeled latency of the same
  replay driven through the complete HTTP front-door request path
  (route parsing, logical-model binding, JSON encode/decode) via the
  transport-independent :class:`repro.server.X3Api` — single-threaded
  and on the modeled time base, so the number is deterministic while
  still covering every layer a socket request crosses;
- ``columnar_speedup_vs_dict`` — modeled COUNTER-over-COLUMNAR ratio on
  the gate workload.  Besides the relative tolerance, this metric has an
  **absolute floor** (:data:`ABSOLUTE_FLOORS`): the build fails outright
  if the columnar sweep is less than 3x faster than the dict counter at
  smoke scale, baseline or no baseline;
- ``buc_columnar_speedup_vs_dict`` / ``td_columnar_speedup_vs_dict`` —
  modeled dict-kernel-over-columnar-kernel ratio for the BUC and TD
  algorithms on the gate workload (the same algorithm run twice, pinned
  to each encoding).  Both carry a 2.0 absolute floor: the columnar
  BUC/TD kernels must stay at least 2x under their dict counterparts;
- ``tracing_overhead_ratio`` — the warm serve replay's p95 modeled
  latency with a :class:`repro.obs.trace_store.TraceStore` attached at
  full sampling, over the same replay untraced.  Tracing must never
  leak into the cost model: spans observe modeled time, they do not
  spend it.  The metric carries an **absolute ceiling**
  (:data:`ABSOLUTE_CEILINGS`) of 1.10 — the build fails outright if the
  traced replay models more than 10% slower, baseline or no baseline;
- ``lang_parse_compile_overhead_ratio`` — the same front-door replay
  expressed as X^3QL text through ``POST /api/v1/query`` (tokenize,
  parse, compile through the logical model, then serve), over the raw
  JSON endpoint replay.  The language layer charges a deterministic
  per-token modeled cost (:func:`repro.lang.compiler.modeled_lang_seconds`)
  folded into each response's ``modeled_seconds``, so the ratio is
  reproducible; its 1.10 absolute ceiling keeps the text front door
  within 10% of speaking the wire format directly.

Refresh the committed baseline after an intentional perf change::

    python -m repro.bench.perfgate --update \
        --baseline benchmarks/baselines/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.core.query import Query
from repro.serve import CubeServer
from repro.serve.cli import sample_points
from repro.testing import treebank_workload

#: Metric name -> direction; "lower" fails when the value grows, and
#: "higher" fails when it shrinks.
METRIC_DIRECTIONS = {
    "engine_serial_seconds": "lower",
    "engine_parallel_critical_path_seconds": "lower",
    "engine_modeled_speedup": "higher",
    "serve_cold_seconds": "lower",
    "serve_warm_seconds": "lower",
    "serve_hit_rate": "higher",
    "serve_p95_modeled_seconds": "lower",
    "cluster_p95_modeled_seconds": "lower",
    "server_p95_modeled_seconds": "lower",
    "columnar_speedup_vs_dict": "higher",
    "buc_columnar_speedup_vs_dict": "higher",
    "td_columnar_speedup_vs_dict": "higher",
    "tracing_overhead_ratio": "lower",
    "lang_parse_compile_overhead_ratio": "lower",
}

#: Hard minimums enforced regardless of the committed baseline: a
#: "higher" metric below its floor fails the gate even if the baseline
#: agrees (a baseline refresh must never launder an absolute regression).
ABSOLUTE_FLOORS = {
    "columnar_speedup_vs_dict": 3.0,
    "buc_columnar_speedup_vs_dict": 2.0,
    "td_columnar_speedup_vs_dict": 2.0,
}

#: Hard maximums, the floor's mirror image: a "lower" metric above its
#: ceiling fails the gate regardless of the committed baseline.
ABSOLUTE_CEILINGS = {
    "tracing_overhead_ratio": 1.10,
    "lang_parse_compile_overhead_ratio": 1.10,
}

WORKERS = 4
REPLAY_REQUESTS = 80
REPLAY_SEED = 13
CLUSTER_SHARDS = 4
CLUSTER_REPLICAS = 2


def collect_metrics() -> Dict[str, float]:
    """Run the gate workloads and return the modeled metric values."""
    prepared = treebank_workload("dense", coverage=True, disjoint=True)
    serial = prepared.run("NAIVE", workers=1)
    parallel = prepared.run("NAIVE", workers=WORKERS, engine="thread")

    table = prepared.table
    replay = sample_points(table.lattice, REPLAY_REQUESTS, REPLAY_SEED)

    def replay_server(cache_cells: int, trace_store=None) -> CubeServer:
        server = CubeServer(
            table,
            prepared.oracle,
            cache_cells=cache_cells,
            trace_store=trace_store,
        )
        for point in replay:
            server.query(Query(point=point))
        return server

    from repro.core.materialize import cuboid_sizes

    total_cells = sum(cuboid_sizes(table, table.lattice).values())
    cold = replay_server(0).stats()
    warm_server = replay_server(total_cells)
    warm = warm_server.stats()
    # The whole replay lands inside the shortest telemetry window, so
    # the p95 is over all 80 requests — deterministic because it is a
    # quantile of modeled (not wall) latencies.
    warm_window = warm_server.telemetry.snapshot()

    # The same warm replay with every request traced at full sampling:
    # spans must observe modeled time, never add to it, so the p95
    # ratio stays ~1.0 (the gate's absolute ceiling is 1.10).
    from repro.obs.trace_store import TraceStore

    traced_window = replay_server(
        total_cells, trace_store=TraceStore(seed=REPLAY_SEED)
    ).telemetry.snapshot()

    from repro.cluster import ClusterCoordinator

    with ClusterCoordinator(
        table,
        CLUSTER_SHARDS,
        CLUSTER_REPLICAS,
        oracle=prepared.oracle,
        cache_cells=0,
        hedge_deadline_seconds=None,
    ) as cluster:
        for point in replay:
            cluster.query(Query(point=point))
        latencies = sorted(cluster.modeled_latencies())
    cluster_p95 = latencies[
        min(len(latencies) - 1, int(round(0.95 * (len(latencies) - 1))))
    ]

    server_p95 = _server_replay_p95(prepared, replay)
    lang_p95 = _lang_replay_p95(prepared, replay)

    counter = prepared.run("COUNTER", workers=1)
    columnar = prepared.run("COLUMNAR", workers=1)
    buc_dict = prepared.run("BUC", workers=1, encoding="dict")
    buc_columnar = prepared.run("BUC", workers=1)
    td_dict = prepared.run("TD", workers=1, encoding="dict")
    td_columnar = prepared.run("TD", workers=1)

    return {
        "engine_serial_seconds": serial.cost.simulated_seconds,
        "engine_parallel_critical_path_seconds": (
            parallel.cost.parallel_simulated_seconds
        ),
        "engine_modeled_speedup": parallel.cost.speedup_estimate,
        "serve_cold_seconds": cold.modeled_cost_seconds,
        "serve_warm_seconds": warm.modeled_cost_seconds,
        "serve_hit_rate": warm.hit_rate,
        "serve_p95_modeled_seconds": warm_window.modeled_quantiles[0.95],
        "cluster_p95_modeled_seconds": cluster_p95,
        "server_p95_modeled_seconds": server_p95,
        "columnar_speedup_vs_dict": (
            counter.cost.simulated_seconds / columnar.cost.simulated_seconds
        ),
        "buc_columnar_speedup_vs_dict": (
            buc_dict.cost.simulated_seconds
            / buc_columnar.cost.simulated_seconds
        ),
        "td_columnar_speedup_vs_dict": (
            td_dict.cost.simulated_seconds
            / td_columnar.cost.simulated_seconds
        ),
        "tracing_overhead_ratio": (
            traced_window.modeled_quantiles[0.95]
            / warm_window.modeled_quantiles[0.95]
        ),
        "lang_parse_compile_overhead_ratio": lang_p95 / server_p95,
    }


def _server_replay_p95(prepared, replay) -> float:
    """p95 modeled latency of the replay through the HTTP API core.

    The replay runs single-threaded through
    :meth:`repro.server.X3Api.handle` — the full front-door path minus
    the socket — and the latencies are the *modeled* seconds each JSON
    response reports, so the quantile is deterministic."""
    import json

    from repro.obs.live import percentile
    from repro.server import CubeCatalog, LogicalCube, X3Api

    table = prepared.table
    server = CubeServer(table, prepared.oracle)
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("gate", table.lattice), server
    )
    api = X3Api(catalog)
    latencies = []
    for point in replay:
        body = json.dumps(
            {"point": table.lattice.describe(point)}
        ).encode("utf-8")
        response = api.handle(
            "POST", "/api/v1/cubes/gate/aggregate", body
        )
        assert response.status == 200, response.body
        latencies.append(
            float(json.loads(response.body)["modeled_seconds"])
        )
    return percentile(latencies, 0.95)


def _lang_replay_p95(prepared, replay) -> float:
    """p95 modeled latency of the replay as X^3QL text statements.

    The same points as :func:`_server_replay_p95`, phrased as ``ROLLUP``
    statements against a fresh identically-configured server, driven
    through ``POST /api/v1/query``.  Each response's ``modeled_seconds``
    includes the deterministic parse+compile charge, so the ratio over
    the JSON replay isolates exactly the language layer's modeled
    overhead."""
    import json

    from repro.obs.live import percentile
    from repro.server import CubeCatalog, LogicalCube, X3Api

    table = prepared.table
    server = CubeServer(table, prepared.oracle)
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("gate", table.lattice), server
    )
    api = X3Api(catalog)
    latencies = []
    for point in replay:
        assignments = []
        for part in table.lattice.describe(point).split(", "):
            axis, _, label = part.partition(":")
            if label != "LND":
                assignments.append(f"{axis.lstrip('$')}:{label}")
        text = "ROLLUP gate"
        if assignments:
            text += " BY " + ", ".join(assignments)
        response = api.handle(
            "POST", "/api/v1/query", text.encode("utf-8")
        )
        assert response.status == 200, response.body
        latencies.append(
            float(json.loads(response.body)["modeled_seconds"])
        )
    return percentile(latencies, 0.95)


def compare(
    metrics: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
) -> List[str]:
    """Human-readable failure messages for every regressed metric."""
    failures = []
    for name, value in sorted(metrics.items()):
        floor = ABSOLUTE_FLOORS.get(name)
        if floor is not None and value < floor:
            failures.append(
                f"{name}: {value:.6f} is below the absolute floor "
                f"{floor:.6f}"
            )
        ceiling = ABSOLUTE_CEILINGS.get(name)
        if ceiling is not None and value > ceiling:
            failures.append(
                f"{name}: {value:.6f} is above the absolute ceiling "
                f"{ceiling:.6f}"
            )
        reference = baseline.get(name)
        if reference is None:
            continue  # a metric new since the baseline cannot regress
        direction = METRIC_DIRECTIONS[name]
        if direction == "lower":
            limit = reference * (1.0 + tolerance)
            if value > limit:
                failures.append(
                    f"{name}: {value:.6f} exceeds baseline "
                    f"{reference:.6f} by more than {tolerance:.0%}"
                )
        else:
            limit = reference * (1.0 - tolerance)
            if value < limit:
                failures.append(
                    f"{name}: {value:.6f} fell below baseline "
                    f"{reference:.6f} by more than {tolerance:.0%}"
                )
    return failures


def load_baseline(path: str) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        name: float(value)
        for name, value in document["metrics"].items()
    }


def write_report(path: str, metrics: Dict[str, float]) -> None:
    from repro.bench.runner import BENCH_ARTIFACT_SCHEMA

    payload = {
        "artifact": "perfgate",
        "schema": BENCH_ARTIFACT_SCHEMA,
        "metrics": metrics,
        "directions": METRIC_DIRECTIONS,
        "floors": ABSOLUTE_FLOORS,
        "ceilings": ABSOLUTE_CEILINGS,
        "workload": {
            "kind": "treebank",
            "density": "dense",
            "coverage": True,
            "disjoint": True,
        },
        "replay": {"requests": REPLAY_REQUESTS, "seed": REPLAY_SEED},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def format_markdown(
    metrics: Dict[str, float],
    baseline: Dict[str, float],
    failures: List[str],
) -> str:
    """A GitHub-flavoured markdown table of the gate's verdict.

    CI appends this to ``$GITHUB_STEP_SUMMARY`` so the metric values,
    baselines and floors are readable from the run page without digging
    through logs.
    """
    failed_names = {failure.split(":", 1)[0] for failure in failures}
    lines = [
        "### Perf gate (modeled metrics)",
        "",
        "| metric | value | baseline | floor | ceiling | direction | status |",
        "| --- | ---: | ---: | ---: | ---: | :---: | :---: |",
    ]
    for name, value in sorted(metrics.items()):
        reference = baseline.get(name)
        floor = ABSOLUTE_FLOORS.get(name)
        ceiling = ABSOLUTE_CEILINGS.get(name)
        lines.append(
            "| {name} | {value:.6f} | {reference} | {floor} |"
            " {ceiling} | {direction} | {status} |".format(
                name=f"`{name}`",
                value=value,
                reference=(
                    f"{reference:.6f}" if reference is not None else "—"
                ),
                floor=f"{floor:.1f}" if floor is not None else "—",
                ceiling=f"{ceiling:.2f}" if ceiling is not None else "—",
                direction=METRIC_DIRECTIONS[name],
                status="❌" if name in failed_names else "✅",
            )
        )
    lines.append("")
    if failures:
        lines.append("**Regressions:**")
        lines.extend(f"- {failure}" for failure in failures)
    else:
        lines.append("All metrics within tolerance.")
    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perfgate",
        description="Modeled-performance regression gate for CI.",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/BENCH_baseline.json",
        help="committed baseline JSON to compare against",
    )
    parser.add_argument(
        "--out", help="also write the collected metrics to this path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression per metric (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with the collected metrics and exit 0",
    )
    parser.add_argument(
        "--summary",
        metavar="PATH",
        help="append a markdown metric table to PATH (pass"
        ' "$GITHUB_STEP_SUMMARY" in CI)',
    )
    args = parser.parse_args(argv)

    metrics = collect_metrics()
    for name, value in sorted(metrics.items()):
        print(f"{name:45s} {value:.6f}")
    if args.out:
        write_report(args.out, metrics)
        print(f"wrote {args.out}")
    if args.update:
        write_report(args.baseline, metrics)
        print(f"updated baseline {args.baseline}")
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except OSError as error:
        print(
            f"error: cannot read baseline ({error}); run with --update "
            f"to create it",
            file=sys.stderr,
        )
        return 1
    failures = compare(metrics, baseline, args.tolerance)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(format_markdown(metrics, baseline, failures))
    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print(
        f"perf gate OK: {len(metrics)} metrics within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
