"""Unit tests for the algorithm registry."""

import pytest

from repro.core.algorithms.registry import (
    ALWAYS_CORRECT,
    META,
    NEEDS_BOTH,
    NEEDS_DISJOINTNESS,
    available,
    get_algorithm,
)
from repro.errors import CubeError


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(available()) == {
            "AUTO", "NAIVE", "COUNTER", "COLUMNAR", "BUC", "BUCOPT",
            "BUCCUST", "TD", "TDOPT", "TDOPTALL", "TDCUST",
        }

    def test_lookup_case_insensitive(self):
        assert get_algorithm("buc").name == "BUC"

    def test_unknown_raises(self):
        with pytest.raises(CubeError):
            get_algorithm("nope")

    def test_classification_partitions_lineup(self):
        tagged = (
            set(ALWAYS_CORRECT)
            | set(NEEDS_DISJOINTNESS)
            | set(NEEDS_BOTH)
            | set(META)
        )
        assert tagged == set(available())
        assert not set(ALWAYS_CORRECT) & set(NEEDS_DISJOINTNESS)

    def test_instances_are_singletons(self):
        assert get_algorithm("TD") is get_algorithm("TD")


class TestAuto:
    def test_auto_registered(self):
        assert "AUTO" in available()

    def test_auto_delegates_and_is_correct(self, fig1_table):
        from repro.core.cube import compute_cube
        from repro.core.properties import PropertyOracle

        oracle = PropertyOracle.from_data(fig1_table)
        result = compute_cube(fig1_table, "AUTO", oracle=oracle)
        assert result.algorithm.startswith("AUTO->")
        assert result.same_contents(compute_cube(fig1_table, "NAIVE"))

    def test_auto_with_pessimistic_default(self, fig1_table):
        from repro.core.cube import compute_cube

        result = compute_cube(fig1_table, "AUTO")
        assert result.same_contents(compute_cube(fig1_table, "NAIVE"))

    def test_auto_picks_safe_choice_on_clean_data(self):
        from repro.core.cube import compute_cube
        from repro.core.properties import PropertyOracle
        from tests.conftest import small_workload

        table = small_workload(
            n_facts=300, n_axes=5, density="sparse"
        ).fact_table()
        oracle = PropertyOracle.from_flags(table.lattice, True, True)
        result = compute_cube(
            table, "AUTO", oracle=oracle, memory_entries=500
        )
        # Sparse, high-dimensional, disjoint: the advisor goes bottom-up.
        assert result.algorithm == "AUTO->BUCOPT"
        assert result.same_contents(compute_cube(table, "NAIVE"))
