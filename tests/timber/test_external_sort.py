"""Unit tests for cost-accounted sorting."""

from repro.timber.external_sort import merge_sorted, quicksort_cost, sorted_with_cost
from repro.timber.stats import CostModel, MemoryBudget


class TestQuicksortCost:
    def test_trivial_sizes_free(self):
        assert quicksort_cost(0) == 0
        assert quicksort_cost(1) == 0

    def test_superlinear_growth(self):
        assert quicksort_cost(1000) > 10 * quicksort_cost(100) / 2


class TestInMemory:
    def test_sorts_correctly(self):
        cost = CostModel()
        out = sorted_with_cost([3, 1, 2], cost)
        assert out == [1, 2, 3]
        assert cost.cpu_ops > 0

    def test_key_function(self):
        cost = CostModel()
        out = sorted_with_cost(["bb", "a"], cost, key=len)
        assert out == ["a", "bb"]

    def test_no_io_when_fits(self):
        cost = CostModel()
        budget = MemoryBudget(100)
        sorted_with_cost(list(range(50)), cost, budget=budget)
        assert cost.io.total_io == 0


class TestExternal:
    def test_external_sorts_correctly(self):
        cost = CostModel()
        budget = MemoryBudget(10, entries_per_page=4)
        data = list(range(100, 0, -1))
        assert sorted_with_cost(data, cost, budget=budget) == sorted(data)

    def test_external_charges_io(self):
        cost = CostModel()
        budget = MemoryBudget(10, entries_per_page=4)
        sorted_with_cost(list(range(100)), cost, budget=budget)
        assert cost.io.page_reads > 0
        assert cost.io.page_writes > 0

    def test_external_costs_more_than_memory(self):
        small = CostModel()
        big_budget = MemoryBudget(1000)
        sorted_with_cost(list(range(100)), small, budget=big_budget)
        external = CostModel()
        tiny_budget = MemoryBudget(8, entries_per_page=4)
        sorted_with_cost(list(range(100)), external, budget=tiny_budget)
        assert (
            external.simulated_seconds() > small.simulated_seconds()
        )

    def test_more_runs_more_passes(self):
        def io_for(n):
            cost = CostModel()
            budget = MemoryBudget(8, entries_per_page=4)
            sorted_with_cost(list(range(n)), cost, budget=budget)
            return cost.io.total_io

        assert io_for(400) > io_for(40)


class TestMergeSorted:
    def test_merge(self):
        cost = CostModel()
        assert merge_sorted([1, 3], [2, 4], cost) == [1, 2, 3, 4]

    def test_merge_with_key(self):
        cost = CostModel()
        out = merge_sorted(
            [(1, "a")], [(0, "b"), (2, "c")], cost, key=lambda t: t[0]
        )
        assert out == [(0, "b"), (1, "a"), (2, "c")]

    def test_merge_empty_sides(self):
        cost = CostModel()
        assert merge_sorted([], [1], cost) == [1]
        assert merge_sorted([1], [], cost) == [1]
