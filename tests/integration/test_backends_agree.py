"""Cross-backend consistency sweep: for every data generator, the
TimberDB extraction path must produce exactly the in-memory extraction's
fact table, and the resulting cubes must match cell for cell."""

import pytest

from repro.core.cube import compute_cube
from repro.core.extract import extract_from_db, extract_from_documents
from repro.datagen.catalog import CatalogConfig, catalog_query, generate_catalog
from repro.datagen.dblp import DblpConfig, dblp_query, generate_dblp
from repro.datagen.publications import figure1_document, query1
from repro.datagen.treebank import (
    TreebankConfig,
    generate_treebank,
    treebank_query,
)
from repro.timber.database import TimberDB
from repro.xmlmodel.serializer import serialize

CASES = [
    pytest.param(
        lambda: (figure1_document(), query1()), id="figure1"
    ),
    pytest.param(
        lambda: (
            generate_treebank(
                TreebankConfig(
                    n_facts=60, n_axes=3, coverage=False, disjoint=False,
                    seed=3,
                )
            ),
            treebank_query(
                TreebankConfig(
                    n_facts=60, n_axes=3, coverage=False, disjoint=False,
                    seed=3,
                )
            ),
        ),
        id="treebank-messy",
    ),
    pytest.param(
        lambda: (generate_dblp(DblpConfig(n_articles=60)), dblp_query()),
        id="dblp",
    ),
    pytest.param(
        lambda: (
            generate_catalog(CatalogConfig(n_products=60)),
            catalog_query(),
        ),
        id="catalog",
    ),
]


@pytest.mark.parametrize("build", CASES)
def test_db_backend_matches_memory(build):
    doc, query = build()
    memory_table = extract_from_documents([doc], query)
    db = TimberDB()
    db.load(serialize(doc))
    db_table = extract_from_db(db, query)

    assert len(memory_table) == len(db_table)
    for mine, theirs in zip(memory_table.rows, db_table.rows):
        assert mine.measure == theirs.measure
        for my_axis, their_axis in zip(mine.axes, theirs.axes):
            assert sorted((v.value, v.mask) for v in my_axis) == sorted(
                (v.value, v.mask) for v in their_axis
            )

    memory_cube = compute_cube(memory_table, "NAIVE")
    db_cube = compute_cube(db_table, "NAIVE")
    assert memory_cube.same_contents(db_cube)
