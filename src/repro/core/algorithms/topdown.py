"""Top-down cube computation: TD, TDOPT, TDOPTALL, TDCUST (Sec. 3.5).

The family is XMLized from PartitionCube/MemoryCube [Ross & Srivastava]:
cuboids are produced by sorting and scanning, and coarser cuboids are —
when the summarizability properties allow — computed from finer *aggregate
rows* instead of the base data.

- ``TD`` (unoptimized, always correct): every cuboid is computed from the
  base fact table — a full scan plus an (external, when the table exceeds
  the memory budget) sort per lattice point, with identity tracking.  The
  exponential number of sorts is its meltdown mode.
- ``TDOPT`` (requires disjointness): cuboids with every axis kept are
  computed from base; every other cuboid is rolled up from the smallest
  already-computed finer cuboid by merging aggregate rows.  Coverage
  violations are absorbed by carrying "null value" groups (Sec. 3.5) in
  the intermediate cuboids, stripped at reporting time.  Non-disjoint
  facts are double-counted by the roll-up, so TDOPT is wrong when
  disjointness fails (Fig. 9).
- ``TDOPTALL`` (requires disjointness *and* total coverage): assumes full
  summarizability — only the all-rigid top cuboid touches the base;
  structurally-relaxed points are assumed identical to their rigid
  counterparts (relaxation adds nothing under total coverage of the rigid
  pattern) and everything else is a pure aggregate roll-up with no null
  bookkeeping.  Fastest of the family on dense cubes, and wrong when
  either property fails.
- ``TDCUST`` (Sec. 4.5, always correct): per lattice point, rolls up from
  a finer cuboid only when the property oracle proves the source cuboid
  disjoint; otherwise recomputes that point from base with the safe
  (identity-tracking) path.

Columnar execution (the default, ``ExecutionOptions(encoding="auto")``):
the family runs on the dictionary-encoded columns of
:class:`~repro.core.columnar.ColumnarFactTable`.  A from-base cuboid is
built by extending a mixed-radix **group-id column** one kept axis at a
time (:func:`~repro.core.columnar.extend_group_ids`, one modeled op per
:data:`~repro.core.columnar.VECTOR_LANES` rows) and folding measures in
base-row order, so TD's finalized floats are bit-identical to NAIVE;
the grouping is a counting sort over the bounded gid domain — charged
linearly, spilling its placement buffer past the memory budget instead
of paying the dict path's comparison sort.  The Sec. 3.5 "null
value" groups of TDOPT/TDCUST become a **null digit**: a kept axis with
no value contributes digit ``len(dictionary)`` with effective radix
``len(dictionary) + 1``, stripped at reporting exactly like
``strip_null_groups``.  A coarser-from-finer roll-up is group-id
remapping: decompose each source gid with reversed mixed-radix divmod,
keep the digits of the surviving axes, recombine — no string keys touched
(Sec. 3.5's sorted merge over aggregate rows, on integer ids).
``encoding="dict"`` pins the legacy :class:`FactRow` path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, cast

from repro import obs
from repro.core.aggregates import AggregateFunction
from repro.core.algorithms.base import CubeAlgorithm, ExecutionContext
from repro.core.bindings import GroupKey
from repro.core.columnar import (
    ColumnarFactTable,
    extend_group_ids,
    fold_group_ids,
    make_group_decoder,
    vector_lanes,
)
from repro.core.groupby import Cuboid, augmented_keys, strip_null_groups
from repro.core.lattice import CubeLattice, LatticePoint
from repro.timber.external_sort import charge_sort, sorted_with_cost

AugKey = Tuple[Optional[str], ...]
AugCuboid = Dict[AugKey, object]  # key -> aggregate partial state

#: gid -> aggregate partial state (a cuboid in encoded form).
GidCells = Dict[int, Any]
#: Per kept axis of an encoded cuboid: (axis position, dictionary,
#: radix).  ``radix == len(dictionary) + 1`` when the axis carries the
#: Sec. 3.5 null digit.
GidAxes = Tuple[Tuple[int, Tuple[str, ...], int], ...]


class TdAlgorithm(CubeAlgorithm):
    """TD: every cuboid from base, with identity tracking.  Always correct."""

    name = "TD"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        if context.use_columnar:
            return self._compute_columnar(context, points)
        table = context.table
        fn = table.aggregate.fn
        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            context.charge_base_scan()
            context.bump("td_base_sorts")
            placements: List[Tuple[Tuple[str, ...], float]] = []
            for row in table.rows:
                for key in table.key_combinations(row, point):
                    placements.append((key, row.measure))
                    # Identity tracking: the safe algorithm keeps fact ids
                    # alongside to guard against double counting.
                    context.cost.charge_cpu(2)
            placements = sorted_with_cost(
                placements,
                context.cost,
                budget=context.budget,
                key=lambda placement: placement[0],
            )
            cuboid: Cuboid = {}
            current_key: Optional[Tuple[str, ...]] = None
            state = fn.new()
            for key, measure in placements:
                if key != current_key:
                    if current_key is not None:
                        cuboid[current_key] = fn.finalize(state)
                    current_key = key
                    state = fn.new()
                state = fn.add(state, measure)
                context.cost.charge_cpu()
            if current_key is not None:
                cuboid[current_key] = fn.finalize(state)
            cuboids[point] = cuboid
        return cuboids, 1

    def _compute_columnar(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        """Every cuboid from the encoded base: one gid build per point."""
        fn = context.table.aggregate.fn
        encoded = _encode_table(context)
        cuboids: Dict[LatticePoint, Cuboid] = {}
        with obs.span(
            "td.build",
            category="columnar",
            facts=encoded.n_rows,
            points=len(points),
        ):
            for point in points:
                cells, axes = _columnar_build(
                    context, encoded, point, fn,
                    augmented=False, identity_ops=1,
                )
                cuboids[point] = _decode_cells(
                    context, cells, axes, fn, strip=False
                )
        return cuboids, 1


class TdOptAlgorithm(CubeAlgorithm):
    """TDOPT: roll-up with null groups; needs disjointness."""

    name = "TDOPT"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        if context.use_columnar:
            return self._compute_columnar(context, points)
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        wanted = set(points)
        computed: Dict[LatticePoint, AugCuboid] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}

        for point in lattice.topo_finer_first():
            kept = lattice.kept_axes(point)
            if len(kept) == lattice.axis_count:
                aug = self._from_base(context, point)
            else:
                source = _pick_source(lattice, computed, point)
                assert source is not None, "all-kept points precede drops"
                aug = _rollup(context, lattice, computed[source], source, point, fn)
            computed[point] = aug
            if point in wanted:
                cuboids[point] = strip_null_groups(
                    {key: fn.finalize(state) for key, state in aug.items()}
                )
                context.cost.charge_cpu(len(aug))
        return {point: cuboids[point] for point in points}, 1

    def _compute_columnar(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        """All-kept points from base (null-digit augmented), the rest
        rolled up from the smallest finer encoded cuboid."""
        lattice = context.lattice
        fn = context.table.aggregate.fn
        wanted = set(points)
        encoded = _encode_table(context)
        computed: Dict[LatticePoint, Tuple[GidCells, GidAxes]] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in lattice.topo_finer_first():
            kept = lattice.kept_axes(point)
            if len(kept) == lattice.axis_count:
                built = _columnar_build(
                    context, encoded, point, fn,
                    augmented=True, identity_ops=0,
                )
            else:
                source = _pick_source(
                    lattice, _encoded_sizes(computed), point
                )
                assert source is not None, "all-kept points precede drops"
                cells, axes = computed[source]
                built = _rollup_columnar(
                    context, cells, axes, point, lattice, fn
                )
            computed[point] = built
            if point in wanted:
                cuboids[point] = _decode_cells(
                    context, built[0], built[1], fn, strip=True
                )
        return {point: cuboids[point] for point in points}, 1

    def _from_base(
        self, context: ExecutionContext, point: LatticePoint
    ) -> AugCuboid:
        table = context.table
        fn = table.aggregate.fn
        context.charge_base_scan()
        placements: List[Tuple[AugKey, float]] = []
        for row in table.rows:
            for key in augmented_keys(table, row, point):
                placements.append((key, row.measure))
                context.cost.charge_cpu()
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: _sortable(placement[0]),
        )
        aug: AugCuboid = {}
        for key, measure in placements:
            if key not in aug:
                aug[key] = fn.new()
            aug[key] = fn.add(aug[key], measure)
            context.cost.charge_cpu()
        return aug


class TdOptAllAlgorithm(CubeAlgorithm):
    """TDOPTALL: pure roll-up; needs disjointness *and* coverage."""

    name = "TDOPTALL"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        if context.use_columnar:
            return self._compute_columnar(context, points)
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        computed: Dict[LatticePoint, AugCuboid] = {}
        top = lattice.top

        # One base pass for the all-rigid top cuboid (no null groups:
        # total coverage is assumed, facts lacking an axis are dropped —
        # the source of TDOPTALL's undercounting when coverage fails).
        context.charge_base_scan()
        placements: List[Tuple[Tuple[str, ...], float]] = []
        for row in table.rows:
            for key in table.key_combinations(row, top):
                placements.append((key, row.measure))
                context.cost.charge_cpu()
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: placement[0],
        )
        top_aug: AugCuboid = {}
        for key, measure in placements:
            if key not in top_aug:
                top_aug[key] = fn.new()
            top_aug[key] = fn.add(top_aug[key], measure)
            context.cost.charge_cpu()
        computed[top] = top_aug

        for point in lattice.topo_finer_first():
            if point in computed:
                continue
            rigid_twin = _rigid_twin(lattice, point)
            if rigid_twin != point:
                # Full summarizability assumed: a structurally relaxed
                # point is taken to equal its rigid twin.
                source_cuboid = computed[rigid_twin]
                computed[point] = dict(source_cuboid)
                context.cost.charge_cpu(len(source_cuboid))
                continue
            source = _pick_source(lattice, computed, point)
            assert source is not None
            computed[point] = _rollup(
                context, lattice, computed[source], source, point, fn
            )

        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            aug = computed[point]
            cuboids[point] = {
                key: fn.finalize(state) for key, state in aug.items()
            }
            context.cost.charge_cpu(len(aug))
        return cuboids, 1

    def _compute_columnar(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        """One base build (all-rigid top, no null digits), rigid twins
        copied cell-for-cell, everything else pure gid roll-up."""
        lattice = context.lattice
        fn = context.table.aggregate.fn
        encoded = _encode_table(context)
        computed: Dict[LatticePoint, Tuple[GidCells, GidAxes]] = {}
        top = lattice.top
        computed[top] = _columnar_build(
            context, encoded, top, fn, augmented=False, identity_ops=0
        )
        for point in lattice.topo_finer_first():
            if point in computed:
                continue
            rigid_twin = _rigid_twin(lattice, point)
            if rigid_twin != point:
                # Dictionaries and radices are per-axis and state
                # independent, so the twin's encoded cells transfer as-is.
                source_cells, source_axes = computed[rigid_twin]
                computed[point] = (dict(source_cells), source_axes)
                context.cost.charge_cpu(len(source_cells))
                continue
            source = _pick_source(lattice, _encoded_sizes(computed), point)
            assert source is not None
            cells, axes = computed[source]
            computed[point] = _rollup_columnar(
                context, cells, axes, point, lattice, fn
            )
        cuboids: Dict[LatticePoint, Cuboid] = {}
        for point in points:
            cells, axes = computed[point]
            cuboids[point] = _decode_cells(
                context, cells, axes, fn, strip=False
            )
        return cuboids, 1


class TdCustAlgorithm(CubeAlgorithm):
    """TDCUST: roll-up only where the oracle proves it safe.  Correct."""

    name = "TDCUST"

    def _compute(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        if context.use_columnar:
            return self._compute_columnar(context, points)
        table = context.table
        lattice = table.lattice
        fn = table.aggregate.fn
        oracle = context.oracle
        computed: Dict[LatticePoint, AugCuboid] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}
        wanted = set(points)

        for point in lattice.topo_finer_first():
            source = _pick_source(
                lattice,
                {
                    candidate: aug
                    for candidate, aug in computed.items()
                    if oracle.disjoint(candidate)
                },
                point,
            )
            if source is not None:
                aug = _rollup(
                    context, lattice, computed[source], source, point, fn
                )
            else:
                aug = self._safe_from_base(context, point)
            computed[point] = aug
            if point in wanted:
                cuboids[point] = strip_null_groups(
                    {key: fn.finalize(state) for key, state in aug.items()}
                )
                context.cost.charge_cpu(len(aug))
        return {point: cuboids[point] for point in points}, 1

    def _compute_columnar(
        self, context: ExecutionContext, points: List[LatticePoint]
    ) -> Tuple[Dict[LatticePoint, Cuboid], int]:
        """Roll up from oracle-proven-disjoint sources; otherwise rebuild
        the point from base with the safe identity-tracking build."""
        lattice = context.lattice
        fn = context.table.aggregate.fn
        oracle = context.oracle
        encoded = _encode_table(context)
        computed: Dict[LatticePoint, Tuple[GidCells, GidAxes]] = {}
        cuboids: Dict[LatticePoint, Cuboid] = {}
        wanted = set(points)
        for point in lattice.topo_finer_first():
            source = _pick_source(
                lattice,
                _encoded_sizes(
                    {
                        candidate: built
                        for candidate, built in computed.items()
                        if oracle.disjoint(candidate)
                    }
                ),
                point,
            )
            if source is not None:
                cells, axes = computed[source]
                built = _rollup_columnar(
                    context, cells, axes, point, lattice, fn
                )
            else:
                built = _columnar_build(
                    context, encoded, point, fn,
                    augmented=True, identity_ops=1,
                )
            computed[point] = built
            if point in wanted:
                cuboids[point] = _decode_cells(
                    context, built[0], built[1], fn, strip=True
                )
        return {point: cuboids[point] for point in points}, 1

    def _safe_from_base(
        self, context: ExecutionContext, point: LatticePoint
    ) -> AugCuboid:
        table = context.table
        fn = table.aggregate.fn
        context.charge_base_scan()
        placements: List[Tuple[AugKey, float]] = []
        for row in table.rows:
            for key in augmented_keys(table, row, point):
                placements.append((key, row.measure))
                # Safe path keeps identities, like TD.
                context.cost.charge_cpu(2)
        placements = sorted_with_cost(
            placements,
            context.cost,
            budget=context.budget,
            key=lambda placement: _sortable(placement[0]),
        )
        aug: AugCuboid = {}
        for key, measure in placements:
            if key not in aug:
                aug[key] = fn.new()
            aug[key] = fn.add(aug[key], measure)
            context.cost.charge_cpu()
        return aug


# ----------------------------------------------------------------------
# columnar helpers (shared by the whole family)
# ----------------------------------------------------------------------

def _encode_table(context: ExecutionContext) -> ColumnarFactTable:
    """Encode once per run, charging the encode at full CPU rate (the
    modeled cost never depends on whether the memoization was warm)."""
    table = context.table
    with obs.span(
        "td.encode", category="columnar", facts=len(table.rows)
    ):
        encoded = table.columnar()
    context.cost.charge_cpu(encoded.encoded_entries)
    return encoded


def _columnar_build(
    context: ExecutionContext,
    encoded: ColumnarFactTable,
    point: LatticePoint,
    fn: AggregateFunction,
    augmented: bool,
    identity_ops: int,
) -> Tuple[GidCells, GidAxes]:
    """One from-base cuboid build over the encoded columns.

    ``augmented`` selects the Sec. 3.5 null-digit behaviour (a kept axis
    with no value binds digit ``len(dictionary)``); otherwise gap rows
    drop out, the ``key_combinations`` contract.  ``identity_ops``
    models the safe path's per-placement identity tracking (TD, TDCUST's
    from-base) — zero for the roll-up variants that assume disjointness.
    """
    lattice = context.lattice
    n = encoded.n_rows
    context.charge_encoded_scan(encoded.encoded_pages)
    context.bump("td_base_sorts")
    prefix: List[Any] = [0] * n
    has_multi = False
    axes: List[Tuple[int, Tuple[str, ...], int]] = []
    for position, states in enumerate(lattice.axis_states):
        state = point[position]
        if states.is_dropped(state):
            continue
        column = encoded.columns[position]
        view = encoded.state_view(position, state)
        if augmented:
            radix = column.radix + 1
            missing: Optional[int] = column.radix
        else:
            radix = column.radix
            missing = None
        prefix, has_multi = extend_group_ids(
            prefix, has_multi, view, radix, missing_code=missing
        )
        context.cost.charge_cpu(vector_lanes(n))
        axes.append((position, column.dictionary, radix))
    cells, increments = fold_group_ids(
        fn, prefix, has_multi, encoded.measures
    )
    # The dict path groups by comparison-sorting the placement column;
    # this kernel buckets bounded integer gids — a counting sort over
    # the code domain, charged linearly (one scalar placement op per
    # increment) and spilled when the placement buffer outgrows the
    # memory budget.
    context.cost.charge_cpu(increments)
    if increments > context.budget.capacity_entries:
        context.charge_spill(increments)
    tracer = obs.current_tracer()
    if tracer.enabled:
        tracer.metrics.counter("x3_sorts_total", kind="counting").inc()
        tracer.metrics.counter(
            "x3_sorted_items_total", kind="counting"
        ).inc(increments)
    if identity_ops:
        context.cost.charge_cpu(identity_ops * increments)
    context.cost.charge_cpu(vector_lanes(increments))
    return cells, tuple(axes)


def _decode_cells(
    context: ExecutionContext,
    cells: GidCells,
    axes: GidAxes,
    fn: AggregateFunction,
    strip: bool,
) -> Cuboid:
    """Finalize an encoded cuboid into reporting form.

    ``strip`` drops groups whose decoded key contains a null digit —
    :func:`~repro.core.groupby.strip_null_groups` on integer ids.
    """
    decode = make_group_decoder(
        [(dictionary, radix) for _, dictionary, radix in axes]
    )
    out: Cuboid = {}
    for gid, state in cells.items():
        key = decode(gid)
        if strip and any(part is None for part in key):
            continue
        out[cast(GroupKey, key)] = fn.finalize(state)
    context.cost.charge_cpu(len(cells))
    return out


def _kept_positions(
    lattice: CubeLattice, point: LatticePoint
) -> List[int]:
    return [
        position
        for position, states in enumerate(lattice.axis_states)
        if not states.is_dropped(point[position])
    ]


def _rollup_columnar(
    context: ExecutionContext,
    source_cells: GidCells,
    source_axes: GidAxes,
    point: LatticePoint,
    lattice: CubeLattice,
    fn: AggregateFunction,
) -> Tuple[GidCells, GidAxes]:
    """Merge a finer encoded cuboid into a coarser one by gid remapping.

    Each source gid is decomposed with reversed mixed-radix divmod; the
    digits of the axes the destination keeps are recombined into the new
    gid (null digits ride along untouched).  Source gids are visited in
    sorted order — the integer mirror of the dict path's sorted merge —
    so the merge order is deterministic.
    """
    context.bump("td_rollups")
    destination = set(_kept_positions(lattice, point))
    keep = [
        index
        for index, (position, _, _) in enumerate(source_axes)
        if position in destination
    ]
    radices = [radix for _, _, radix in source_axes]
    gids = sorted(source_cells)
    charge_sort(len(gids), context.cost, context.budget)
    out: GidCells = {}
    merge = fn.merge
    for gid in gids:
        remaining = gid
        digits: List[int] = []
        for radix in reversed(radices):
            remaining, digit = divmod(remaining, radix)
            digits.append(digit)
        digits.reverse()
        new_gid = 0
        for index in keep:
            new_gid = new_gid * radices[index] + digits[index]
        state = source_cells[gid]
        if new_gid in out:
            out[new_gid] = merge(out[new_gid], state)
        else:
            out[new_gid] = state
        context.cost.charge_cpu()
    return out, tuple(source_axes[index] for index in keep)


def _encoded_sizes(
    computed: Dict[LatticePoint, Tuple[GidCells, GidAxes]]
) -> Dict[LatticePoint, AugCuboid]:
    """Adapt encoded cuboids for :func:`_pick_source` (which only needs
    membership and ``len``)."""
    return cast(
        Dict[LatticePoint, AugCuboid],
        {point: cells for point, (cells, _) in computed.items()},
    )


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------

def _sortable(key: AugKey) -> Tuple[Tuple[int, str], ...]:
    """Total order over keys containing None."""
    return tuple((0, "") if part is None else (1, part) for part in key)


def _rigid_twin(
    lattice: CubeLattice, point: LatticePoint
) -> LatticePoint:
    """The point with every kept axis forced to the rigid state."""
    twin: List[int] = []
    for states, index in zip(lattice.axis_states, point):
        if states.is_dropped(index):
            twin.append(index)
        else:
            twin.append(states.rigid_index)
    return tuple(twin)


def _pick_source(
    lattice: CubeLattice,
    computed: Dict[LatticePoint, AugCuboid],
    point: LatticePoint,
) -> Optional[LatticePoint]:
    """The smallest computed finer cuboid that derives ``point`` by
    dropping axes (kept axes must agree exactly on their states)."""
    best: Optional[LatticePoint] = None
    best_size = -1
    for candidate, aug in computed.items():
        if candidate == point:
            continue
        ok = True
        for position, states in enumerate(lattice.axis_states):
            if point[position] == states.dropped_index:
                continue
            if candidate[position] != point[position]:
                ok = False
                break
        if not ok:
            continue
        # The candidate must actually be finer: every axis dropped in the
        # candidate must be dropped in the point too.
        for position, states in enumerate(lattice.axis_states):
            if candidate[position] == states.dropped_index and point[
                position
            ] != states.dropped_index:
                ok = False
                break
        if ok and (best is None or len(aug) < best_size):
            best = candidate
            best_size = len(aug)
    return best


def _rollup(
    context: ExecutionContext,
    lattice: CubeLattice,
    source_aug: AugCuboid,
    source: LatticePoint,
    point: LatticePoint,
    fn: AggregateFunction,
) -> AugCuboid:
    """Merge a finer cuboid's aggregate rows into a coarser cuboid."""
    context.bump("td_rollups")
    src_kept = lattice.kept_axes(source)
    dst_kept = set(lattice.kept_axes(point))
    keep_positions = [
        index for index, axis in enumerate(src_kept) if axis in dst_kept
    ]
    rows = list(source_aug.items())
    rows = sorted_with_cost(
        rows,
        context.cost,
        budget=context.budget,
        key=lambda item: _sortable(item[0]),
    )
    out: AugCuboid = {}
    for key, state in rows:
        new_key = tuple(key[index] for index in keep_positions)
        if new_key in out:
            out[new_key] = fn.merge(out[new_key], state)
        else:
            out[new_key] = state
        context.cost.charge_cpu()
    return out
