"""Unit tests for the summarizability property oracles."""

from repro.core.extract import extract_from_documents
from repro.core.properties import PropertyOracle, oracle_from
from repro.datagen.dblp import DblpConfig, dblp_dtd, dblp_query, generate_dblp
from repro.datagen.publications import figure1_document, query1


def fig1_table():
    return extract_from_documents([figure1_document()], query1())


class TestFlagsOracle:
    def test_all_true(self):
        lattice = query1().lattice()
        oracle = PropertyOracle.from_flags(lattice, True, True)
        assert oracle.globally_disjoint()
        assert oracle.globally_covered()

    def test_all_false(self):
        lattice = query1().lattice()
        oracle = PropertyOracle.from_flags(lattice, False, False)
        for point in lattice.points():
            if lattice.kept_axes(point):
                assert not oracle.disjoint(point)
                assert not oracle.covered(point)

    def test_bottom_point_trivially_fine(self):
        lattice = query1().lattice()
        oracle = PropertyOracle.from_flags(lattice, False, False)
        # No kept axes: one big group, both properties vacuous.
        assert oracle.disjoint(lattice.bottom)
        assert oracle.covered(lattice.bottom)


class TestDataOracle:
    def test_figure1_ground_truth(self):
        table = fig1_table()
        oracle = PropertyOracle.from_data(table)
        lattice = table.lattice
        # $n (position 0) rigid: pub1 has two author names -> not disjoint.
        assert not oracle.axis_disjoint(0, 0)
        # $p rigid: at most one publisher each -> disjoint, but pub3
        # lacks one -> not covered.
        assert oracle.axis_disjoint(1, 0)
        assert not oracle.axis_covered(1, 0)
        # $y rigid: pub2 repeats the year, pub4 lacks it.
        assert not oracle.axis_disjoint(2, 0)
        assert not oracle.axis_covered(2, 0)
        assert not oracle.globally_disjoint()
        assert not oracle.globally_covered()

    def test_oracle_matches_observed(self):
        table = fig1_table()
        oracle = PropertyOracle.from_data(table)
        for point in table.lattice.points():
            assert oracle.disjoint(point) == table.observed_disjointness(
                point
            )


class TestSchemaOracle:
    def test_dblp_matches_data(self):
        """The DTD-derived oracle must be conservative w.r.t. the data."""
        doc = generate_dblp(DblpConfig(n_articles=150, seed=2))
        table = extract_from_documents([doc], dblp_query())
        schema_oracle = PropertyOracle.from_schema(
            table.lattice, dblp_dtd(), "article"
        )
        data_oracle = PropertyOracle.from_data(table)
        for point in table.lattice.points():
            # Whatever the schema guarantees must actually hold in data.
            if schema_oracle.disjoint(point):
                assert data_oracle.disjoint(point)
            if schema_oracle.covered(point):
                assert data_oracle.covered(point)

    def test_dblp_axis_verdicts(self):
        lattice = dblp_query().lattice()
        oracle = PropertyOracle.from_schema(lattice, dblp_dtd(), "article")
        # Axis order: $a, $m, $y, $j; rigid state index 0.
        assert not oracle.axis_disjoint(0, 0)   # author*
        assert oracle.axis_disjoint(1, 0)        # month?
        assert not oracle.axis_covered(1, 0)
        assert oracle.axis_covered(2, 0)         # year
        assert oracle.axis_covered(3, 0)         # journal


class TestDispatcher:
    def test_flags_win(self):
        lattice = query1().lattice()
        oracle = oracle_from(lattice, disjointness=True, coverage=True)
        assert oracle.globally_disjoint()

    def test_schema_next(self):
        lattice = dblp_query().lattice()
        oracle = oracle_from(lattice, dtd=dblp_dtd(), fact_tag="article")
        assert not oracle.axis_disjoint(0, 0)

    def test_data_fallback(self):
        table = fig1_table()
        oracle = oracle_from(table.lattice, table=table)
        assert not oracle.globally_disjoint()

    def test_pessimistic_default(self):
        lattice = query1().lattice()
        oracle = oracle_from(lattice)
        assert not oracle.disjoint(lattice.top)
