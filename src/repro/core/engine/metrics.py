"""Per-stage metrics of one engine run.

The engine instruments every stage — partitioning, queue wait, per-worker
execution, merge — and attaches an :class:`EngineMetrics` to the
:class:`~repro.core.cube.CubeResult` so speedups are measurable from the
bench harness without re-deriving anything.

Two time bases coexist deliberately:

- *wall seconds* are host-dependent and include pool overhead;
- *simulated seconds* come from the deterministic cost model, so the
  modeled speedup (total simulated work over the critical path of the
  worker schedule) is reproducible on any machine, including single-core
  CI runners where real wall-clock parallelism cannot show up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PartitionStats:
    """One partition's journey through the pool."""

    index: int
    points: int
    weight: float
    worker: str
    queue_wait_seconds: float
    wall_seconds: float
    simulated_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "points": self.points,
            "weight": self.weight,
            "worker": self.worker,
            "queue_wait_seconds": self.queue_wait_seconds,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
        }


@dataclass(frozen=True)
class EngineMetrics:
    """What the engine did and what each stage cost."""

    engine: str
    strategy: str
    requested_workers: int
    workers_used: int
    partitions: Tuple[PartitionStats, ...]
    cut_edges: int
    partition_seconds: float
    merge_seconds: float
    total_wall_seconds: float

    # ------------------------------------------------------------------
    @property
    def partition_sizes(self) -> List[int]:
        return [stats.points for stats in self.partitions]

    @property
    def queue_wait_seconds(self) -> float:
        """Total time partitions sat queued before a worker picked them up."""
        return sum(stats.queue_wait_seconds for stats in self.partitions)

    def per_worker_wall_seconds(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for stats in self.partitions:
            out[stats.worker] = out.get(stats.worker, 0.0) + stats.wall_seconds
        return out

    def per_worker_simulated_seconds(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for stats in self.partitions:
            out[stats.worker] = (
                out.get(stats.worker, 0.0) + stats.simulated_seconds
            )
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Flat summary for the bench CSV / reports."""
        return {
            "engine": self.engine,
            "strategy": self.strategy,
            "requested_workers": self.requested_workers,
            "workers_used": self.workers_used,
            "n_partitions": len(self.partitions),
            "partition_sizes": "/".join(
                str(size) for size in self.partition_sizes
            ),
            "cut_edges": self.cut_edges,
            "partition_seconds": self.partition_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "merge_seconds": self.merge_seconds,
            "total_wall_seconds": self.total_wall_seconds,
        }

    def summary(self) -> str:
        sizes = self.partition_sizes
        return (
            f"engine={self.engine} strategy={self.strategy} "
            f"workers={self.workers_used}/{self.requested_workers} "
            f"partitions={len(sizes)} sizes={sizes} "
            f"cut_edges={self.cut_edges} "
            f"queue_wait={self.queue_wait_seconds:.4f}s "
            f"merge={self.merge_seconds:.4f}s "
            f"wall={self.total_wall_seconds:.4f}s"
        )
