"""Synthetic data generators.

- :mod:`repro.datagen.publications` — the paper's Figure 1 publication
  database (the running example), plus a scalable randomized variant;
- :mod:`repro.datagen.treebank` — a Treebank-style recursive,
  heterogeneous generator with knobs for the summarizability regime and
  cube density (the paper's controlled Treebank workloads, Sec. 4);
- :mod:`repro.datagen.dblp` — DBLP-shaped articles following the real
  DBLP DTD cardinalities (Sec. 4.5);
- :mod:`repro.datagen.workload` — named experiment configurations tying
  generators, queries and property regimes together for the benchmarks.
"""

from repro.datagen.catalog import CatalogConfig, generate_catalog
from repro.datagen.publications import figure1_document, random_publications
from repro.datagen.treebank import TreebankConfig, generate_treebank
from repro.datagen.dblp import DblpConfig, generate_dblp
from repro.datagen.workload import WorkloadConfig, build_workload

__all__ = [
    "CatalogConfig",
    "generate_catalog",
    "figure1_document",
    "random_publications",
    "TreebankConfig",
    "generate_treebank",
    "DblpConfig",
    "generate_dblp",
    "WorkloadConfig",
    "build_workload",
]
