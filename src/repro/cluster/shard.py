"""One shard replica: an existing :class:`CubeServer` over a fact slice.

A :class:`ShardReplica` models a single-threaded worker process owning
one hash-partitioned slice of the fact table.  All of PR 3/4's serving
machinery — the sound-source ladder, the cost-aware cuboid cache, the
incremental write path — runs unchanged inside each replica; the
cluster layer only adds what a *distributed* worker needs:

- a health bit (``crash()`` / ``heal()``) the chaos harness flips and
  the coordinator fails over on;
- a pending-write queue so crashed or deliberately *stale* replicas can
  lag the write log and catch up later (``sync()``), which is what the
  coordinator's version-vector consistency check defends against;
- a state read (:meth:`read_states`): the replica's finalized answer is
  lifted back into mergeable *aggregate states* — for the distributive
  aggregates the finalized value is the state; for algebraic AVG the
  replica keeps an attached :class:`IncrementalCube` and ships its raw
  ``(sum, count)`` pairs, because finalized averages do not merge.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.bindings import FactRow, FactTable
from repro.core.cube import ExecutionOptions
from repro.core.groupby import Cuboid
from repro.core.incremental import IncrementalCube
from repro.core.lattice import CubeLattice, LatticePoint
from repro.core.merge import (
    STATE_EXACT_AGGREGATES,
    StateCuboid,
    states_from_finalized,
)
from repro.core.properties import PropertyOracle
from repro.errors import ClusterError, ShardUnavailable
from repro.serve.server import CubeServer


@dataclass(frozen=True)
class ShardAnswer:
    """What one replica returns for one state read."""

    shard: int
    replica: int
    states: StateCuboid
    version: int  #: write batches the replica had applied when answering
    modeled_seconds: float  #: modeled cost of the replica's ladder walk
    tier: str  #: the sound-source rung that answered on the replica


class ShardReplica:
    """A :class:`CubeServer` over one slice, with cluster plumbing.

    Args:
        shard: shard index this replica serves.
        replica: replica index within the shard (0 is the primary).
        lattice: the cube lattice (shared across the cluster).
        rows: this shard's slice of the fact table.
        aggregate: the cube's aggregate spec (shared).
        oracle: property oracle for the replica's rollup rung.  A
            full-table oracle is sound here: disjointness and coverage
            are universally quantified over facts, so any property that
            holds for the whole table holds for every subset of it.
        options: engine options for recomputes inside the replica.
        cache_cells: per-replica cuboid cache budget.
    """

    def __init__(
        self,
        shard: int,
        replica: int,
        lattice: CubeLattice,
        rows: Sequence[FactRow],
        aggregate,
        oracle: Optional[PropertyOracle] = None,
        options: Optional[ExecutionOptions] = None,
        cache_cells: int = 2048,
    ) -> None:
        self.shard = shard
        self.replica = replica
        self.table = FactTable(lattice, list(rows), aggregate)
        self._aggregate = aggregate.function.upper()
        self._state_exact = self._aggregate in STATE_EXACT_AGGREGATES
        # Algebraic aggregates need raw partial states; the maintained
        # cells of an IncrementalCube are exactly that.
        self._incremental = (
            None if self._state_exact else IncrementalCube(self.table)
        )
        self.server = CubeServer(
            self.table,
            oracle,
            options=options,
            cache_cells=cache_cells,
            incremental=self._incremental,
            # Replicas recompute concurrently under the scatter pool;
            # absorbing the process-global engine tracer there would
            # capture sibling shards' spans and break determinism.
            engine_trace=False,
        )
        # One lock per replica: a replica models a single-threaded
        # worker process, so its operations serialize; concurrency in
        # the cluster comes from fanning out across shards.
        self._lock = threading.RLock()
        self._crashed = False
        self._pending: List[Tuple[str, List[FactRow]]] = []

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        with self._lock:
            return not self._crashed

    def crash(self) -> None:
        """Take the replica down; reads raise until :meth:`heal`."""
        with self._lock:
            self._crashed = True

    def heal(self) -> int:
        """Bring the replica back and replay its queued write batches.

        Returns the replica's version after catching up.
        """
        with self._lock:
            self._crashed = False
            return self.sync()

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Write batches actually applied (the version reads answer at)."""
        return self.server.version

    @property
    def target_version(self) -> int:
        """Applied batches plus the queued backlog."""
        with self._lock:
            return self.server.version + len(self._pending)

    @property
    def lagging(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_states(self, point: LatticePoint) -> ShardAnswer:
        """Answer one cuboid query as mergeable aggregate states.

        The replica resolves the query through its server's full
        sound-source ladder (cache hits and all), then lifts the answer
        into partial states.  Raises :class:`ShardUnavailable` when the
        replica is crashed.
        """
        with self._lock:
            if self._crashed:
                raise ShardUnavailable(self.shard, self.replica, "crashed")
            cuboid, version = self.server.cuboid_versioned(point)
            event = self.server.events.requests()[-1]
            if self._state_exact:
                states = states_from_finalized(self._aggregate, cuboid)
            else:
                assert self._incremental is not None
                states = dict(self._incremental.state_cuboid(point))
            return ShardAnswer(
                shard=self.shard,
                replica=self.replica,
                states=states,
                version=version,
                modeled_seconds=event.modeled_seconds,
                tier=event.tier,
            )

    def cuboid(self, point: LatticePoint) -> Cuboid:
        """The replica's finalized local cuboid (debug/inspection)."""
        with self._lock:
            if self._crashed:
                raise ShardUnavailable(self.shard, self.replica, "crashed")
            return self.server.cuboid_versioned(point)[0]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(self, op: str, rows: Sequence[FactRow], defer: bool = False) -> int:
        """Apply (or queue) one write batch; returns the target version.

        Crashed replicas always queue; a ``defer`` request models the
        stale-replica fault.  Non-deferred batches first drain any
        backlog so the replica applies batches in the coordinator's
        global order.
        """
        if op not in ("insert", "delete"):
            raise ClusterError(f"unknown write op {op!r}")
        with self._lock:
            if self._crashed or defer:
                self._pending.append((op, list(rows)))
            else:
                self._drain()
                self._apply_one(op, list(rows))
            return self.server.version + len(self._pending)

    def sync(self) -> int:
        """Drain the queued write batches; returns the applied version.

        Raises :class:`ShardUnavailable` when the replica is crashed —
        a down replica cannot catch up until healed.
        """
        with self._lock:
            if self._crashed:
                raise ShardUnavailable(self.shard, self.replica, "crashed")
            self._drain()
            return self.server.version

    def _drain(self) -> None:
        while self._pending:
            op, rows = self._pending.pop(0)
            self._apply_one(op, rows)

    def _apply_one(self, op: str, rows: List[FactRow]) -> None:
        if op == "insert":
            self.server.insert(rows)
        else:
            self.server.delete(rows)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        with self._lock:
            state = "down" if self._crashed else "up"
            return (
                f"shard {self.shard} replica {self.replica}: {state}, "
                f"{len(self.table.rows)} rows, v{self.server.version}"
                + (f" (+{len(self._pending)} queued)" if self._pending else "")
            )
