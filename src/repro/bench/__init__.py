"""Benchmark harness: regenerate every figure of the paper's evaluation.

- :mod:`repro.bench.harness` — run algorithms over a workload, collecting
  simulated seconds (the deterministic cost model) and wall-clock;
- :mod:`repro.bench.figures` — one experiment definition per paper figure
  (Figs. 4-10), each an axis sweep or a bar chart;
- :mod:`repro.bench.report` — ASCII series/table rendering of the same
  rows the paper plots;
- :mod:`repro.bench.runner` — the ``x3-bench`` CLI.
"""

from repro.bench.harness import AlgorithmRun, run_workload
from repro.bench.figures import FIGURES, FigureSpec, run_figure

__all__ = [
    "AlgorithmRun",
    "run_workload",
    "FIGURES",
    "FigureSpec",
    "run_figure",
]
