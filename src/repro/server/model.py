"""The logical cube model: named cubes over physical lattices.

Remote callers should not need to know that the ``$y`` axis of some
lattice has a state called ``SP+PC-AD``.  A :class:`LogicalCube` is the
catalog-facing description of one servable cube: a name, a measure, and
one :class:`LogicalDimension` per physical axis, each with a small
hierarchy of named levels.  The model is plain JSON metadata
(:meth:`LogicalCube.to_dict` / :meth:`LogicalCube.from_dict`) resolved
to physical :class:`~repro.core.lattice.CubeLattice` coordinates at
*bind* time — binding a cube to a backend validates every axis and
level against the lattice once, so query-time resolution can only fail
on caller mistakes (:class:`~repro.errors.InvalidQuery`).

The level vocabulary maps directly onto the paper's Sec. 2 grouping
trees: ``detail`` is the rigid pattern (no relaxation), ``all`` is LND
(the axis dropped — every fact in one group along it), and any
structural state label (``SP``, ``PC-AD``, ``SP+PC-AD``) names the
correspondingly relaxed grouping tree.  A ``group_by`` mapping of
``{dimension: level}`` therefore picks exactly one lattice point; every
dimension not mentioned defaults to ``all``, matching how OLAP group-by
lists omit rolled-up dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Set, Tuple

from repro.core.lattice import CubeLattice
from repro.core.query import CubeBackend
from repro.errors import InvalidQuery, UnknownCube

#: Level names every dimension understands, mapped to state labels.
LEVEL_ALIASES: Dict[str, str] = {
    "detail": "rigid",
    "all": "LND",
}


@dataclass(frozen=True)
class LogicalDimension:
    """One dimension of a logical cube, bound to one physical axis.

    Attributes:
        name: the logical, caller-facing dimension name (``"nation"``).
        axis: the physical lattice axis it binds to (``"$n"``).
        levels: extra level names mapped to state labels, layered over
            :data:`LEVEL_ALIASES`; raw state labels always work too.
        description: one human-readable line for the catalog listing.
    """

    name: str
    axis: str
    levels: Tuple[Tuple[str, str], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidQuery("a dimension needs a non-empty name")
        if not self.axis:
            raise InvalidQuery(
                f"dimension {self.name!r} needs a physical axis"
            )
        object.__setattr__(
            self,
            "levels",
            tuple((str(k), str(v)) for k, v in self.levels),
        )

    def resolve_level(self, level: str) -> str:
        """A level name to the state label it denotes.

        Custom levels win, then the shared aliases; anything else is
        passed through as a raw state label (validated at bind time for
        declared levels, at query time for raw labels).
        """
        for name, label in self.levels:
            if name == level:
                return label
        return LEVEL_ALIASES.get(level, level)

    def level_names(self) -> List[str]:
        """Every level name this dimension declares (aliases first)."""
        return list(LEVEL_ALIASES) + [name for name, _ in self.levels]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "axis": self.axis}
        if self.levels:
            out["levels"] = {name: label for name, label in self.levels}
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LogicalDimension":
        return cls(
            name=str(payload.get("name", "")),
            axis=str(payload.get("axis", "")),
            levels=tuple(dict(payload.get("levels") or {}).items()),
            description=str(payload.get("description", "")),
        )


@dataclass(frozen=True)
class LogicalCube:
    """A named, caller-facing cube definition (pure metadata).

    Attributes:
        name: the catalog name remote callers address.
        dimensions: the logical dimensions, one per physical axis the
            cube exposes.
        measure: the aggregate function name (``"COUNT"``); advisory —
            the backend enforces it via ``Query.measure``.
        description: one line for the catalog listing.
    """

    name: str
    dimensions: Tuple[LogicalDimension, ...]
    measure: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidQuery("a cube needs a non-empty name")
        if not self.dimensions:
            raise InvalidQuery(
                f"cube {self.name!r} needs at least one dimension"
            )
        names = [dim.name for dim in self.dimensions]
        if len(set(names)) != len(names):
            raise InvalidQuery(
                f"cube {self.name!r} has duplicate dimension names "
                f"{names}"
            )
        object.__setattr__(self, "dimensions", tuple(self.dimensions))

    def dimension(self, name: str) -> LogicalDimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise InvalidQuery(
            f"cube {self.name!r} has no dimension {name!r}; it has "
            f"{[dim.name for dim in self.dimensions]}"
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "dimensions": [dim.to_dict() for dim in self.dimensions],
        }
        if self.measure:
            out["measure"] = self.measure
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LogicalCube":
        dims = payload.get("dimensions") or []
        return cls(
            name=str(payload.get("name", "")),
            dimensions=tuple(
                LogicalDimension.from_dict(dim) for dim in dims
            ),
            measure=str(payload.get("measure", "")),
            description=str(payload.get("description", "")),
        )

    @classmethod
    def from_lattice(
        cls,
        name: str,
        lattice: CubeLattice,
        *,
        measure: str = "",
        description: str = "",
    ) -> "LogicalCube":
        """A default logical model straight off a physical lattice: one
        dimension per axis, named after the axis without its ``$``."""
        return cls(
            name=name,
            dimensions=tuple(
                LogicalDimension(
                    name=axis.name.lstrip("$") or axis.name,
                    axis=axis.name,
                )
                for axis in lattice.axes
            ),
            measure=measure,
            description=description,
        )


class BoundCube:
    """A :class:`LogicalCube` validated against one backend's lattice.

    Binding checks once that every dimension's axis exists and that
    every *declared* level resolves to a real state of that axis, so a
    bound cube can translate ``group_by`` mappings to lattice point
    descriptions without re-validating the model per query.
    """

    def __init__(self, cube: LogicalCube, backend: CubeBackend) -> None:
        self.cube = cube
        self.backend = backend
        lattice: CubeLattice = backend.lattice
        self.lattice = lattice
        known_axes = {states.axis.name for states in lattice.axis_states}
        self._labels: Dict[str, Set[str]] = {}
        for states in lattice.axis_states:
            self._labels[states.axis.name] = {
                states.describe(index)
                for index in range(states.state_count)
            }
        for dim in cube.dimensions:
            if dim.axis not in known_axes:
                raise InvalidQuery(
                    f"cube {cube.name!r} binds dimension {dim.name!r} "
                    f"to unknown axis {dim.axis!r}; the lattice has "
                    f"{sorted(known_axes)}"
                )
            for level, label in dim.levels:
                if label not in self._labels[dim.axis]:
                    raise InvalidQuery(
                        f"cube {cube.name!r} dimension {dim.name!r} "
                        f"level {level!r} names unknown state "
                        f"{label!r} of axis {dim.axis}"
                    )

    # ------------------------------------------------------------------
    # query-time resolution
    # ------------------------------------------------------------------
    def axis_for(self, name: str) -> str:
        """A logical dimension name (or raw axis name) to its physical
        axis — the translation ``slice``/``dice``/``drilldown`` bodies
        go through."""
        for dim in self.cube.dimensions:
            if dim.name == name or dim.axis == name:
                return dim.axis
        raise InvalidQuery(
            f"cube {self.cube.name!r} has no dimension or axis "
            f"{name!r}; it has "
            f"{[dim.name for dim in self.cube.dimensions]}"
        )

    def point_for(self, group_by: Mapping[str, str]) -> str:
        """A ``{dimension: level}`` mapping to a lattice point
        description.  Dimensions not mentioned default to ``all``
        (LND), so ``{}`` is the apex and a full mapping of ``detail``
        is the rigid point."""
        by_name = {dim.name: dim for dim in self.cube.dimensions}
        unknown = set(group_by) - set(by_name)
        if unknown:
            raise InvalidQuery(
                f"cube {self.cube.name!r} has no dimension(s) "
                f"{sorted(unknown)}; it has {sorted(by_name)}"
            )
        parts = []
        for dim in self.cube.dimensions:
            level = str(group_by.get(dim.name, "all"))
            label = dim.resolve_level(level)
            if label not in self._labels[dim.axis]:
                raise InvalidQuery(
                    f"dimension {dim.name!r} has no level {level!r}; "
                    f"known levels are {dim.level_names()} and raw "
                    f"state labels {sorted(self._labels[dim.axis])}"
                )
            parts.append(f"{dim.axis}:{label}")
        return ", ".join(parts)

    def describe(self) -> Dict[str, Any]:
        """The catalog entry: metadata plus live backend facts."""
        out = self.cube.to_dict()
        out["lattice_points"] = self.lattice.size()
        out["version"] = list(self.backend.version_token())
        return out


class CubeCatalog:
    """The named-cube registry the HTTP front door serves from."""

    def __init__(self) -> None:
        self._cubes: Dict[str, BoundCube] = {}

    def register(
        self, cube: LogicalCube, backend: CubeBackend
    ) -> BoundCube:
        """Bind and register one cube (replacing a same-named one)."""
        bound = BoundCube(cube, backend)
        self._cubes[cube.name] = bound
        return bound

    def get(self, name: str) -> BoundCube:
        try:
            return self._cubes[name]
        except KeyError:
            raise UnknownCube(name, tuple(self._cubes)) from None

    def names(self) -> List[str]:
        return sorted(self._cubes)

    def describe(self) -> List[Dict[str, Any]]:
        return [self._cubes[name].describe() for name in self.names()]
