"""Fig. 10 — the DBLP experiment: cube article by /author, /month,
/year, /journal with the full algorithm line-up, properties derived from
the DBLP DTD (Sec. 4.5)."""

import pytest

from benchmarks.conftest import bench_once
from repro.core.cube import compute_cube

ALGORITHMS = [
    "COUNTER", "BUC", "BUCOPT", "BUCCUST", "TD", "TDOPT", "TDOPTALL",
    "TDCUST",
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_algorithm(benchmark, dblp, algorithm):
    result = bench_once(benchmark, lambda: dblp.run(algorithm))
    benchmark.extra_info["simulated_seconds"] = result.simulated_seconds
    assert result.total_cells() > 0


def test_fig10_shape(dblp):
    sim = {name: dblp.simulated(name) for name in ALGORITHMS}
    # "The DBLP cube is dense, and the dimension number is low (4), so it
    # is not a surprise the COUNTER wins."
    assert sim["COUNTER"] == min(sim.values())
    # "BUCCUST has performance significantly better than BUC" while
    # remaining correct, "which the even faster BUCOPT does not".
    assert sim["BUCOPT"] <= sim["BUCCUST"] <= sim["BUC"]
    # "TDCUST does a little better than TD, but not as well as TDOPT,
    # let alone TDOPTALL".
    assert sim["TDCUST"] < sim["TD"]
    assert sim["TDOPT"] < sim["TDCUST"]
    assert sim["TDOPTALL"] <= sim["TDOPT"] * 1.5


def test_fig10_correctness_split(dblp):
    reference = compute_cube(dblp.table, "NAIVE")
    correct = {"COUNTER", "BUC", "BUCCUST", "TD", "TDCUST"}
    for name in ALGORITHMS:
        matches = dblp.run(name).same_contents(reference)
        assert matches == (name in correct), name
