"""Combine per-partition outputs into one cube.

Partitions cover disjoint lattice point sets, so the cuboid merge is a
checked dict union.  Cost merge sums the counters (total work), derives
the per-worker breakdown, and reports a critical path as
``parallel_simulated_seconds``, which is what the modeled speedup
compares against the serial total.

The critical path is computed from a *deterministic* schedule: the
per-partition simulated costs are LPT-packed onto ``max_workers`` bins
(:func:`scheduled_critical_path`).  Attributing the modeled path to the
threads that actually ran each partition would couple a cost-model
number to wall-clock scheduling — oversubscribed pools hand partitions
to whichever worker frees up first, so the same run would report
different modeled speedups on different hosts.  The actual-thread
breakdown is still reported (``workers``) for telemetry; when
``max_workers`` is unknown it doubles as the critical-path fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.cube import CostSnapshot, WorkerCost
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.core.merge import merge_disjoint
from repro.obs import SpanRecord


@dataclass(frozen=True)
class PartitionOutcome:
    """What one partition run sends back to the merger."""

    index: int
    points: int
    cuboids: Dict[LatticePoint, Cuboid]
    cost: Mapping[str, float]
    passes: int
    algorithm: str
    worker: str
    queue_wait_seconds: float
    wall_seconds: float
    # Span records collected by a process worker's local tracer; empty
    # for thread workers (they record into the shared tracer directly).
    spans: Tuple[SpanRecord, ...] = ()
    # Counter series (name, label items, value) from the same local
    # tracer — sorts, join pairs, algorithm phases — which would
    # otherwise be lost with the worker process.
    counters: Tuple[Tuple[str, Tuple[Tuple[str, str], ...], float], ...] = ()

    @property
    def simulated_seconds(self) -> float:
        return float(self.cost.get("simulated_seconds", 0.0))


def merge_cuboids(
    outcomes: List[PartitionOutcome],
) -> Dict[LatticePoint, Cuboid]:
    """Union of the per-partition cuboid maps; overlap is a plan bug.

    Thin adapter over the shared kernel's :func:`repro.core.merge
    .merge_disjoint` (the cluster coordinator consumes the kernel's
    state-merge half; the engine consumes this half).
    """
    return merge_disjoint(
        outcome.cuboids
        for outcome in sorted(outcomes, key=lambda o: o.index)
    )


def scheduled_critical_path(costs: List[float], n_workers: int) -> float:
    """The modeled critical path of an LPT schedule of ``costs`` onto
    ``n_workers`` identical workers.

    Longest-processing-time-first is the schedule the pool converges to
    when every worker is equally fast, and it is a pure function of the
    modeled costs — so the resulting speedup is host-independent, as the
    cost model requires.
    """
    if not costs or n_workers <= 0:
        return 0.0
    bins = [0.0] * min(n_workers, len(costs))
    for cost in sorted(costs, reverse=True):
        lightest = min(range(len(bins)), key=bins.__getitem__)
        bins[lightest] += cost
    return max(bins)


def merge_costs(
    outcomes: List[PartitionOutcome],
    merge_seconds: float,
    total_wall_seconds: float,
    max_workers: Optional[int] = None,
) -> CostSnapshot:
    """Sum the counters; attribute work to workers; take the critical path.

    ``max_workers`` (the pool size) selects the deterministic LPT
    critical path; without it the busiest *actual* worker is used."""
    totals: Dict[str, float] = {}
    for outcome in outcomes:
        for key, value in outcome.cost.items():
            totals[key] = totals.get(key, 0.0) + value

    per_worker: Dict[str, Dict[str, float]] = {}
    for outcome in outcomes:
        slot = per_worker.setdefault(
            outcome.worker,
            {
                "partitions": 0,
                "points": 0,
                "wall_seconds": 0.0,
                "simulated_seconds": 0.0,
                "queue_wait_seconds": 0.0,
            },
        )
        slot["partitions"] += 1
        slot["points"] += outcome.points
        slot["wall_seconds"] += outcome.wall_seconds
        slot["simulated_seconds"] += outcome.simulated_seconds
        slot["queue_wait_seconds"] += outcome.queue_wait_seconds

    workers = tuple(
        WorkerCost(
            worker=name,
            partitions=int(slot["partitions"]),
            points=int(slot["points"]),
            wall_seconds=slot["wall_seconds"],
            simulated_seconds=slot["simulated_seconds"],
            queue_wait_seconds=slot["queue_wait_seconds"],
        )
        for name, slot in sorted(per_worker.items())
    )
    if max_workers is not None:
        critical_path = scheduled_critical_path(
            [outcome.simulated_seconds for outcome in outcomes], max_workers
        )
    else:
        critical_path = max(
            (cost.simulated_seconds for cost in workers), default=0.0
        )
    base = CostSnapshot.from_mapping(totals)
    return CostSnapshot(
        cpu_ops=base.cpu_ops,
        page_reads=base.page_reads,
        page_writes=base.page_writes,
        buffer_hits=base.buffer_hits,
        buffer_misses=base.buffer_misses,
        evictions=base.evictions,
        simulated_seconds=base.simulated_seconds,
        wall_seconds=total_wall_seconds,
        merge_seconds=merge_seconds,
        parallel_simulated_seconds=critical_path,
        workers=workers,
    )


def merge_passes(outcomes: List[PartitionOutcome]) -> int:
    return max((outcome.passes for outcome in outcomes), default=1)


def merged_algorithm_name(outcomes: List[PartitionOutcome]) -> str:
    """One name for the merged run; AUTO may delegate per partition."""
    names = sorted({outcome.algorithm for outcome in outcomes})
    return names[0] if len(names) == 1 else "|".join(names)
