"""DTD-style schema model, parsing, inference and property reasoning.

The paper's Section 3.7 infers summarizability properties of lattice points
from schema knowledge (which sub-elements are optional, which may repeat,
and which paths are unique).  This subpackage provides:

- :class:`~repro.schema.dtd.Dtd` — element declarations with child
  cardinalities and attribute declarations;
- :func:`~repro.schema.dtd_parser.parse_dtd` — a parser for the DTD subset;
- :func:`~repro.schema.inference.infer_dtd` — learn cardinalities from
  document instances;
- :mod:`repro.schema.properties` — path-level reasoning used by the cube
  layer to decide where disjointness / total coverage are guaranteed.
"""

from repro.schema.dtd import Cardinality, Dtd, ElementDecl
from repro.schema.dtd_parser import parse_dtd
from repro.schema.inference import infer_dtd

__all__ = ["Cardinality", "Dtd", "ElementDecl", "parse_dtd", "infer_dtd"]
