"""Unit tests for single-flight call deduplication."""

import threading

import pytest

from repro.serve.singleflight import SingleFlight


class TestSequential:
    def test_runs_and_returns(self):
        flight = SingleFlight()
        result, shared = flight.do("k", lambda: 42)
        assert result == 42 and shared is False
        assert flight.led_total == 1 and flight.shared_total == 0

    def test_sequential_calls_each_execute(self):
        flight = SingleFlight()
        calls = []
        for _ in range(3):
            flight.do("k", lambda: calls.append(1))
        assert len(calls) == 3
        assert flight.led_total == 3 and flight.shared_total == 0

    def test_exception_propagates_and_clears(self):
        flight = SingleFlight()
        with pytest.raises(ValueError):
            flight.do("k", self._boom)
        assert flight.in_flight() == 0
        result, _ = flight.do("k", lambda: "recovered")
        assert result == "recovered"

    @staticmethod
    def _boom():
        raise ValueError("boom")


class TestConcurrent:
    def test_stampede_computes_once(self):
        flight = SingleFlight()
        release = threading.Event()
        executions = []

        def compute():
            executions.append(1)
            # Hold the flight open until every joiner has registered.
            assert release.wait(timeout=5.0)
            return "value"

        results = []

        def request():
            results.append(flight.do("key", compute))

        threads = [threading.Thread(target=request) for _ in range(4)]
        for thread in threads:
            thread.start()
        # The three non-leaders each bump shared_total *before* blocking.
        for _ in range(2000):
            if flight.shared_total == 3:
                break
            threading.Event().wait(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)

        assert len(executions) == 1
        assert flight.led_total == 1 and flight.shared_total == 3
        assert [value for value, _ in results] == ["value"] * 4
        assert sorted(shared for _, shared in results) == [
            False,
            True,
            True,
            True,
        ]

    def test_leader_error_reaches_joiners(self):
        flight = SingleFlight()
        release = threading.Event()

        def compute():
            assert release.wait(timeout=5.0)
            raise RuntimeError("leader failed")

        errors = []

        def request():
            try:
                flight.do("key", compute)
            except RuntimeError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=request) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(2000):
            if flight.shared_total == 2:
                break
            threading.Event().wait(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert errors == ["leader failed"] * 3

    def test_distinct_keys_are_independent(self):
        flight = SingleFlight()
        a, _ = flight.do("a", lambda: 1)
        b, _ = flight.do("b", lambda: 2)
        assert (a, b) == (1, 2)
        assert flight.led_total == 2 and flight.shared_total == 0
