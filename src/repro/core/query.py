"""The X^3 query object: fact binding, axes, aggregate.

An :class:`X3Query` is the structured form of the paper's augmented FLWOR
expression (Query 1).  It knows how to render itself back to that syntax,
how to build its cube lattice, and how to build the grouping tree pattern
(rigid and most-relaxed) that Sec. 2 defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.core.axes import AxisSpec
from repro.core.aggregates import AggregateSpec
from repro.core.lattice import CubeLattice
from repro.errors import QueryError
from repro.patterns.pattern import EdgeAxis, PatternNode, TreePattern
from repro.patterns.relaxation import Relaxation, most_relaxed_pattern


@dataclass(frozen=True)
class X3Query:
    """A full cube specification.

    Attributes:
        fact_tag: tag of the fact elements (e.g. ``publication``); facts
            are matched anywhere in the documents (``//fact_tag``).
        fact_id_path: path from the fact to its identifier, ``"@id"`` by
            default; node identity is used when the path binds nothing.
        axes: the grouping axes.
        aggregate: the RETURN clause.
        document: display name of the source (``doc("book.xml")``).
    """

    fact_tag: str
    axes: Tuple[AxisSpec, ...]
    aggregate: AggregateSpec = field(default_factory=AggregateSpec)
    fact_id_path: str = "@id"
    document: str = "book.xml"

    def __post_init__(self) -> None:
        if not self.fact_tag:
            raise QueryError("fact tag must be non-empty")
        if not self.axes:
            raise QueryError("an X^3 query needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate axis names in {names}")

    # ------------------------------------------------------------------
    def lattice(self) -> CubeLattice:
        return CubeLattice(self.axes)

    def relaxation_specs(self) -> Dict[str, Set[Relaxation]]:
        return {axis.name: set(axis.relaxations) for axis in self.axes}

    # ------------------------------------------------------------------
    # tree patterns (Sec. 2)
    # ------------------------------------------------------------------
    def rigid_pattern(self) -> TreePattern:
        """The grouping tree pattern of the query text (Fig. 3 (a))."""
        root = PatternNode(self.fact_tag, label="$fact")
        if self.fact_id_path:
            root.add(PatternNode(f"@{self.fact_id_path.lstrip('@')}"))
        for axis in self.axes:
            cursor = root
            for position, (edge, test) in enumerate(axis.steps):
                is_binding = position == len(axis.steps) - 1
                node = PatternNode(
                    test,
                    axis=edge,
                    label=axis.name if is_binding else "",
                )
                cursor.add(node)
                cursor = node
        pattern = TreePattern(root, root_axis=EdgeAxis.DESCENDANT)
        pattern.validate()
        return pattern

    def most_relaxed(self) -> TreePattern:
        """The most relaxed fully instantiated pattern (Fig. 2)."""
        return most_relaxed_pattern(
            self.rigid_pattern(), self.relaxation_specs()
        )

    # ------------------------------------------------------------------
    def to_flwor(self) -> str:
        """Render back to the paper's augmented FLWOR syntax."""
        lines = [f'for $b in doc("{self.document}")//{self.fact_tag},']
        for position, axis in enumerate(self.axes):
            comma = "," if position < len(self.axes) - 1 else ""
            path = axis.path_text()
            sep = "" if path.startswith("/") else "/"
            lines.append(f"    {axis.name} in $b{sep}{path}{comma}")
        id_expr = f"$b/{self.fact_id_path}" if self.fact_id_path else "$b"
        for position, axis in enumerate(self.axes):
            names = ", ".join(
                sorted((r.value for r in axis.relaxations))
            )
            prefix = f"X^3 {id_expr} by " if position == 0 else "       "
            comma = "," if position < len(self.axes) - 1 else ""
            lines.append(f"{prefix}{axis.name} ({names}){comma}")
        measure = self.aggregate.measure_path
        inner = f"$b/{measure}" if measure else "$b"
        lines.append(f"return {self.aggregate.function.upper()}({inner}).")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_flwor()
