"""Structured request events and the bounded ring-buffer event log.

The serving layer (:class:`repro.serve.CubeServer`) picks a rung of the
sound-source ladder for every query; this module gives that decision a
durable, queryable shape.  Three record types, all frozen dataclasses:

- :class:`RungDecision` — one rung of the ladder (cache / view / rollup
  / incremental / recompute) with whether it was taken and *why not*
  when it was rejected, including the Sec. 2 disjoint/covered proof
  verdicts the rollup rung is gated by;
- :class:`EvictionRecord` — one cache-state change (budget eviction,
  admission rejection, write-path invalidation, admission), carrying
  the victim's GreedyDual priority at eviction and the cells freed;
- :class:`RequestEvent` / :class:`WriteEvent` — one served query or one
  applied delta batch, with the full rung trail and cache audit trail.

Events land in an :class:`EventLog`: a thread-safe bounded ring buffer
that stamps every event with a process-unique, strictly increasing
sequence number under its lock (events are never lost to a race and
never duplicated; only overwritten when the ring wraps, which the
``dropped`` counter reports).  The log exports JSON Lines, one event
per line, so a serving session's decisions can be replayed, diffed
against ``explain()`` output, and attached to CI runs as artifacts.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Any, Deque, Dict, Tuple, TypeVar, Union

#: Cache audit trail entry kinds.
EVICTION_KINDS = ("admitted", "evicted", "rejected", "invalidated")


@dataclass(frozen=True)
class RungDecision:
    """One rung of the sound-source ladder, examined for one query."""

    rung: str  #: ladder rung name (one of ``repro.serve.TIERS``)
    taken: bool  #: did the query resolve here?
    reason: str  #: why taken, why rejected, or "not reached"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class EvictionRecord:
    """One cache-state change, in GreedyDual terms.

    ``priority`` is the entry's GreedyDual-Size priority at the moment
    of the change (0.0 for invalidations, which bypass the policy) and
    ``cells`` the resident cells freed (or admitted, for ``admitted``).
    """

    kind: str  #: one of :data:`EVICTION_KINDS`
    point: str  #: described lattice point of the entry
    priority: float
    cells: int
    trace_id: str = ""  #: trace of the request that caused the change

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class RequestEvent:
    """One served query: what was asked, which rung answered, and the
    decision + cache audit trails explaining the choice."""

    TYPE = "request"

    seq: int  #: assigned by the :class:`EventLog`, strictly increasing
    kind: str  #: query kind: ``cuboid`` / ``cell`` / ``slice`` / ``dice``
    point: str  #: described lattice point
    tier: str  #: the ladder rung that answered
    version: int  #: table version the answer is exact for
    modeled_seconds: float  #: modeled cost actually paid
    cold_seconds: float  #: modeled cost of answering cold from base
    wall_seconds: float  #: host wall time spent resolving
    cells: int  #: size of the answer, in cells
    rungs: Tuple[RungDecision, ...] = ()
    cache_audit: Tuple[EvictionRecord, ...] = ()
    trace_id: str = ""  #: hex trace id when the request was sampled

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["type"] = self.TYPE
        return out


@dataclass(frozen=True)
class WriteEvent:
    """One applied delta batch and its effect on resident cuboids."""

    TYPE = "write"

    seq: int
    op: str  #: ``insert`` or ``delete``
    rows: int  #: delta batch size
    version: int  #: table version after the write
    patched_points: int  #: cuboids patched in place (exact fold)
    evicted_points: int  #: cuboids dropped (aggregate not patchable)
    wall_seconds: float
    cache_audit: Tuple[EvictionRecord, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["type"] = self.TYPE
        return out


@dataclass(frozen=True)
class ClusterEvent:
    """One cluster-coordination decision: a failover, a hedged read, a
    stale-replica retry, an injected fault, or a completed fan-out.

    The scatter-gather coordinator (:mod:`repro.cluster`) appends these
    to its own :class:`EventLog`, so every degraded-mode decision — why
    a replica was skipped, which backup answered, which answer was
    rejected as version-inconsistent — is replayable and shippable as a
    CI artifact exactly like the serving layer's request log.
    """

    TYPE = "cluster"

    seq: int  #: assigned by the :class:`EventLog`, strictly increasing
    kind: str  #: ``failover`` / ``hedge`` / ``stale_retry`` / ``crash``
    #: / ``heal`` / ``read`` / ``write``
    op: int  #: coordinator operation index the decision belongs to
    shard: int  #: shard the decision concerns (-1: cluster-wide)
    replica: int  #: replica the decision concerns (-1: shard-wide)
    detail: str  #: human-readable why
    versions: Tuple[int, ...] = ()  #: version vector, when relevant
    modeled_seconds: float = 0.0  #: modeled latency, when relevant
    trace_id: str = ""  #: hex trace id when the request was sampled

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["type"] = self.TYPE
        return out


Event = Union[RequestEvent, WriteEvent, ClusterEvent]
EventT = TypeVar("EventT", RequestEvent, WriteEvent, ClusterEvent)


class EventLog:
    """A thread-safe bounded ring buffer of serving events.

    Appends stamp the event with the next sequence number under the
    log's lock, so concurrent writers can never skip or duplicate a
    sequence.  When the ring is full the oldest event is overwritten
    and counted in :attr:`dropped` — the log is a flight recorder, not
    an unbounded archive.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(
                f"event log capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._buffer: Deque[Event] = deque()
        self._next_seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, event: EventT) -> EventT:
        """Stamp ``event`` with the next sequence number and store it.

        Returns the stamped copy (events are frozen; the caller's
        instance is not mutated).
        """
        with self._lock:
            stamped = replace(event, seq=self._next_seq)
            self._next_seq += 1
            if len(self._buffer) == self.capacity:
                self._buffer.popleft()
                self._dropped += 1
            self._buffer.append(stamped)
            return stamped

    def clear(self) -> int:
        """Drop buffered events (sequence numbering continues)."""
        with self._lock:
            cleared = len(self._buffer)
            self._buffer.clear()
            return cleared

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Event, ...]:
        """Every buffered event, oldest first, atomically."""
        with self._lock:
            return tuple(self._buffer)

    def tail(self, n: int) -> Tuple[Event, ...]:
        """The most recent ``n`` buffered events, oldest first."""
        if n <= 0:
            return ()
        with self._lock:
            return tuple(list(self._buffer)[-n:])

    def requests(self) -> Tuple[RequestEvent, ...]:
        """Only the buffered :class:`RequestEvent`\\ s, oldest first."""
        return tuple(
            event
            for event in self.snapshot()
            if isinstance(event, RequestEvent)
        )

    def writes(self) -> Tuple[WriteEvent, ...]:
        """Only the buffered :class:`WriteEvent`\\ s, oldest first."""
        return tuple(
            event
            for event in self.snapshot()
            if isinstance(event, WriteEvent)
        )

    def cluster_events(self) -> Tuple[ClusterEvent, ...]:
        """Only the buffered :class:`ClusterEvent`\\ s, oldest first."""
        return tuple(
            event
            for event in self.snapshot()
            if isinstance(event, ClusterEvent)
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    @property
    def total(self) -> int:
        """Events ever appended (buffered + overwritten)."""
        with self._lock:
            return self._next_seq

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring wrapped."""
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The buffered events as JSON Lines (one object per line)."""
        lines = [
            json.dumps(event.to_dict(), separators=(",", ":"))
            for event in self.snapshot()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns events written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text.count("\n")
