"""Hierarchical span tracing with wall *and* simulated time bases.

A :class:`Tracer` records a tree of :class:`SpanRecord`\\ s.  Span
nesting is tracked per thread, so worker threads of the parallel engine
produce correctly parented subtrees inside one coherent trace; process
workers build a local tracer and ship their (picklable) records back to
be absorbed into the parent trace.

Zero cost when disabled is a hard requirement: a disabled tracer's
:meth:`Tracer.span` returns one shared :data:`NULL_SPAN` singleton —
no span object is allocated, nothing is recorded, and the guard is a
single attribute check.  Hot loops (per-row, per-page) are never
instrumented at all; the cost model already counts them and its totals
are absorbed into the metrics registry after the run.

Every span carries two durations:

- ``duration`` — wall seconds (host-dependent);
- ``sim_duration`` — deterministic simulated seconds, captured from a
  :class:`~repro.timber.stats.CostModel` when one is passed, so traces
  are comparable across machines just like the bench figures.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry


def _thread_label() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


@dataclass
class SpanRecord:
    """One finished span — plain data, picklable across process pools."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float  # seconds since the tracer's epoch (wall clock)
    duration: float  # wall seconds
    thread: str
    sim_start: float = 0.0
    sim_duration: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """An open span; use as a context manager."""

    __slots__ = (
        "_tracer",
        "name",
        "category",
        "span_id",
        "parent_id",
        "attrs",
        "_cost",
        "_start",
        "_sim_start",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        cost: Any,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = tracer._allocate_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._cost = cost
        self._start = 0.0
        self._sim_start = 0.0

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if self.parent_id is None:
            self.parent_id = tracer._current_span_id()
        tracer._push(self.span_id)
        if self._cost is not None:
            self._sim_start = self._cost.simulated_seconds()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        sim_duration = 0.0
        if self._cost is not None:
            sim_duration = (
                self._cost.simulated_seconds() - self._sim_start
            )
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self, duration, sim_duration)


class _NullSpan:
    """The do-nothing span a disabled tracer hands out.  One instance."""

    __slots__ = ()

    enabled = False
    name = ""
    category = ""
    span_id = -1
    parent_id = None

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans (thread-safe) and owns the run's metrics registry."""

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "",
        cost: Any = None,
        parent: Optional[int] = None,
        **attrs: Any,
    ):
        """Open a span (context manager).  No-op singleton when disabled.

        Args:
            name: span name (dotted, e.g. ``"engine.merge"``).
            category: layer tag (``parse`` / ``timber`` / ``algorithm`` /
                ``engine`` / ...), used by the exporters.
            cost: a live cost model; when given, the span also measures
                simulated seconds.
            parent: explicit parent span id — used when handing work to
                a thread whose span stack is empty (engine dispatch).
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, category, cost, parent, attrs)

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    def _allocate_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _finish(
        self, span: Span, duration: float, sim_duration: float
    ) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        record = SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            start=span._start - self._epoch,
            duration=duration,
            thread=_thread_label(),
            sim_start=span._sim_start,
            sim_duration=sim_duration,
            attrs=span.attrs,
        )
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # reads / merging
    # ------------------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        """Finished spans, ordered by start time."""
        with self._lock:
            return sorted(self._records, key=lambda r: (r.start, r.span_id))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def absorb(
        self,
        records: Sequence[SpanRecord],
        parent_id: Optional[int] = None,
        shift: float = 0.0,
    ) -> None:
        """Merge records from another tracer (a process worker).

        Span ids are remapped to fresh ids; records without a parent in
        the batch are attached under ``parent_id``; start times are
        shifted by ``shift`` seconds to land on this tracer's timeline.
        """
        if not records:
            return
        remap: Dict[int, int] = {}
        for record in records:
            remap[record.span_id] = self._allocate_id()
        absorbed = []
        for record in records:
            mapped_parent = (
                remap.get(record.parent_id)
                if record.parent_id is not None
                else None
            )
            if mapped_parent is None:
                mapped_parent = parent_id
            absorbed.append(
                SpanRecord(
                    span_id=remap[record.span_id],
                    parent_id=mapped_parent,
                    name=record.name,
                    category=record.category,
                    start=record.start + shift,
                    duration=record.duration,
                    thread=record.thread,
                    sim_start=record.sim_start,
                    sim_duration=record.sim_duration,
                    attrs=record.attrs,
                )
            )
        with self._lock:
            self._records.extend(absorbed)

    def trace(self) -> "Trace":
        """Freeze the current spans + metrics into an exportable report."""
        return Trace(records=tuple(self.records()), metrics=self.metrics)


NULL_TRACER = Tracer(enabled=False)

_active: Tracer = NULL_TRACER
_active_lock = threading.Lock()


def current_tracer() -> Tracer:
    """The tracer instrumentation points report to (disabled by default)."""
    return _active


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide active tracer.

    Process-wide (not thread-local) on purpose: engine worker threads
    must report into the same trace as the dispatching thread.  Nested
    activations restore the previous tracer on exit.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = tracer
    try:
        yield tracer
    finally:
        with _active_lock:
            _active = previous


@dataclass(frozen=True)
class Trace:
    """A finished trace: the span forest plus the unified metrics."""

    records: Tuple[SpanRecord, ...]
    metrics: MetricsRegistry

    # Exporters live in repro.obs.export; these are the ergonomic fronts.
    def to_chrome_json(self) -> str:
        from repro.obs.export import chrome_trace_json

        return chrome_trace_json(self.records, self.metrics)

    def to_collapsed(self) -> str:
        from repro.obs.export import collapsed_stacks

        return collapsed_stacks(self.records)

    def to_prometheus(self) -> str:
        from repro.obs.export import prometheus_text

        return prometheus_text(self.metrics)

    def write_chrome(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_json())

    # ------------------------------------------------------------------
    def span_names(self) -> List[str]:
        return [record.name for record in self.records]

    def categories(self) -> List[str]:
        return sorted(
            {record.category for record in self.records if record.category}
        )

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [record for record in self.records if record.name == name]

    def children_of(self, span_id: int) -> List[SpanRecord]:
        return [
            record
            for record in self.records
            if record.parent_id == span_id
        ]

    def summary(self, top: int = 10) -> str:
        """Aggregate per-name totals, busiest first (CLI ``--profile``)."""
        totals: Dict[str, List[float]] = {}
        for record in self.records:
            slot = totals.setdefault(record.name, [0, 0.0, 0.0])
            slot[0] += 1
            slot[1] += record.duration
            slot[2] += record.sim_duration
        lines = [
            f"{'span':<28} {'count':>6} {'wall_s':>10} {'sim_s':>10}"
        ]
        ranked = sorted(
            totals.items(), key=lambda item: -item[1][1]
        )[:top]
        for name, (count, wall, sim) in ranked:
            lines.append(
                f"{name:<28} {count:>6} {wall:>10.4f} {sim:>10.4f}"
            )
        return "\n".join(lines)
