"""Golden request/response tests for the transport-independent API core.

Every test drives :meth:`repro.server.X3Api.handle` directly — the
complete front-door path (routing, JSON decoding, auth, admission,
logical-model resolution, error mapping) without a socket.  The
workload is the paper's Fig. 1 running example, so the group contents
are exact goldens, not shape assertions.
"""

import json

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.publications import figure1_document, query1
from repro.serve import CubeServer
from repro.server import CubeCatalog, LogicalCube, TenantAuth, X3Api


@pytest.fixture()
def api():
    table = extract_fact_table(figure1_document(), query1())
    server = CubeServer(table, PropertyOracle.from_data(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", table.lattice, measure="COUNT"),
        server,
    )
    return X3Api(catalog)


def call(api, method, path, body=None, headers=None):
    encoded = (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    response = api.handle(method, path, encoded, headers)
    return response, json.loads(response.body)


class TestCatalogEndpoints:
    def test_list_cubes_golden(self, api):
        response, decoded = call(api, "GET", "/api/v1/cubes")
        assert response.status == 200
        assert response.content_type == "application/json"
        assert decoded == {
            "cubes": [
                {
                    "name": "pubs",
                    "dimensions": [
                        {"name": "n", "axis": "$n"},
                        {"name": "p", "axis": "$p"},
                        {"name": "y", "axis": "$y"},
                    ],
                    "measure": "COUNT",
                    "lattice_points": 30,
                    "version": [0],
                }
            ]
        }

    def test_describe_one_cube(self, api):
        response, decoded = call(api, "GET", "/api/v1/cubes/pubs")
        assert response.status == 200
        assert decoded["name"] == "pubs"
        assert decoded["lattice_points"] == 30


class TestQueryEndpoints:
    def test_aggregate_golden(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"group_by": {"y": "detail"}},
        )
        assert response.status == 200
        assert decoded.pop("modeled_seconds") > 0.0
        rungs = decoded.pop("rungs")
        assert [r["rung"] for r in rungs] == [
            "cache", "view", "rollup", "incremental", "recompute",
        ]
        assert [r["rung"] for r in rungs if r["taken"]] == ["recompute"]
        assert decoded == {
            "kind": "aggregate",
            "point": "$n:LND, $p:LND, $y:rigid",
            "version": [0],
            "tier": "recompute",
            "cells": 3,
            "deadline_exceeded": False,
            "groups": [
                {"key": ["2003"], "value": 2.0},
                {"key": ["2004"], "value": 1.0},
                {"key": ["2005"], "value": 1.0},
            ],
        }

    def test_cell_golden(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/cell",
            {"group_by": {"y": "detail"}, "key": ["2003"]},
        )
        assert response.status == 200
        assert decoded["kind"] == "cell"
        assert decoded["value"] == 2.0
        assert "groups" not in decoded

    def test_cell_missing_key_is_null(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/cell",
            {"group_by": {"y": "detail"}, "key": ["1999"]},
        )
        assert response.status == 200
        assert decoded["value"] is None

    def test_slice_golden(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/slice",
            {
                "group_by": {"n": "detail", "y": "detail"},
                "axis": "y",
                "value": "2003",
            },
        )
        assert response.status == 200
        assert decoded["kind"] == "slice"
        assert decoded["point"] == "$n:rigid, $p:LND, $y:rigid"
        assert decoded["groups"] == [
            {"key": ["Jane"], "value": 1.0},
            {"key": ["John"], "value": 1.0},
        ]

    def test_dice_golden(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/dice",
            {
                "group_by": {"n": "detail", "y": "detail"},
                "filters": {"y": ["2003"]},
            },
        )
        assert response.status == 200
        assert decoded["kind"] == "dice"
        assert decoded["groups"] == [
            {"key": ["Jane", "2003"], "value": 1.0},
            {"key": ["John", "2003"], "value": 1.0},
        ]

    def test_drilldown_refines_from_apex(self, api):
        # No point/group_by at all: start at the apex, drill down $y.
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/drilldown",
            {"axis": "y"},
        )
        assert response.status == 200
        assert decoded["kind"] == "drilldown"
        assert decoded["point"] == "$n:LND, $p:LND, $y:rigid"
        assert [g["key"] for g in decoded["groups"]] == [
            ["2003"], ["2004"], ["2005"],
        ]

    def test_explain_golden(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/explain",
            {"group_by": {"y": "detail"}},
        )
        assert response.status == 200
        assert decoded["backend"] == "serve"
        assert decoded["kind"] == "aggregate"
        assert decoded["point"] == "$n:LND, $p:LND, $y:rigid"
        assert decoded["shards"] == []
        assert len(decoded["rungs"]) == 5

    def test_raw_point_description_works_too(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"point": "$n:LND, $p:LND, $y:rigid"},
        )
        assert response.status == 200
        assert decoded["cells"] == 3

    def test_measure_check_round_trip(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"measure": "COUNT"},
        )
        assert response.status == 200
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"measure": "SUM"},
        )
        assert response.status == 400


class TestErrorMapping:
    def test_unknown_cube_is_404(self, api):
        response, decoded = call(
            api, "POST", "/api/v1/cubes/warp/aggregate", {}
        )
        assert response.status == 404
        assert decoded["error"]["kind"] == "unknown_cube"
        assert "pubs" in decoded["error"]["message"]

    def test_unknown_route_is_404(self, api):
        response, decoded = call(api, "GET", "/api/v2/cubes")
        assert response.status == 404
        assert decoded["error"]["kind"] == "not_found"

    def test_bad_point_is_400(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"point": "$n:warp"},
        )
        assert response.status == 400
        assert decoded["error"]["kind"] == "invalid_query"

    def test_unknown_field_is_400(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"grop_by": {"y": "detail"}},
        )
        assert response.status == 400
        assert "grop_by" in decoded["error"]["message"]

    def test_non_json_body_is_400(self, api):
        response = api.handle(
            "POST", "/api/v1/cubes/pubs/aggregate", b"not json"
        )
        assert response.status == 400

    def test_array_body_is_400(self, api):
        response = api.handle(
            "POST", "/api/v1/cubes/pubs/aggregate", b"[1, 2]"
        )
        assert response.status == 400

    def test_point_and_group_by_conflict_is_400(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"point": "$n:LND, $p:LND, $y:LND", "group_by": {}},
        )
        assert response.status == 400
        assert "not both" in decoded["error"]["message"]

    def test_kind_contradicting_endpoint_is_400(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"kind": "slice", "axis": "y", "value": "2003"},
        )
        assert response.status == 400
        assert "contradicts" in decoded["error"]["message"]

    def test_wrong_method_is_405(self, api):
        response, decoded = call(api, "GET", "/api/v1/cubes/pubs/aggregate")
        assert response.status == 405
        response, decoded = call(api, "POST", "/api/v1/cubes")
        assert response.status == 405
        response, decoded = call(api, "POST", "/metrics")
        assert response.status == 405

    def test_stale_read_version_is_409(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"read_version": [5]},
        )
        assert response.status == 409
        assert decoded["error"]["kind"] == "stale_version"

    def test_mismatched_read_version_is_400(self, api):
        response, decoded = call(
            api,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {"read_version": [0, 0]},
        )
        assert response.status == 400

    def test_trailing_slash_and_query_string_ignored(self, api):
        response, decoded = call(api, "GET", "/api/v1/cubes/?pretty=1")
        assert response.status == 200


class TestAuth:
    def test_open_server_is_anonymous(self, api):
        response, _ = call(api, "GET", "/api/v1/cubes")
        assert response.status == 200

    @pytest.fixture()
    def locked(self, api):
        api.auth = TenantAuth({"s3cret": "acme"})
        return api

    def test_missing_token_is_401(self, locked):
        response, decoded = call(locked, "GET", "/api/v1/cubes")
        assert response.status == 401
        assert decoded["error"]["kind"] == "unauthorized"

    def test_unknown_token_is_401(self, locked):
        response, _ = call(
            locked,
            "GET",
            "/api/v1/cubes",
            headers={"Authorization": "Bearer wrong"},
        )
        assert response.status == 401

    def test_wrong_scheme_is_401(self, locked):
        response, _ = call(
            locked,
            "GET",
            "/api/v1/cubes",
            headers={"Authorization": "Basic s3cret"},
        )
        assert response.status == 401

    def test_valid_token_admits_and_labels_tenant(self, locked):
        response, _ = call(
            locked,
            "POST",
            "/api/v1/cubes/pubs/aggregate",
            {},
            headers={"authorization": "Bearer s3cret"},
        )
        assert response.status == 200
        exposition = locked.handle(
            "GET",
            "/metrics",
            headers={"Authorization": "Bearer s3cret"},
        ).body
        assert 'tenant="acme"' in exposition


class TestMetrics:
    def test_exposition_merges_front_door_and_backend(self, api):
        call(api, "POST", "/api/v1/cubes/pubs/aggregate", {})
        response = api.handle("GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert "x3_http_requests_total" in response.body
        assert 'route="aggregate"' in response.body
        assert "x3_http_query_modeled_seconds" in response.body
        # The backend's own exposition rides along.
        assert "x3_serve_requests_total" in response.body

    def test_request_counter_counts_errors_too(self, api):
        call(api, "POST", "/api/v1/cubes/warp/aggregate", {})
        body = api.handle("GET", "/metrics").body
        assert 'status="404"' in body
