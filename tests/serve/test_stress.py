"""Concurrency stress test: readers race a writer through CubeServer.

One writer thread drives interleaved insert/delete batches while reader
threads hammer cuboid queries.  Every versioned answer a reader gets
must equal a serial NAIVE recomputation over the exact rows the table
held at that version — the server's linearizability-per-snapshot
contract.  Runs in CI (marked slow) because this is where cache
patching, eviction, single-flight and versioning all collide.
"""

import random
import threading

import pytest

from repro.core.bindings import FactTable
from repro.core.incremental import IncrementalCube, split_rows
from repro.serve import CubeServer
from repro.testing import small_workload
from tests.serve.test_server import reference_cuboid

READERS = 4
READS_PER_READER = 30
WRITE_BATCHES = 12


@pytest.mark.slow
@pytest.mark.parametrize("attach_incremental", [False, True])
def test_concurrent_reads_match_serial_recompute(attach_incremental):
    table = small_workload(n_facts=120, seed=21).fact_table()
    initial, churn = split_rows(table, 0.5)
    live = FactTable(table.lattice, list(initial), table.aggregate)
    oracle = small_workload(n_facts=120, seed=21).oracle(live)
    incremental = IncrementalCube(live) if attach_incremental else None
    server = CubeServer(
        live, oracle, cache_cells=256, incremental=incremental
    )

    # Only the writer mutates; it records the exact rows at each version.
    rows_at_version = {0: tuple(initial)}
    write_error = []

    def writer():
        rng = random.Random(77)
        resident = []
        try:
            for _ in range(WRITE_BATCHES):
                insert_now = rng.sample(
                    [row for row in churn if row not in resident],
                    k=min(4, len(churn) - len(resident)),
                )
                if insert_now:
                    version = server.insert(insert_now)
                    resident.extend(insert_now)
                    rows_at_version[version] = tuple(live.rows)
                if resident and rng.random() < 0.5:
                    victim = resident.pop(rng.randrange(len(resident)))
                    version = server.delete([victim])
                    rows_at_version[version] = tuple(live.rows)
        except Exception as error:  # pragma: no cover - failure path
            write_error.append(error)

    points = list(live.lattice.points())
    observations = []
    observations_lock = threading.Lock()
    read_errors = []

    def reader(seed):
        rng = random.Random(seed)
        local = []
        try:
            for _ in range(READS_PER_READER):
                point = rng.choice(points)
                cuboid, version = server.cuboid_versioned(point)
                local.append((point, version, cuboid))
        except Exception as error:  # pragma: no cover - failure path
            read_errors.append(error)
        with observations_lock:
            observations.extend(local)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(seed,))
        for seed in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)

    assert not write_error, write_error
    assert not read_errors, read_errors
    assert len(observations) == READERS * READS_PER_READER

    # Verify each distinct (point, version) once against serial NAIVE.
    expected_cache = {}
    for point, version, cuboid in observations:
        assert version in rows_at_version, (
            "server reported a version the writer never produced"
        )
        key = (point, version)
        if key not in expected_cache:
            expected_cache[key] = reference_cuboid(
                live, rows_at_version[version], point
            )
        assert cuboid == expected_cache[key], (
            f"answer at version {version} for "
            f"{live.lattice.describe(point)} diverged from serial "
            f"recompute"
        )

    # The race actually exercised the write path.
    stats = server.stats()
    assert stats.writes > 0
    assert stats.requests >= READERS * READS_PER_READER

    # The event log kept up with the race: one event per operation,
    # contiguous sequence numbers, nothing lost and nothing duplicated.
    events = server.events.snapshot()
    assert server.events.dropped == 0
    assert len(events) == server.events.total
    assert [event.seq for event in events] == list(range(len(events)))
    requests = server.events.requests()
    writes = server.events.writes()
    assert len(requests) == stats.requests
    assert len(writes) == stats.writes
    # Each request event names the rung that answered it, and the
    # decision trail always covers the full ladder.
    for event in requests:
        assert event.tier in stats.tiers
        assert [decision.rung for decision in event.rungs] == list(
            stats.tiers
        )
        assert any(
            decision.taken and decision.rung == event.tier
            for decision in event.rungs
        )
