"""Tests for the streaming event API."""

import pytest
from hypothesis import given, settings

from repro.errors import XmlParseError
from repro.xmlmodel.parser import parse
from repro.xmlmodel.stream import (
    build_from_events,
    count_tags,
    iter_events,
    tree_events,
)

# Reuse the random-element strategy from the XML property suite.
from tests.prop.test_hypothesis_xml import random_element, shape
from repro.xmlmodel.nodes import Document


class TestIterEvents:
    def test_event_sequence(self):
        events = list(iter_events('<a x="1"><b>hi</b><c/></a>'))
        assert events == [
            ("start", "a", {"x": "1"}),
            ("start", "b", {}),
            ("text", "hi"),
            ("end", "b"),
            ("start", "c", {}),
            ("end", "c"),
            ("end", "a"),
        ]

    def test_whitespace_only_text_skipped(self):
        events = list(iter_events("<a>\n  <b/>\n</a>"))
        assert ("text", "\n  ") not in events
        kinds = [event[0] for event in events]
        assert kinds == ["start", "start", "end", "end"]

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            list(iter_events("<a><b></a>"))

    def test_count_tags(self):
        counts = count_tags("<a><b/><b/><c><b/></c></a>")
        assert counts == {"a": 1, "b": 3, "c": 1}


class TestBuildFromEvents:
    def test_round_trip(self):
        doc = parse('<a x="1"><b>hi</b><c/></a>')
        again = build_from_events(tree_events(doc))
        assert shape(doc.root) == shape(again.root)

    def test_mismatched_end_rejected(self):
        events = [("start", "a", {}), ("end", "b")]
        with pytest.raises(XmlParseError):
            build_from_events(iter(events))

    def test_incomplete_stream_rejected(self):
        with pytest.raises(XmlParseError):
            build_from_events(iter([("start", "a", {})]))

    def test_text_outside_element_rejected(self):
        with pytest.raises(XmlParseError):
            build_from_events(iter([("text", "x")]))

    def test_multiple_roots_rejected(self):
        events = [
            ("start", "a", {}), ("end", "a"),
            ("start", "b", {}), ("end", "b"),
        ]
        with pytest.raises(XmlParseError):
            build_from_events(iter(events))


@given(random_element())
@settings(max_examples=60, deadline=None)
def test_events_round_trip_random_trees(element):
    doc = Document(element.detach())
    again = build_from_events(tree_events(doc))
    assert shape(doc.root) == shape(again.root)
