"""``repro.obs`` — the unified observability layer.

One subsystem for everything the stack measures:

- **Spans** (:class:`Tracer` / :class:`Span`): a hierarchical, thread-
  safe trace of where time went — wall seconds *and* the deterministic
  simulated seconds of the cost model — spanning the parser, the timber
  storage layer, every cube algorithm and the parallel engine.
- **Metrics** (:class:`MetricsRegistry`): counters / gauges /
  histograms absorbing the previously scattered sources
  (``EngineMetrics``, ``CostSnapshot``, buffer-pool stats, algorithm
  phase counters) under one Prometheus-style naming scheme.
- **Exporters**: Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), folded flamegraph stacks, Prometheus exposition text.

Typical use::

    from repro import obs

    with obs.trace() as session:
        doc = parse(xml_text)
        table = extract_fact_table(doc, query)
        result = compute_cube(table, ExecutionOptions(workers=4))
    session.trace().write_chrome("run.trace.json")

or, when only the cube run matters::

    result = compute_cube(table, ExecutionOptions(trace=True))
    result.trace.to_chrome_json()

Instrumentation points call the module-level helpers (:func:`span`,
:func:`count`), which are no-ops bound to a shared null singleton
unless a tracer is active — tracing off costs one attribute check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.events import (
    ClusterEvent,
    EventLog,
    EvictionRecord,
    RequestEvent,
    RungDecision,
    WriteEvent,
)
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    collapsed_stacks,
    prometheus_text,
)
from repro.obs.live import Exemplar, LiveTelemetry, WindowSnapshot
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.propagate import (
    TRACEPARENT_HEADER,
    HeadSampler,
    IdSource,
    TraceContext,
    derive_span_id,
    parse_traceparent,
)
from repro.obs.trace_store import (
    NULL_TRACE_SPAN,
    TraceRecord,
    TraceSpan,
    TraceStore,
    bound,
    capture,
    current_span,
    resume,
    trace_span,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanRecord,
    Trace,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "ClusterEvent",
    "Counter",
    "EventLog",
    "EvictionRecord",
    "Exemplar",
    "Gauge",
    "HeadSampler",
    "Histogram",
    "IdSource",
    "LiveTelemetry",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NULL_TRACE_SPAN",
    "RequestEvent",
    "RungDecision",
    "Span",
    "SpanRecord",
    "TRACEPARENT_HEADER",
    "Trace",
    "TraceContext",
    "TraceRecord",
    "TraceSpan",
    "TraceStore",
    "Tracer",
    "WindowSnapshot",
    "WriteEvent",
    "activate",
    "bound",
    "capture",
    "chrome_trace_events",
    "chrome_trace_json",
    "collapsed_stacks",
    "count",
    "current_span",
    "current_tracer",
    "derive_span_id",
    "enabled",
    "gauge",
    "observe",
    "parse_traceparent",
    "prometheus_text",
    "resume",
    "span",
    "trace",
    "trace_span",
]


def enabled() -> bool:
    """Is a live tracer currently active?"""
    return current_tracer().enabled


def span(
    name: str,
    category: str = "",
    cost: Any = None,
    parent: Optional[int] = None,
    **attrs: Any,
):
    """Open a span on the active tracer (shared no-op when disabled)."""
    return current_tracer().span(
        name, category=category, cost=cost, parent=parent, **attrs
    )


def count(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Bump a counter on the active tracer's registry (no-op when off)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active tracer's registry (no-op when off)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Observe into a histogram on the active registry (no-op when off)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.histogram(name, **labels).observe(value)


@contextmanager
def trace(
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Tracer]:
    """Activate a fresh enabled tracer for the ``with`` body.

    Yields the :class:`Tracer`; call ``.trace()`` on it afterwards for
    the exportable :class:`Trace` report.
    """
    tracer = Tracer(enabled=True, metrics=metrics)
    with activate(tracer):
        yield tracer
