"""The central metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` absorbs every measurement source in the
stack — the deterministic :class:`~repro.timber.stats.CostModel`
counters (CPU ops, page I/O, buffer hits/misses), the engine's
per-stage :class:`~repro.core.engine.metrics.EngineMetrics`, and the
per-algorithm phase counters — under one naming scheme, so a single
scrape answers "where did the work go".

Naming follows the Prometheus convention: ``x3_<subsystem>_<what>``
with ``_total`` suffix on monotonically increasing counters; labels
qualify the series (``algorithm="BUC"``, ``component="timber"``).
Updates are guarded by one registry lock — instrumentation points are
deliberately coarse (per run / per phase, never per row), so the lock
is uncontended.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    float("inf"),
)


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote, and newline must be backslash-escaped."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Metric:
    """Common identity: kind, name, sorted label pairs."""

    kind = "?"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    @property
    def label_string(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(
            f'{key}="{escape_label_value(value)}"'
            for key, value in self.labels
        )
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name}{self.label_string}>"


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge(Metric):
    """A value that can go anywhere (pool occupancy, speedup, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(buckets))
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (kind, name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, LabelItems], Metric] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, _label_items(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, _label_items(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        key = ("histogram", name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(
                    name, key[2], buckets=buckets or DEFAULT_BUCKETS
                )
                self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def _get_or_create(self, cls, name: str, labels: LabelItems):
        key = (cls.kind, name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels)
                self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def collect(self) -> List[Metric]:
        """Every metric, in a stable (kind, name, labels) order."""
        with self._lock:
            return [
                self._metrics[key] for key in sorted(self._metrics.keys())
            ]

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The value of one exact (name, labels) series, if present."""
        items = _label_items(labels)
        with self._lock:
            for (kind, metric_name, metric_labels), metric in (
                self._metrics.items()
            ):
                if metric_name == name and metric_labels == items:
                    if kind == "histogram":
                        return metric.sum  # type: ignore[union-attr]
                    return metric.value  # type: ignore[union-attr]
        return None

    def total(self, name: str) -> float:
        """Sum of a metric across every label set (0.0 when absent)."""
        out = 0.0
        with self._lock:
            for (kind, metric_name, _), metric in self._metrics.items():
                if metric_name != name:
                    continue
                if kind == "histogram":
                    out += metric.sum  # type: ignore[union-attr]
                else:
                    out += metric.value  # type: ignore[union-attr]
        return out

    def as_dict(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` map (histograms report sums)."""
        out: Dict[str, float] = {}
        for metric in self.collect():
            key = metric.name + metric.label_string
            if isinstance(metric, Histogram):
                out[key] = metric.sum
            else:
                out[key] = metric.value
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # ------------------------------------------------------------------
    # absorption of the existing measurement sources
    # ------------------------------------------------------------------
    COST_COUNTERS = (
        ("cpu_ops", "x3_cost_cpu_ops_total"),
        ("page_reads", "x3_cost_page_reads_total"),
        ("page_writes", "x3_cost_page_writes_total"),
        ("buffer_hits", "x3_buffer_hits_total"),
        ("buffer_misses", "x3_buffer_misses_total"),
        ("evictions", "x3_buffer_evictions_total"),
    )

    def absorb_cost(self, cost: Any, **labels: Any) -> None:
        """Fold a cost snapshot into the unified counters.

        Accepts a :class:`~repro.core.cube.CostSnapshot`, a
        :class:`~repro.timber.stats.CostModel`, or the plain mapping
        either produces.
        """
        if hasattr(cost, "snapshot"):  # a live CostModel
            data: Mapping[str, float] = cost.snapshot()
        elif hasattr(cost, "as_dict"):  # a CostSnapshot
            data = cost.as_dict()
        else:
            data = cost
        for field_name, metric_name in self.COST_COUNTERS:
            value = float(data.get(field_name, 0.0))
            if value:
                self.counter(metric_name, **labels).inc(value)
        simulated = float(data.get("simulated_seconds", 0.0))
        if simulated:
            self.counter(
                "x3_cost_simulated_seconds_total", **labels
            ).inc(simulated)

    def absorb_engine(self, metrics: Any, **labels: Any) -> None:
        """Fold one :class:`EngineMetrics` into engine-level series."""
        self.counter("x3_engine_runs_total", engine=metrics.engine, **labels).inc()
        self.counter(
            "x3_engine_partitions_total", engine=metrics.engine, **labels
        ).inc(len(metrics.partitions))
        self.gauge(
            "x3_engine_workers_used", engine=metrics.engine, **labels
        ).set(metrics.workers_used)
        self.gauge(
            "x3_engine_cut_edges", engine=metrics.engine, **labels
        ).set(metrics.cut_edges)
        for stage, seconds in (
            ("partition", metrics.partition_seconds),
            ("merge", metrics.merge_seconds),
            ("queue_wait", metrics.queue_wait_seconds),
            ("total", metrics.total_wall_seconds),
        ):
            self.histogram(
                "x3_engine_stage_seconds",
                stage=stage,
                engine=metrics.engine,
                **labels,
            ).observe(seconds)

    def absorb_phases(
        self, phases: Mapping[str, float], **labels: Any
    ) -> None:
        """Fold per-algorithm phase counters (``base.run`` flushes them)."""
        for phase, value in phases.items():
            if value:
                self.counter(
                    f"x3_algo_{phase}_total", **labels
                ).inc(float(value))

    def merge(self, other: "MetricsRegistry") -> None:
        """Add another registry's series into this one (trace merge)."""
        for metric in other.collect():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                self.counter(metric.name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, **labels).set(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(
                    metric.name, buckets=metric.bounds, **labels
                )
                mine.count += metric.count
                mine.sum += metric.sum
                for index, count in enumerate(metric.bucket_counts):
                    if index < len(mine.bucket_counts):
                        mine.bucket_counts[index] += count
