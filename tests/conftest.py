"""Shared fixtures: the running example and small controlled workloads.

The workload builders themselves live in :mod:`repro.testing` (one copy,
also used by ``benchmarks/conftest.py``); this file only binds them as
pytest fixtures.
"""

from __future__ import annotations

import pytest

from repro.core.extract import extract_fact_table
from repro.datagen.publications import figure1_document, query1
from repro.testing import messy_workload as _messy_workload
from repro.testing import small_workload


@pytest.fixture()
def fig1_doc():
    return figure1_document()


@pytest.fixture()
def q1():
    return query1()


@pytest.fixture()
def fig1_table(fig1_doc, q1):
    return extract_fact_table(fig1_doc, q1)


@pytest.fixture()
def regular_workload():
    return small_workload()


@pytest.fixture()
def messy_workload():
    """Neither summarizability property holds."""
    return _messy_workload()
