"""X^3QL: the textual query language front door.

The pipeline is ``tokenize`` → ``parse_statement`` → ``compile_text``;
the :mod:`repro.lang.repl` module drives it interactively (the
``x3-sql`` console script) and :mod:`repro.server.http` exposes it as
``POST /api/v1/query``.
"""

from repro.lang.ast import (
    Assignment,
    AxisBinding,
    AxisRelaxations,
    NAV_VERBS,
    NavStatement,
    PathExpr,
    Pos,
    Predicate,
    Statement,
    X3Statement,
    pretty,
)
from repro.lang.compiler import (
    Compiled,
    CompiledDefinition,
    CompiledQuery,
    compile_nav,
    compile_statement,
    compile_text,
    compile_x3,
    modeled_lang_seconds,
)
from repro.lang.parser import Parser, parse_statement, parse_statements
from repro.lang.tokens import Token, TokenKind, tokenize

__all__ = [
    "Assignment",
    "AxisBinding",
    "AxisRelaxations",
    "Compiled",
    "CompiledDefinition",
    "CompiledQuery",
    "NAV_VERBS",
    "NavStatement",
    "Parser",
    "PathExpr",
    "Pos",
    "Predicate",
    "Statement",
    "Token",
    "TokenKind",
    "X3Statement",
    "compile_nav",
    "compile_statement",
    "compile_text",
    "compile_x3",
    "modeled_lang_seconds",
    "parse_statement",
    "parse_statements",
    "pretty",
    "tokenize",
]
