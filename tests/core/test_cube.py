"""Unit tests for CubeResult and compute_cube."""

import pytest

from repro.core.cube import compute_cube
from repro.errors import CubeError


class TestCubeResult:
    def test_cell_lookup(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        point = fig1_table.lattice.point_by_description(
            "$n:LND, $p:LND, $y:rigid"
        )
        assert cube.cell(point, ("2003",)) == 2.0
        assert cube.cell(point, ("1999",)) is None

    def test_cuboid_missing_point(self, fig1_table):
        cube = compute_cube(
            fig1_table, "NAIVE", points=[fig1_table.lattice.top]
        )
        with pytest.raises(CubeError):
            cube.cuboid(fig1_table.lattice.bottom)

    def test_total_cells(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        assert cube.total_cells() == sum(
            len(cuboid) for cuboid in cube.cuboids.values()
        )

    def test_same_contents_reflexive(self, fig1_table):
        cube = compute_cube(fig1_table, "NAIVE")
        assert cube.same_contents(cube)

    def test_same_contents_detects_value_diff(self, fig1_table):
        one = compute_cube(fig1_table, "NAIVE")
        two = compute_cube(fig1_table, "NAIVE")
        point = next(iter(two.cuboids))
        if two.cuboids[point]:
            key = next(iter(two.cuboids[point]))
            two.cuboids[point][key] += 1.0
            assert not one.same_contents(two)
            assert one.diff(two)

    def test_same_contents_detects_missing_point(self, fig1_table):
        one = compute_cube(fig1_table, "NAIVE")
        two = compute_cube(
            fig1_table, "NAIVE", points=[fig1_table.lattice.top]
        )
        assert not one.same_contents(two)

    def test_summary_mentions_algorithm(self, fig1_table):
        cube = compute_cube(fig1_table, "COUNTER")
        assert "COUNTER" in cube.summary()

    def test_cost_snapshot_attached(self, fig1_table):
        cube = compute_cube(fig1_table, "BUC")
        assert cube.simulated_seconds > 0
        assert cube.cost["cpu_ops"] > 0


class TestComputeCube:
    def test_unknown_algorithm(self, fig1_table):
        with pytest.raises(CubeError):
            compute_cube(fig1_table, "MAGIC")

    def test_points_restriction(self, fig1_table):
        top = fig1_table.lattice.top
        cube = compute_cube(fig1_table, "NAIVE", points=[top])
        assert list(cube.cuboids) == [top]

    def test_restriction_consistent_with_full(self, fig1_table):
        top = fig1_table.lattice.top
        for name in ("NAIVE", "COUNTER", "BUC", "TD"):
            full = compute_cube(fig1_table, name)
            only = compute_cube(fig1_table, name, points=[top])
            assert only.cuboids[top] == full.cuboids[top]
