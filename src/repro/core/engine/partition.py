"""Split the cube lattice into independent point sets.

Every cube algorithm in :mod:`repro.core.algorithms` accepts a ``points``
restriction and computes those cuboids from the base fact table alone, so
*any* disjoint cover of the requested points yields a correct parallel
plan — strategies differ only in load balance and in how much intra-run
reuse (roll-up sharing along lattice edges) stays inside one partition:

- ``balanced`` (default): weighted LPT — points sorted by estimated cost,
  greedily assigned to the lightest bin.  Best balance, ignores edges.
- ``antichain``: the topo order (rank levels) chopped into contiguous
  weight-balanced runs.  Level slices are antichains, and consecutive
  levels share roll-up edges, so cut edges stay low.
- ``axis``: per-axis-state subtrees of the first axis (each bin is a
  product sub-lattice over the remaining axes), round-robined into the
  requested bin count.

All strategies are deterministic: same lattice, same points, same bin
count -> same partitions, independent of dict order or hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.lattice import CubeLattice, LatticePoint
from repro.errors import CubeError


@dataclass(frozen=True)
class Partition:
    """One independently-computable slice of the lattice."""

    index: int
    points: Tuple[LatticePoint, ...]
    weight: float


def point_weight(lattice: CubeLattice, point: LatticePoint) -> float:
    """Estimated relative cost of cubing one lattice point.

    Grouping cost grows with the number of kept axes (wider keys, larger
    cuboids); every point pays one base-table scan.  This only needs to
    *rank* points sensibly — the schedule, not the estimate, determines
    correctness.
    """
    return 1.0 + len(lattice.kept_axes(point))


def _balanced(
    lattice: CubeLattice,
    points: List[LatticePoint],
    n_partitions: int,
) -> List[List[LatticePoint]]:
    weighted = sorted(
        points,
        key=lambda point: (-point_weight(lattice, point), point),
    )
    bins: List[List[LatticePoint]] = [[] for _ in range(n_partitions)]
    loads = [0.0] * n_partitions
    for point in weighted:
        lightest = min(range(n_partitions), key=lambda i: (loads[i], i))
        bins[lightest].append(point)
        loads[lightest] += point_weight(lattice, point)
    return bins


def _antichain(
    lattice: CubeLattice,
    points: List[LatticePoint],
    n_partitions: int,
) -> List[List[LatticePoint]]:
    ordered: List[LatticePoint] = []
    for _, level in lattice.level_slices(points):
        ordered.extend(level)
    total = sum(point_weight(lattice, point) for point in ordered)
    target = total / n_partitions
    bins: List[List[LatticePoint]] = [[]]
    load = 0.0
    for point in ordered:
        if load >= target and len(bins) < n_partitions:
            bins.append([])
            load = 0.0
        bins[-1].append(point)
        load += point_weight(lattice, point)
    return bins


def _axis(
    lattice: CubeLattice,
    points: List[LatticePoint],
    n_partitions: int,
) -> List[List[LatticePoint]]:
    bins: List[List[LatticePoint]] = [[] for _ in range(n_partitions)]
    for state, subtree in lattice.axis_state_slices(0, points):
        bins[state % n_partitions].extend(subtree)
    return bins


_STRATEGIES = {
    "balanced": _balanced,
    "antichain": _antichain,
    "axis": _axis,
}


def partition_points(
    lattice: CubeLattice,
    points: Sequence[LatticePoint],
    n_partitions: int,
    strategy: str = "balanced",
) -> List[Partition]:
    """Disjoint cover of ``points`` in at most ``n_partitions`` slices.

    Empty bins are dropped, so the result may hold fewer partitions than
    requested (never more); the union of all partitions is exactly the
    input point set.
    """
    if n_partitions < 1:
        raise CubeError(f"need at least one partition, got {n_partitions}")
    try:
        split = _STRATEGIES[strategy]
    except KeyError:
        raise CubeError(
            f"unknown partition strategy {strategy!r}; available: "
            f"{sorted(_STRATEGIES)}"
        ) from None
    wanted = list(points)
    n_partitions = min(n_partitions, max(1, len(wanted)))
    out: List[Partition] = []
    for raw in split(lattice, wanted, n_partitions):
        if not raw:
            continue
        ordered = tuple(sorted(raw))
        out.append(
            Partition(
                index=len(out),
                points=ordered,
                weight=sum(
                    point_weight(lattice, point) for point in ordered
                ),
            )
        )
    return out
