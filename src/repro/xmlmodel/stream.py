"""Streaming (SAX-style) XML events on top of the recursive parser's
tokenizer.

Warehouse loaders often want events rather than a materialized tree —
to infer schemas, count tags, or filter subtrees from inputs too large
to hold.  :func:`iter_events` yields

- ``("start", tag, attrs)``
- ``("text", data)``         (non-whitespace character data)
- ``("end", tag)``

in document order, with the same strictness and entity handling as
:func:`repro.xmlmodel.parser.parse` (it is implemented by a parse whose
builder emits events, so the two can never disagree — a property the
tests exploit).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse

StartEvent = Tuple[str, str, Dict[str, str]]
TextEvent = Tuple[str, str]
EndEvent = Tuple[str, str]
Event = Union[StartEvent, TextEvent, EndEvent]


def iter_events(text: str) -> Iterator[Event]:
    """Yield SAX-style events for an XML document string."""
    doc = parse(text)
    yield from tree_events(doc)


def tree_events(source: Union[Document, Element]) -> Iterator[Event]:
    """Events of an already-built tree (document order)."""
    root = source.root if isinstance(source, Document) else source

    def walk(element: Element) -> Iterator[Event]:
        yield ("start", element.tag, dict(element.attrs))
        for chunk in element.text_chunks:
            if chunk.strip():
                yield ("text", chunk)
        for child in element.children:
            yield from walk(child)
        yield ("end", element.tag)

    yield from walk(root)


def count_tags(text: str) -> Dict[str, int]:
    """Tag frequencies from the event stream (no tree retained by the
    caller)."""
    counts: Dict[str, int] = {}
    for event in iter_events(text):
        if event[0] == "start":
            counts[event[1]] = counts.get(event[1], 0) + 1
    return counts


def build_from_events(events: Iterator[Event]) -> Document:
    """Reassemble a document from an event stream (inverse of
    :func:`tree_events`)."""
    from repro.errors import XmlParseError

    stack: List[Element] = []
    root: Element = None  # type: ignore[assignment]
    for event in events:
        kind = event[0]
        if kind == "start":
            element = Element(event[1], attrs=event[2])
            if stack:
                stack[-1].append(element)
            elif root is None:
                pass
            else:
                raise XmlParseError("multiple roots in event stream")
            if root is None and not stack:
                root = element
            stack.append(element)
        elif kind == "text":
            if not stack:
                raise XmlParseError("text outside any element")
            stack[-1].append_text(event[1])
        elif kind == "end":
            if not stack or stack[-1].tag != event[1]:
                raise XmlParseError(f"mismatched end event {event[1]!r}")
            stack.pop()
        else:
            raise XmlParseError(f"unknown event kind {kind!r}")
    if root is None or stack:
        raise XmlParseError("incomplete event stream")
    return Document(root)
