"""Admission-control tests: the front door sheds load with 429s.

The saturation test swaps in a backend stub whose ``query`` blocks on
an event, fills the admission budget with real threads, and proves the
next request is refused immediately — 429 with ``Retry-After`` — rather
than queued behind the stuck ones.
"""

import json
import threading

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.publications import figure1_document, query1
from repro.errors import Overloaded
from repro.serve import CubeServer
from repro.server import (
    AdmissionController,
    CubeCatalog,
    LogicalCube,
    X3Api,
)


class TestAdmissionController:
    def test_admits_up_to_budget(self):
        admission = AdmissionController(2)
        with admission.admit():
            with admission.admit():
                with pytest.raises(Overloaded) as excinfo:
                    with admission.admit():
                        pass
        assert excinfo.value.retry_after_seconds > 0
        stats = admission.stats()
        assert stats == {
            "inflight": 0,
            "admitted": 2,
            "rejected": 1,
            "peak_inflight": 2,
            "max_inflight": 2,
        }

    def test_slot_released_after_exit(self):
        admission = AdmissionController(1)
        with admission.admit():
            pass
        with admission.admit():
            pass
        assert admission.stats()["rejected"] == 0

    def test_slot_released_on_error(self):
        admission = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with admission.admit():
                raise RuntimeError("boom")
        assert admission.stats()["inflight"] == 0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class _BlockingBackend:
    """A CubeBackend whose query path parks until released."""

    def __init__(self, inner):
        self._inner = inner
        self.lattice = inner.lattice
        self.entered = threading.Semaphore(0)
        self.release = threading.Event()

    def query(self, query):
        self.entered.release()
        assert self.release.wait(timeout=10.0)
        return self._inner.query(query)

    def explain_query(self, query):
        return self._inner.explain_query(query)

    def version_token(self):
        return self._inner.version_token()

    def insert(self, rows):
        return self._inner.insert(rows)

    def delete(self, rows):
        return self._inner.delete(rows)


class TestHttpBackpressure:
    @pytest.fixture()
    def saturated(self):
        table = extract_fact_table(figure1_document(), query1())
        backend = _BlockingBackend(
            CubeServer(table, PropertyOracle.from_data(table))
        )
        catalog = CubeCatalog()
        catalog.register(
            LogicalCube.from_lattice("pubs", table.lattice), backend
        )
        api = X3Api(catalog, admission=AdmissionController(2))
        return api, backend

    def test_saturated_server_returns_429(self, saturated):
        api, backend = saturated
        responses = []

        def issue():
            responses.append(
                api.handle("POST", "/api/v1/cubes/pubs/aggregate", b"{}")
            )

        stuck = [threading.Thread(target=issue) for _ in range(2)]
        for thread in stuck:
            thread.start()
        # Both budget slots are now parked inside the backend.
        assert backend.entered.acquire(timeout=10.0)
        assert backend.entered.acquire(timeout=10.0)

        shed = api.handle("POST", "/api/v1/cubes/pubs/aggregate", b"{}")
        assert shed.status == 429
        decoded = json.loads(shed.body)
        assert decoded["error"]["kind"] == "overloaded"
        headers = dict(shed.headers)
        assert float(headers["Retry-After"]) > 0

        backend.release.set()
        for thread in stuck:
            thread.join(timeout=10.0)
        # The parked requests finish normally once released...
        assert [r.status for r in responses] == [200, 200]
        # ...and the freed budget admits new work again.
        after = api.handle("POST", "/api/v1/cubes/pubs/aggregate", b"{}")
        assert after.status == 200
        stats = api.admission.stats()
        assert stats["rejected"] == 1
        assert stats["admitted"] == 3

    def test_catalog_reads_bypass_admission(self, saturated):
        api, backend = saturated
        threads = [
            threading.Thread(
                target=lambda: api.handle(
                    "POST", "/api/v1/cubes/pubs/aggregate", b"{}"
                )
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        assert backend.entered.acquire(timeout=10.0)
        assert backend.entered.acquire(timeout=10.0)
        # Catalog metadata and metrics stay readable under overload —
        # the admission budget guards the query endpoints only.
        assert api.handle("GET", "/api/v1/cubes").status == 200
        assert api.handle("GET", "/metrics").status == 200
        backend.release.set()
        for thread in threads:
            thread.join(timeout=10.0)
