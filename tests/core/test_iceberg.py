"""Unit tests for iceberg cubes (min-support pruning)."""

import pytest

from repro.core.cube import compute_cube
from repro.errors import CubeError
from tests.conftest import small_workload


@pytest.fixture(scope="module")
def table():
    return small_workload(n_facts=150, density="dense", seed=2).fact_table()


class TestIcebergSemantics:
    def test_filtered_equals_postfiltered_naive(self, table):
        support = 5
        full = compute_cube(table, "NAIVE")
        iceberg = compute_cube(table, "NAIVE", min_support=support)
        for point, cuboid in full.cuboids.items():
            expected = {
                key: value
                for key, value in cuboid.items()
                if value >= support
            }
            assert iceberg.cuboids[point] == expected

    @pytest.mark.parametrize(
        "algorithm", ["COUNTER", "BUC", "TD", "BUCCUST", "TDCUST"]
    )
    def test_all_correct_algorithms_agree(self, table, algorithm):
        support = 4
        reference = compute_cube(table, "NAIVE", min_support=support)
        result = compute_cube(table, algorithm, min_support=support)
        assert result.same_contents(reference), algorithm

    def test_zero_support_is_full_cube(self, table):
        assert compute_cube(table, "BUC", min_support=0).same_contents(
            compute_cube(table, "BUC")
        )

    def test_high_support_leaves_only_big_groups(self, table):
        iceberg = compute_cube(table, "BUC", min_support=len(table))
        bottom = table.lattice.bottom
        # Only the grand-total group can reach support == |facts|.
        for point, cuboid in iceberg.cuboids.items():
            if point != bottom:
                assert cuboid == {}
        assert iceberg.cuboids[bottom] == {(): float(len(table))}


class TestIcebergPruning:
    def test_buc_prunes_work(self, table):
        full = compute_cube(table, "BUC")
        iceberg = compute_cube(table, "BUC", min_support=8)
        assert iceberg.cost["cpu_ops"] < full.cost["cpu_ops"]

    def test_higher_support_prunes_more(self, table):
        low = compute_cube(table, "BUC", min_support=2)
        high = compute_cube(table, "BUC", min_support=20)
        assert high.cost["cpu_ops"] < low.cost["cpu_ops"]


class TestIcebergValidation:
    def test_non_count_rejected(self):
        from repro.core.aggregates import AggregateSpec
        from repro.core.axes import AxisSpec
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query
        from repro.xmlmodel.parser import parse

        doc = parse('<r><f w="1"><a>x</a></f></r>')
        query = X3Query(
            fact_tag="f",
            axes=(AxisSpec.from_path("$a", "a"),),
            aggregate=AggregateSpec("SUM", "@w"),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        with pytest.raises(CubeError):
            compute_cube(table, "BUC", min_support=2)
