"""Per-shard version vectors: the cluster's consistency currency.

Every shard applies its write batches in one global order (the
coordinator serializes writes), so the cluster's state after ``K``
writes is fully described by the vector of per-shard applied-batch
counts.  A gathered scatter answer is *consistent* exactly when the
per-shard versions it was assembled from form one of those vectors —
i.e. every shard answered as of the same prefix of the write log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import ClusterError


@dataclass(frozen=True)
class VersionVector:
    """An immutable vector of per-shard write-batch versions."""

    versions: Tuple[int, ...]

    @staticmethod
    def zero(n_shards: int) -> "VersionVector":
        if n_shards <= 0:
            raise ClusterError(
                f"a cluster needs at least one shard, got {n_shards}"
            )
        return VersionVector((0,) * n_shards)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.versions)

    def __getitem__(self, shard: int) -> int:
        return self.versions[shard]

    def __iter__(self) -> Iterator[int]:
        return iter(self.versions)

    def bump(self, shard: int) -> "VersionVector":
        """A copy with one shard's version advanced by one batch."""
        out = list(self.versions)
        out[shard] += 1
        return VersionVector(tuple(out))

    def dominates(self, other: "VersionVector") -> bool:
        """Componentwise >=: this state has seen everything ``other`` has."""
        if self.n_shards != other.n_shards:
            raise ClusterError(
                f"version vectors disagree on shard count: "
                f"{self.n_shards} != {other.n_shards}"
            )
        return all(
            mine >= theirs
            for mine, theirs in zip(self.versions, other.versions)
        )

    def __str__(self) -> str:
        return "v[" + ",".join(str(v) for v in self.versions) + "]"
