"""Unit tests for W3C-traceparent propagation (repro.obs.propagate)."""

import threading

import pytest

from repro.obs.propagate import (
    TRACEPARENT_HEADER,
    HeadSampler,
    IdSource,
    TraceContext,
    derive_span_id,
    mix64,
    parse_traceparent,
)


class TestMix64:
    def test_bijective_looking_and_bounded(self):
        outputs = {mix64(n) for n in range(1000)}
        assert len(outputs) == 1000  # no collisions at small scale
        assert all(0 <= value < (1 << 64) for value in outputs)

    def test_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_masks_wide_input(self):
        assert mix64((1 << 64) + 5) == mix64(5)


class TestTraceContext:
    def test_hex_widths_are_fixed(self):
        context = TraceContext(trace_id=1, span_id=2, sampled=True)
        assert len(context.trace_id_hex) == 32
        assert len(context.span_id_hex) == 16
        assert context.trace_id_hex.endswith("1")

    def test_traceparent_roundtrip_sampled(self):
        context = TraceContext(
            trace_id=0xABCDEF, span_id=0x1234, sampled=True
        )
        header = context.to_traceparent()
        assert header.startswith("00-")
        assert header.endswith("-01")
        parsed = parse_traceparent(header)
        assert parsed == context

    def test_traceparent_roundtrip_unsampled(self):
        context = TraceContext(trace_id=7, span_id=9, sampled=False)
        header = context.to_traceparent()
        assert header.endswith("-00")
        assert parse_traceparent(header) == context

    def test_child_keeps_trace_and_verdict(self):
        context = TraceContext(trace_id=11, span_id=22, sampled=True)
        child = context.child(33)
        assert child.trace_id == 11
        assert child.span_id == 33
        assert child.sampled is True


class TestParseTraceparent:
    def test_none_and_garbage(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("nonsense") is None
        assert parse_traceparent("00-abc-def-01") is None

    def test_zero_ids_rejected(self):
        zeros32 = "0" * 32
        zeros16 = "0" * 16
        good32 = "0" * 31 + "1"
        good16 = "0" * 15 + "1"
        assert parse_traceparent(f"00-{zeros32}-{good16}-01") is None
        assert parse_traceparent(f"00-{good32}-{zeros16}-01") is None

    def test_version_ff_rejected(self):
        good32 = "a" * 32
        good16 = "b" * 16
        assert parse_traceparent(f"ff-{good32}-{good16}-01") is None

    def test_future_version_with_extra_fields_accepted(self):
        good32 = "a" * 32
        good16 = "b" * 16
        parsed = parse_traceparent(f"01-{good32}-{good16}-01-extra")
        assert parsed is not None
        assert parsed.sampled is True

    def test_version_00_with_extra_fields_rejected(self):
        good32 = "a" * 32
        good16 = "b" * 16
        assert (
            parse_traceparent(f"00-{good32}-{good16}-01-extra") is None
        )

    def test_non_hex_rejected(self):
        bad32 = "g" * 32
        good16 = "b" * 16
        assert parse_traceparent(f"00-{bad32}-{good16}-01") is None

    def test_case_and_whitespace_normalized(self):
        good32 = "A" * 32
        good16 = "B" * 16
        parsed = parse_traceparent(f"  00-{good32}-{good16}-01  ")
        assert parsed is not None
        assert parsed.trace_id == int("a" * 32, 16)

    def test_flag_bit_decides_sampled(self):
        good32 = "a" * 32
        good16 = "b" * 16
        assert parse_traceparent(f"00-{good32}-{good16}-00").sampled is False
        assert parse_traceparent(f"00-{good32}-{good16}-01").sampled is True
        # higher flag bits do not affect the sampled verdict
        assert parse_traceparent(f"00-{good32}-{good16}-02").sampled is False

    def test_header_name_constant(self):
        assert TRACEPARENT_HEADER == "traceparent"


class TestIdSource:
    def test_same_seed_same_sequence(self):
        a = IdSource(seed=5)
        b = IdSource(seed=5)
        assert [a.trace_id() for _ in range(10)] == [
            b.trace_id() for _ in range(10)
        ]
        assert [a.span_id() for _ in range(10)] == [
            b.span_id() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        assert IdSource(seed=1).trace_id() != IdSource(seed=2).trace_id()

    def test_ids_never_zero(self):
        source = IdSource()
        assert all(source.trace_id() != 0 for _ in range(100))
        assert all(source.span_id() != 0 for _ in range(100))

    def test_thread_safety_no_duplicates(self):
        source = IdSource(seed=3)
        out = []
        lock = threading.Lock()

        def worker():
            local = [source.span_id() for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(out)) == len(out) == 800


class TestDeriveSpanId:
    def test_pure_function(self):
        assert derive_span_id(42, "s0") == derive_span_id(42, "s0")

    def test_distinct_keys_distinct_ids(self):
        ids = {derive_span_id(42, f"s{n}") for n in range(64)}
        assert len(ids) == 64

    def test_distinct_parents_distinct_ids(self):
        assert derive_span_id(1, "s0") != derive_span_id(2, "s0")

    def test_never_zero(self):
        assert derive_span_id(0, "") != 0


class TestHeadSampler:
    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            HeadSampler(-0.1)
        with pytest.raises(ValueError):
            HeadSampler(1.5)

    def test_extremes(self):
        keep_all = HeadSampler(1.0)
        keep_none = HeadSampler(0.0)
        assert all(keep_all.decide(n) for n in range(1, 100))
        assert not any(keep_none.decide(n) for n in range(1, 100))

    def test_verdict_is_pure_function_of_trace_id(self):
        sampler = HeadSampler(0.5)
        other = HeadSampler(0.5)
        source = IdSource(seed=9)
        ids = [source.trace_id() for _ in range(200)]
        assert [sampler.decide(t) for t in ids] == [
            other.decide(t) for t in ids
        ]

    def test_half_rate_keeps_roughly_half(self):
        sampler = HeadSampler(0.5)
        source = IdSource(seed=1)
        kept = sum(sampler.decide(source.trace_id()) for _ in range(1000))
        assert 400 <= kept <= 600
