"""Analytic cost estimation: predict algorithm costs without running.

Sec. 4.6 concludes that "summarizability together with cube
characteristics determine the choice of the algorithm".  This module
makes that determination *quantitative*: from cheap statistics of the
fact table (fact count, per-axis cardinalities and multiplicities,
lattice shape) it predicts each algorithm's simulated cost, so a
planner can rank the line-up before paying for the cube.

The estimates model the same structure the algorithms charge:

- COUNTER: one scan doing ``sum over points of combos(row)`` increments,
  times the number of memory passes the estimated cell count forces;
- BUC: total partition traffic ~ sum over lattice prefixes of expected
  partition sizes, collapsing with cube sparsity — priced at the
  columnar kernel's rates (vectorized gathers over encoded columns, no
  partition sorts, scalar replication bookkeeping only on the safe path);
- TD: per point, a scan of the encoded columns + the linear counting
  bucketing of the group-id column;
- TDOPT/TDOPTALL: encoded builds for the all-kept (resp. top) points
  plus group-row roll-ups for the rest.

The BUC/TD models track the *columnar* execution paths because that is
what ``encoding="auto"`` runs; the dict path exists for duels and is not
what a planner would schedule.

The test suite checks *ranking* fidelity (who is predicted to win vs.
who actually wins), not absolute error — the same standard the paper's
figures are reproduced under.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.algorithms.base import (
    DEFAULT_MEMORY_ENTRIES,
    ENTRIES_PER_PAGE,
    table_pages,
)
from repro.core.bindings import FactTable
from repro.core.columnar import COLUMNAR_ENTRIES_PER_PAGE, VECTOR_LANES
from repro.core.lattice import LatticePoint
from repro.timber.stats import CostModel

CPU_COST = CostModel().cpu_op_cost
IO_COST = CostModel().page_io_cost


@dataclass(frozen=True)
class TableStatistics:
    """Cheap single-pass statistics of a fact table."""

    n_facts: int
    base_pages: int
    # per axis position, per structural state index:
    cardinality: Dict[int, Dict[int, int]]       # distinct values
    avg_multiplicity: Dict[int, Dict[int, float]]  # values per fact
    coverage_rate: Dict[int, Dict[int, float]]     # P(fact binds axis)

    @staticmethod
    def collect(table: FactTable) -> "TableStatistics":
        lattice = table.lattice
        cardinality: Dict[int, Dict[int, int]] = {}
        multiplicity: Dict[int, Dict[int, float]] = {}
        coverage: Dict[int, Dict[int, float]] = {}
        n = max(1, len(table.rows))
        for position, states in enumerate(lattice.axis_states):
            cardinality[position] = {}
            multiplicity[position] = {}
            coverage[position] = {}
            for state in range(len(states.states)):
                values = set()
                total_values = 0
                bound_facts = 0
                for row in table.rows:
                    bound = row.values_under(position, state)
                    values.update(bound)
                    total_values += len(bound)
                    if bound:
                        bound_facts += 1
                cardinality[position][state] = len(values)
                multiplicity[position][state] = (
                    total_values / bound_facts if bound_facts else 0.0
                )
                coverage[position][state] = bound_facts / n
        return TableStatistics(
            n_facts=len(table.rows),
            base_pages=table_pages(table),
            cardinality=cardinality,
            avg_multiplicity=multiplicity,
            coverage_rate=coverage,
        )


class CostEstimator:
    """Predict per-algorithm simulated seconds from statistics."""

    def __init__(
        self,
        table: FactTable,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.table = table
        self.lattice = table.lattice
        self.stats = TableStatistics.collect(table)
        self.memory_entries = memory_entries

    # ------------------------------------------------------------------
    # per-point expectations
    # ------------------------------------------------------------------
    def expected_rows(self, point: LatticePoint) -> float:
        """Expected placements (fact, key) at a point."""
        total = float(self.stats.n_facts)
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            total *= self.stats.coverage_rate[position][state]
            total *= max(
                1.0, self.stats.avg_multiplicity[position][state]
            )
        return total

    def expected_cells(self, point: LatticePoint) -> float:
        """Expected distinct groups at a point (capped by placements)."""
        domain = 1.0
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            domain *= max(1, self.stats.cardinality[position][state])
        return min(domain, max(1.0, self.expected_rows(point)))

    def total_cells(self) -> float:
        return sum(
            self.expected_cells(point) for point in self.lattice.points()
        )

    # ------------------------------------------------------------------
    # algorithm models
    # ------------------------------------------------------------------
    def estimate(self, algorithm: str) -> float:
        name = algorithm.upper()
        if name == "COUNTER":
            return self._counter()
        if name in ("BUC", "BUCOPT", "BUCCUST"):
            return self._buc(optimized=name != "BUC")
        if name == "TD":
            return self._td()
        if name in ("TDOPT", "TDCUST"):
            return self._tdopt()
        if name == "TDOPTALL":
            return self._tdoptall()
        raise ValueError(f"no cost model for {algorithm!r}")

    def rank(self, algorithms: List[str]) -> List[str]:
        """Algorithms sorted by predicted cost, cheapest first."""
        return sorted(algorithms, key=self.estimate)

    # -- counter -------------------------------------------------------
    def _counter(self) -> float:
        increments = sum(
            self.expected_rows(point) for point in self.lattice.points()
        )
        cells = self.total_cells()
        passes = max(1.0, math.ceil(cells / self.memory_entries))
        io = self.stats.base_pages * passes
        spill = (
            2 * (self.memory_entries / ENTRIES_PER_PAGE) * (passes - 1)
        )
        return increments * CPU_COST + (io + spill) * IO_COST

    # -- columnar encoding, shared by the BUC/TD models ----------------
    def _encoded_entries(self) -> float:
        """Entry footprint of the dictionary-encoded columns: one per row
        plus one code per annotated value."""
        values_per_row = 1.0 + sum(
            max(1.0, self.stats.avg_multiplicity[position].get(0, 1.0))
            for position in range(self.lattice.axis_count)
        )
        return self.stats.n_facts * values_per_row

    def _encoded_pages(self) -> float:
        return max(
            1.0, self._encoded_entries() / COLUMNAR_ENTRIES_PER_PAGE
        )

    def _encode_cost(self) -> float:
        """Building (or re-charging) the encoding: one CPU op per entry."""
        return self._encoded_entries() * CPU_COST

    # -- bottom-up -----------------------------------------------------
    def _buc(self, optimized: bool) -> float:
        # Partition traffic: every group of every cuboid is aggregated
        # from its placements once.  The columnar kernel buckets by
        # dictionary code (a counting sort — no comparison sorts) with
        # one vectorized gather op per VECTOR_LANES placements; the safe
        # path adds two scalar replication-bookkeeping ops per placement.
        traffic = sum(
            self.expected_rows(point) for point in self.lattice.points()
        )
        per_row = 1.0 / VECTOR_LANES + (0.0 if optimized else 2.0)
        return (
            self._encode_cost()
            + traffic * per_row * CPU_COST
            + self._encoded_pages() * IO_COST
        )

    # -- top-down ------------------------------------------------------
    def _sort_cost(self, rows: float) -> float:
        if rows <= 1:
            return 0.0
        cpu = rows * math.log2(max(2, rows))
        if rows <= self.memory_entries:
            return cpu * CPU_COST
        pages = rows / ENTRIES_PER_PAGE
        return cpu * CPU_COST + 3 * pages * IO_COST

    def _build_cost(self, rows: float, identity_ops: float) -> float:
        """One from-base columnar build: an encoded scan, a group-id
        extension per axis, the linear counting-sort bucketing of the
        gid column (spilled past the memory budget), and the safe
        path's scalar identity tracking."""
        extends = self.lattice.axis_count * (
            self.stats.n_facts / VECTOR_LANES
        )
        spill = (
            2 * (rows / ENTRIES_PER_PAGE) * IO_COST
            if rows > self.memory_entries
            else 0.0
        )
        return (
            self._encoded_pages() * IO_COST
            + (extends + (1.0 + identity_ops) * rows) * CPU_COST
            + spill
        )

    def _td(self) -> float:
        total = self._encode_cost()
        for point in self.lattice.points():
            rows = self.expected_rows(point)
            total += self._build_cost(rows, identity_ops=1.0)
        return total

    def _all_kept_points(self) -> List[LatticePoint]:
        return [
            point
            for point in self.lattice.points()
            if len(self.lattice.kept_axes(point)) == self.lattice.axis_count
        ]

    def _tdopt(self) -> float:
        total = self._encode_cost()
        for point in self._all_kept_points():
            rows = self.expected_rows(point)
            total += self._build_cost(rows, identity_ops=0.0)
        for point in self.lattice.points():
            if len(self.lattice.kept_axes(point)) == self.lattice.axis_count:
                continue
            cells = self.expected_cells(point)
            total += self._sort_cost(cells) + cells * CPU_COST
        return total

    def _tdoptall(self) -> float:
        top_rows = self.expected_rows(self.lattice.top)
        total = self._encode_cost()
        total += self._build_cost(top_rows, identity_ops=0.0)
        for point in self.lattice.points():
            if point == self.lattice.top:
                continue
            cells = self.expected_cells(point)
            total += self._sort_cost(cells) + cells * CPU_COST
        return total
