"""Incremental cube maintenance for distributive/algebraic aggregates.

A warehouse keeps growing; recomputing the whole relaxed-cube lattice on
every batch of new facts is wasteful.  Because every cell is a fold of
per-fact contributions — and a fact's contribution to a cell does not
depend on other facts — appending facts updates each affected cell by
merging the delta's contribution, for *any* of our aggregate functions
(COUNT/SUM are distributive; AVG/MIN/MAX keep partial states).

Deletion is supported for the invertible aggregates (COUNT, SUM, AVG)
by subtracting contributions; MIN/MAX would need recomputation and are
rejected.

Cells store ``(partial_state, support_count)`` and finalize on read, so
algebraic aggregates stay exact and fully-retracted groups disappear.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.aggregates import AggregateFunction
from repro.core.bindings import FactRow, FactTable, GroupKey
from repro.core.cube import CubeResult
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.errors import CubeError
from repro import obs

_INVERTIBLE = {"COUNT", "SUM", "AVG"}


# ----------------------------------------------------------------------
# shared write-path helpers (used here and by repro.serve.CubeServer)
# ----------------------------------------------------------------------
def ingest_rows(table: FactTable, rows: Sequence[FactRow]) -> None:
    """Append delta facts to the table (the insert half of maintenance)."""
    table.rows.extend(rows)
    table.invalidate_columnar()


def retract_rows(table: FactTable, rows: Sequence[FactRow]) -> None:
    """Remove delta facts from the table, validating they all exist.

    Replaces ``table.rows`` with a fresh list (never mutates the old one
    in place), so concurrent readers holding a snapshot reference keep a
    consistent view — the serving layer relies on this.
    """
    removed_ids = {row.fact_id for row in rows}
    before = len(table.rows)
    remaining = [
        row for row in table.rows if row.fact_id not in removed_ids
    ]
    if before - len(remaining) != len(rows):
        raise CubeError("attempted to delete facts not in the table")
    table.rows = remaining
    table.invalidate_columnar()


def affected_points(
    table: FactTable,
    rows: Sequence[FactRow],
    points: Iterable[LatticePoint],
) -> Set[LatticePoint]:
    """The subset of ``points`` whose cuboids a delta batch touches.

    A fact changes a cuboid iff it participates in it, so points where
    no delta row participates need neither patching nor invalidation —
    this is what lets the serving layer evict *exactly* the affected
    lattice points instead of flushing its whole cache.
    """
    return {
        point
        for point in points
        if any(table.participates(row, point) for row in rows)
    }


def invertible(aggregate_name: str) -> bool:
    """Can deletions be applied by subtracting contributions?"""
    return aggregate_name.upper() in _INVERTIBLE


class IncrementalCube:
    """A full cube maintained under fact insertions (and deletions).

    Args:
        table: the (initially possibly empty) fact table; its lattice
            and aggregate define the cube.
    """

    def __init__(self, table: FactTable) -> None:
        self.table = table
        self.lattice = table.lattice
        self.fn: AggregateFunction = table.aggregate.fn
        # point -> key -> (partial state, supporting fact count)
        self._cells: Dict[LatticePoint, Dict[GroupKey, Tuple[Any, int]]] = {
            point: {} for point in self.lattice.points()
        }
        self.applied_rows = 0
        if table.rows:
            self.insert(list(table.rows), _already_in_table=True)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(
        self, rows: Iterable[FactRow], _already_in_table: bool = False
    ) -> int:
        """Fold new facts into every affected cell.  Returns the number
        of cell updates performed."""
        rows = list(rows)
        if not _already_in_table:
            ingest_rows(self.table, rows)
        updates = 0
        with obs.span(
            "incremental.insert", category="incremental", rows=len(rows)
        ) as span:
            for row in rows:
                for point in self.lattice.points():
                    cells = self._cells[point]
                    for key in self.table.key_combinations(row, point):
                        state, support = cells.get(key, (self.fn.new(), 0))
                        cells[key] = (
                            self.fn.add(state, row.measure),
                            support + 1,
                        )
                        updates += 1
                self.applied_rows += 1
            span.annotate(updates=updates)
        obs.count("x3_incremental_updates_total", updates, op="insert")
        return updates

    def delete(self, rows: Iterable[FactRow]) -> int:
        """Retract facts (COUNT/SUM/AVG only)."""
        name = self.table.aggregate.function.upper()
        if not invertible(name):
            raise CubeError(
                f"{name} is not invertible; deletion requires recompute"
            )
        rows = list(rows)
        retract_rows(self.table, rows)
        updates = 0
        with obs.span(
            "incremental.delete", category="incremental", rows=len(rows)
        ) as span:
            for row in rows:
                for point in self.lattice.points():
                    cells = self._cells[point]
                    for key in self.table.key_combinations(row, point):
                        if key not in cells:
                            raise CubeError(
                                "retracting from a non-existent cell"
                            )
                        state, support = cells[key]
                        state = _subtract(name, state, row.measure)
                        support -= 1
                        if support <= 0:
                            del cells[key]
                        else:
                            cells[key] = (state, support)
                        updates += 1
                self.applied_rows -= 1
            span.annotate(updates=updates)
        obs.count("x3_incremental_updates_total", updates, op="delete")
        return updates

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def cuboid(self, point: LatticePoint) -> Cuboid:
        return {
            key: self.fn.finalize(state)
            for key, (state, _) in self._cells[point].items()
        }

    def state_cuboid(self, point: LatticePoint) -> Dict[GroupKey, Any]:
        """The *partial states* of one cuboid, un-finalized.

        This is what a cluster shard ships for algebraic aggregates:
        an AVG cell must travel as its ``(sum, count)`` pair so the
        coordinator can merge across shards before dividing once.
        Tuple states are immutable; mutable states would need a copy.
        """
        return {
            key: state for key, (state, _) in self._cells[point].items()
        }

    def as_result(self) -> CubeResult:
        return CubeResult(
            lattice=self.lattice,
            cuboids={
                point: self.cuboid(point) for point in self.lattice.points()
            },
            algorithm="INCREMENTAL",
            aggregate=self.table.aggregate.function.upper(),
        )

    def cell(self, point: LatticePoint, key: GroupKey):
        entry = self._cells[point].get(key)
        return None if entry is None else self.fn.finalize(entry[0])


def _subtract(name: str, state: Any, measure: float) -> Any:
    if name == "COUNT":
        return state - 1
    if name == "SUM":
        return state - measure
    # AVG partial is (sum, count).
    return (state[0] - measure, state[1] - 1)


def split_rows(
    table: FactTable, initial_fraction: float
) -> Tuple[List[FactRow], List[FactRow]]:
    """Test/benchmark helper: split a table's rows into (initial, delta)."""
    cut = int(len(table.rows) * initial_fraction)
    return table.rows[:cut], table.rows[cut:]
