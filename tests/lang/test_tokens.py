"""Unit tests for the X^3QL tokenizer."""

import pytest

from repro.errors import QueryParseError
from repro.lang.tokens import (
    TokenKind,
    is_bare_name,
    statement_spans,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert [t.kind for t in tokens] == [TokenKind.EOF]
        assert (tokens[0].line, tokens[0].column) == (1, 1)

    def test_simple_statement(self):
        assert kinds("ROLLUP pubs BY n:detail") == [
            TokenKind.NAME,
            TokenKind.NAME,
            TokenKind.NAME,
            TokenKind.NAME,
            TokenKind.COLON,
            TokenKind.NAME,
            TokenKind.EOF,
        ]

    def test_positions_are_one_based(self):
        first, second, _ = tokenize("a\n  bc")
        assert (first.line, first.column) == (1, 1)
        assert (second.line, second.column) == (2, 3)

    def test_variables(self):
        token = tokenize("$name2")[0]
        assert token.kind is TokenKind.VAR
        assert token.text == "$name2"

    def test_bare_dollar_fails(self):
        with pytest.raises(QueryParseError):
            tokenize("$ x")

    def test_numbers(self):
        token = tokenize("12.5")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == 12.5

    def test_number_then_flwor_dot(self):
        # "3." is the number 3 followed by the FLWOR terminator.
        assert kinds("3.") == [
            TokenKind.NUMBER,
            TokenKind.DOT,
            TokenKind.EOF,
        ]

    def test_slash_variants(self):
        assert kinds("/a//b") == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.DSLASH,
            TokenKind.NAME,
            TokenKind.EOF,
        ]

    def test_unexpected_character_has_position(self):
        with pytest.raises(QueryParseError) as excinfo:
            tokenize("a ?")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 3

    def test_non_string_input(self):
        with pytest.raises(QueryParseError):
            tokenize(b"ROLLUP pubs")  # type: ignore[arg-type]


class TestNames:
    def test_lattice_labels_are_single_names(self):
        for label in ("PC-AD", "SP+PC-AD", "LND"):
            tokens = tokenize(label)
            assert tokens[0].kind is TokenKind.NAME
            assert tokens[0].text == label

    def test_attribute_names(self):
        token = tokenize("@id")[0]
        assert token.kind is TokenKind.NAME
        assert token.text == "@id"

    def test_dotted_name(self):
        # A '.' continues a name only when a name character follows.
        tokens = tokenize("book.xml")
        assert tokens[0].text == "book.xml"
        tokens = tokenize("name.")
        assert [t.kind for t in tokens[:2]] == [
            TokenKind.NAME,
            TokenKind.DOT,
        ]

    def test_double_dash_breaks_a_name(self):
        # '--' opens a comment even mid-name.
        tokens = tokenize("a--b")
        assert [t.kind for t in tokens] == [TokenKind.NAME, TokenKind.EOF]
        assert tokens[0].text == "a"


class TestX3Operator:
    @pytest.mark.parametrize("glyph", ["X^3", "X~3", 'X"3', "x^3"])
    def test_operator_glyphs(self, glyph):
        token = tokenize(glyph)[0]
        assert token.kind is TokenKind.X3OP
        assert token.value == "X^3"

    def test_plain_x3_is_a_name(self):
        token = tokenize("X3")[0]
        assert token.kind is TokenKind.NAME


class TestStrings:
    def test_both_quote_kinds(self):
        assert tokenize("'a b'")[0].value == "a b"
        assert tokenize('"a b"')[0].value == "a b"

    def test_no_escapes(self):
        assert tokenize(r"'a\b'")[0].value == "a\\b"

    def test_unterminated_string_is_incomplete(self):
        with pytest.raises(QueryParseError) as excinfo:
            tokenize("SLICE c ON a = 'oops")
        assert excinfo.value.incomplete


class TestComments:
    def test_comment_to_end_of_line(self):
        tokens = tokenize("a -- the rest is noise ; ROLLUP\nb")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_comment_only(self):
        assert kinds("-- nothing here") == [TokenKind.EOF]


class TestStatementSpans:
    def test_split_on_semicolons(self):
        tokens = tokenize("a b; c;; d")
        spans = statement_spans(tokens)
        texts = [
            [t.text for t in tokens[b:e]] for b, e in spans
        ]
        assert texts == [["a", "b"], ["c"], ["d"]]


class TestIsBareName:
    @pytest.mark.parametrize(
        "text", ["detail", "PC-AD", "SP+PC-AD", "@id", "book.xml", "a_1"]
    )
    def test_bare(self, text):
        assert is_bare_name(text)

    @pytest.mark.parametrize(
        "text", ["", "2006", "a b", "a--b", "name.", "'q'", "x;y"]
    )
    def test_not_bare(self, text):
        assert not is_bare_name(text)
