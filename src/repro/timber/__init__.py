"""A miniature native XML database in the spirit of TIMBER.

The paper ran its cube algorithms inside TIMBER (C++): documents stored as
node records on disk pages behind a buffer pool, per-tag indexes sorted in
document order, and stack-based structural joins for tree-pattern
evaluation.  This subpackage reproduces that substrate in pure Python:

- :mod:`repro.timber.pages` / :mod:`repro.timber.buffer_pool` — a simulated
  paged disk and an LRU buffer pool with I/O statistics;
- :mod:`repro.timber.node_store` — documents serialized to fixed-size node
  records on pages;
- :mod:`repro.timber.tag_index` — tag -> postings (``(start, end, level)``)
  sorted by ``start``;
- :mod:`repro.timber.structural_join` — stack-tree ancestor-descendant and
  parent-child joins;
- :mod:`repro.timber.external_sort` — in-memory quicksort + k-way external
  merge sort, both charging the cost model;
- :mod:`repro.timber.stats` — the deterministic cost model used to report
  *simulated seconds* (wall-clock depends on the host; operation and I/O
  counts do not);
- :mod:`repro.timber.database` — the :class:`TimberDB` facade.
"""

from repro.timber.database import TimberDB
from repro.timber.stats import CostModel, IOStats, MemoryBudget

__all__ = ["TimberDB", "CostModel", "IOStats", "MemoryBudget"]
