"""Regenerate the ``tests/lang/golden`` fixtures.

Run after a *deliberate* grammar or compiler change::

    PYTHONPATH=src python tests/lang/generate_golden.py

and review the diff — these files pin the language's observable
behaviour, so an unexpected change here is a regression, not noise.
"""

import json
from pathlib import Path

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.core.xq_parser import parse_x3_query
from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.lang.ast import pretty
from repro.lang.compiler import CompiledDefinition, compile_statement
from repro.lang.parser import parse_statement
from repro.serve import CubeServer
from repro.server.model import CubeCatalog, LogicalCube

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> (form, statement text) — one fixture per statement form.
CASES = {
    "rollup": ("ROLLUP", "ROLLUP pubs BY n:detail, y:detail"),
    "drilldown": ("DRILLDOWN", "DRILLDOWN pubs ON p BY n:detail"),
    "slice": (
        "SLICE",
        "SLICE pubs ON y = '2003' BY n:detail, y:detail",
    ),
    "dice": (
        "DICE",
        "DICE pubs BY n:detail, y:detail "
        "WHERE y IN ('2003', '2004') AND n = 'John'",
    ),
    "cell": (
        "CELL",
        "CELL pubs KEY ('John', '2003') BY n:detail, y:detail",
    ),
    "explain": (
        "EXPLAIN",
        "EXPLAIN ROLLUP pubs BY n:detail, y:detail "
        "AT VERSION 0 WITHIN 0.05s MEASURE COUNT",
    ),
    "x3": ("X^3", QUERY1_TEXT),
}


def main() -> None:
    table = extract_fact_table(
        [figure1_document()], parse_x3_query(QUERY1_TEXT)
    )
    server = CubeServer(table, PropertyOracle.from_data(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", server.lattice), server
    )
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, (form, text) in CASES.items():
        statement = parse_statement(text)
        compiled = compile_statement(statement, catalog)
        fixture = {
            "form": form,
            "text": text,
            "pretty": pretty(statement),
        }
        if isinstance(compiled, CompiledDefinition):
            spec = compiled.spec
            fixture["definition"] = {
                "fact_tag": spec.fact_tag,
                "document": spec.document,
                "fact_id_path": spec.fact_id_path,
                "aggregate": spec.aggregate.function.upper(),
                "axes": [axis.name for axis in spec.axes],
                "lattice_points": spec.lattice().size(),
                "flwor": spec.to_flwor(),
            }
        else:
            fixture["cube"] = compiled.cube
            fixture["explain"] = compiled.explain
            fixture["query"] = compiled.query.to_dict()
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(fixture, indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
