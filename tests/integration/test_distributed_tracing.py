"""End-to-end distributed tracing invariants.

The acceptance bar for the tracing layer: a deterministic traced replay
— chaos cluster included — yields exactly one trace per sampled
request, every span of a trace carries that trace's id, request/cluster
events are stamped with the ids of the traces that produced them, the
engine's process-pool spans re-parent into the request trace, and two
seeded runs dump byte-identical JSONL once wall-clock keys are
stripped.
"""

import json
import threading

import pytest

import repro.serve.server as serve_server
from repro.cluster.chaos import ChaosEngine, get_profile
from repro.cluster.coordinator import ClusterCoordinator
from repro.core.cube import ExecutionOptions
from repro.core.query import Query
from repro.obs.trace_store import TraceStore
from repro.serve import CubeServer
from repro.serve.cli import sample_points
from repro.testing import small_workload


def fresh(**overrides):
    workload = small_workload(**overrides)
    table = workload.fact_table()
    return table, workload.oracle(table)


def strip_wall(text):
    """Canonical JSONL minus every ``*wall_seconds`` key — what the CI
    determinism job compares across two seeded runs."""
    out = []
    for line in text.strip().split("\n"):
        if not line:
            continue
        record = json.loads(line)
        record.pop("wall_seconds", None)
        for span in record.get("spans", []):
            span.pop("wall_seconds", None)
            span.pop("start_wall_seconds", None)
        out.append(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(out)


class TestServerTracing:
    def test_one_trace_per_query_spanning_serve_and_engine(self):
        table, oracle = fresh()
        store = TraceStore(seed=1)
        server = CubeServer(table, oracle, trace_store=store)
        points = sample_points(table.lattice, 10, 3)
        for point in points:
            result = server.query(Query(point=point))
            assert len(result.trace_id) == 32
        traces = store.traces()
        assert len(traces) == 10
        for record in traces:
            assert record.name == "serve.query"
            assert {span.trace_id for span in record.spans} == {
                record.trace_id
            }
            names = {span.name for span in record.spans}
            assert "serve.request" in names
        # cold recomputes absorbed the engine's spans into the trace
        categories = {
            span.category
            for record in traces
            for span in record.spans
        }
        assert "serve" in categories
        assert "engine" in categories or "algorithm" in categories

    def test_request_events_stamped_with_the_trace_id(self):
        table, oracle = fresh()
        store = TraceStore(seed=1)
        server = CubeServer(table, oracle, trace_store=store)
        points = sample_points(table.lattice, 8, 3)
        results = [server.query(Query(point=point)) for point in points]
        events = server.events.requests()
        assert len(events) == len(results)
        for event, result in zip(events, results):
            assert event.trace_id == result.trace_id

    def test_untraced_server_emits_no_trace_ids(self):
        table, oracle = fresh()
        server = CubeServer(table, oracle)
        result = server.query(Query(point=next(iter(table.lattice.points()))))
        assert result.trace_id == ""
        assert "trace_id" not in result.to_dict()
        assert server.events.requests()[0].trace_id == ""

    def test_exemplars_link_latency_buckets_to_traces(self):
        table, oracle = fresh()
        store = TraceStore(seed=1)
        server = CubeServer(table, oracle, trace_store=store)
        for point in sample_points(table.lattice, 10, 3):
            server.query(Query(point=point))
        exemplars = server.telemetry.exemplars()
        assert exemplars
        stored_ids = {record.trace_id for record in store.traces()}
        for exemplar in exemplars:
            assert exemplar.trace_id in stored_ids
            assert exemplar.modeled_seconds <= exemplar.bucket_le

    def test_process_pool_spans_reparent_into_the_trace(self):
        table, oracle = fresh()
        store = TraceStore(seed=1)
        server = CubeServer(
            table,
            oracle,
            options=ExecutionOptions(
                algorithm="TD", workers=2, engine="process"
            ),
            trace_store=store,
        )
        point = next(iter(table.lattice.points()))
        server.query(Query(point=point))
        (record,) = store.traces()
        engine_spans = [
            span
            for span in record.spans
            if span.category in ("engine", "algorithm")
        ]
        assert engine_spans
        ids = {span.span_id for span in record.spans}
        for span in engine_spans:
            # every absorbed span re-parents inside this trace
            assert span.parent_id in ids
            assert span.trace_id == record.trace_id
            # host pids never leak into the trace
            assert "pid-" not in json.dumps(span.attrs)

    def test_singleflight_follower_links_to_the_leader_span(self):
        table, oracle = fresh()
        store = TraceStore(seed=1)
        server = CubeServer(
            table, oracle, cache_cells=0, trace_store=store
        )
        point = next(iter(table.lattice.points()))
        leader_started = threading.Event()
        release = threading.Event()
        real_compute = serve_server.compute_cube
        calls = []

        def slow_compute(snapshot, options):
            calls.append(1)
            leader_started.set()
            release.wait(timeout=5.0)
            return real_compute(snapshot, options)

        serve_server.compute_cube = slow_compute
        try:
            leader = threading.Thread(
                target=server.query, args=(Query(point=point),)
            )
            leader.start()
            assert leader_started.wait(timeout=5.0)
            follower = threading.Thread(
                target=server.query, args=(Query(point=point),)
            )
            follower.start()
            # follower must be parked inside the flight before release
            deadline = 50
            while server._flight.shared_total == 0 and deadline:
                threading.Event().wait(0.02)
                deadline -= 1
            release.set()
            leader.join(timeout=5.0)
            follower.join(timeout=5.0)
        finally:
            serve_server.compute_cube = real_compute
        assert len(calls) == 1  # the flight deduplicated the recompute
        traces = store.traces()
        assert len(traces) == 2
        joins = [
            span
            for record in traces
            for span in record.spans
            if span.name == "serve.singleflight.join"
        ]
        assert len(joins) == 1
        join = joins[0]
        leader_trace = next(
            record
            for record in traces
            if record.trace_id == join.attrs["link_trace_id"]
        )
        assert join.trace_id != leader_trace.trace_id
        leader_span_ids = {
            span.span_id for span in leader_trace.spans
        }
        assert join.attrs["link_span_id"] in leader_span_ids


class TestClusterTracing:
    def run_cluster(self, requests=100, chaos="heavy"):
        table, oracle = fresh()
        store = TraceStore(seed=5)
        coordinator = ClusterCoordinator(
            table,
            3,
            2,
            oracle=oracle,
            cache_cells=0,
            chaos=(
                ChaosEngine(get_profile(chaos), seed=11)
                if chaos
                else None
            ),
            hedge_deadline_seconds=0.001,
            trace_store=store,
        )
        points = sample_points(table.lattice, requests, 7)
        try:
            for point in points:
                coordinator.query(Query(point=point))
        finally:
            coordinator.close()
        return coordinator, store

    def test_single_trace_id_spans_coordinator_to_shards_100_of_100(
        self,
    ):
        coordinator, store = self.run_cluster(requests=100)
        traces = store.traces()
        assert len(traces) == 100
        for record in traces:
            assert {span.trace_id for span in record.spans} == {
                record.trace_id
            }, record.trace_id
            shard_spans = [
                span
                for span in record.spans
                if span.name == "cluster.shard"
            ]
            assert len(shard_spans) >= 3  # one per shard minimum
            names = {span.name for span in record.spans}
            assert "cluster.query" in names
            assert "cluster.request" in names
            assert "cluster.merge" in names
            # replica ladder spans nest under the shard reads
            assert "serve.request" in names
            # replicas never absorb the process-global engine tracer
            # (concurrent recomputes would cross-contaminate), so
            # cluster traces are schedule-independent
            assert not any(
                span.category in ("engine", "algorithm")
                for span in record.spans
            )

    def test_shard_spans_record_replica_and_degradation(self):
        coordinator, store = self.run_cluster(requests=60)
        shard_spans = [
            span
            for record in store.traces()
            for span in record.spans
            if span.name == "cluster.shard" and span.status == "ok"
        ]
        assert all("replica" in span.attrs for span in shard_spans)
        stats = coordinator.stats()
        if stats.hedges:
            assert any(
                span.attrs.get("hedged") for span in shard_spans
            )
        if stats.failovers:
            assert any(
                span.attrs.get("failover") for span in shard_spans
            )

    def test_two_seeded_runs_are_byte_identical_modulo_wall(self):
        _, first = self.run_cluster(requests=40)
        _, second = self.run_cluster(requests=40)
        assert strip_wall(first.to_jsonl()) == strip_wall(
            second.to_jsonl()
        )

    def test_events_carry_the_ids_of_their_traces(self):
        table, oracle = fresh()
        store = TraceStore(seed=5)
        with ClusterCoordinator(
            table,
            2,
            2,
            oracle=oracle,
            cache_cells=0,
            hedge_deadline_seconds=None,
            trace_store=store,
        ) as coordinator:
            for point in sample_points(table.lattice, 20, 7):
                coordinator.query(Query(point=point))
            events = coordinator.events.cluster_events()
        stored = {record.trace_id for record in store.traces()}
        reads = [
            event for event in events if event.kind == "read"
        ]
        assert reads
        for event in reads:
            assert event.trace_id in stored


class TestSamplingE2E:
    def test_head_sampling_records_a_strict_subset(self):
        table, oracle = fresh()
        store = TraceStore(seed=2, sample_rate=0.5)
        server = CubeServer(table, oracle, trace_store=store)
        points = sample_points(table.lattice, 40, 3)
        with_id = 0
        for point in points:
            result = server.query(Query(point=point))
            if result.trace_id:
                with_id += 1
        stats = store.stats()
        assert stats["started"] == 40
        assert 0 < stats["sampled"] < 40
        assert with_id == stats["sampled"] == len(store.traces())

    def test_unsampled_requests_record_zero_spans(self):
        table, oracle = fresh()
        store = TraceStore(seed=2, sample_rate=0.0)
        server = CubeServer(table, oracle, trace_store=store)
        for point in sample_points(table.lattice, 10, 3):
            result = server.query(Query(point=point))
            assert result.trace_id == ""
        assert store.traces() == ()
        assert store.stats()["sampled"] == 0
