"""Unit tests for the X3Query object."""

import pytest

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.datagen.publications import query1
from repro.errors import QueryError
from repro.patterns.pattern import EdgeAxis
from repro.patterns.relaxation import Relaxation


class TestValidation:
    def test_needs_axes(self):
        with pytest.raises(QueryError):
            X3Query(fact_tag="f", axes=())

    def test_needs_fact_tag(self):
        with pytest.raises(QueryError):
            X3Query(fact_tag="", axes=(AxisSpec.from_path("$a", "a"),))

    def test_duplicate_axis_names(self):
        with pytest.raises(QueryError):
            X3Query(
                fact_tag="f",
                axes=(
                    AxisSpec.from_path("$a", "a"),
                    AxisSpec.from_path("$a", "b"),
                ),
            )


class TestPatterns:
    def test_rigid_pattern_shape(self):
        pattern = query1().rigid_pattern()
        assert pattern.root.test == "publication"
        assert set(pattern.labelled()) == {"$fact", "$n", "$p", "$y"}
        name = pattern.by_label("$n")
        assert name.parent.test == "author"
        assert name.axis is EdgeAxis.CHILD

    def test_rigid_pattern_includes_fact_id(self):
        pattern = query1().rigid_pattern()
        id_nodes = [n for n in pattern.nodes() if n.test == "@id" and not n.label]
        assert id_nodes  # the measure's @id attribute is in the pattern

    def test_most_relaxed_pattern_all_axes_optional(self):
        relaxed = query1().most_relaxed()
        for label in ("$n", "$p", "$y"):
            assert relaxed.by_label(label).optional

    def test_relaxation_specs(self):
        specs = query1().relaxation_specs()
        assert specs["$n"] == {
            Relaxation.LND, Relaxation.SP, Relaxation.PC_AD,
        }
        assert specs["$y"] == {Relaxation.LND}


class TestFlwor:
    def test_render_contains_clauses(self):
        text = query1().to_flwor()
        assert 'doc("book.xml")//publication' in text
        assert "$p in $b//publisher/@id" in text
        assert "X^3 $b/@id by" in text
        assert text.rstrip().endswith("return COUNT($b).")

    def test_render_parse_round_trip(self):
        from repro.core.xq_parser import parse_x3_query

        original = query1()
        again = parse_x3_query(original.to_flwor())
        assert again.fact_tag == original.fact_tag
        assert [a.name for a in again.axes] == [a.name for a in original.axes]
        for mine, theirs in zip(again.axes, original.axes):
            assert mine.steps == theirs.steps
            assert mine.relaxations == theirs.relaxations
        assert again.aggregate == original.aggregate

    def test_measure_path_rendered(self):
        query = X3Query(
            fact_tag="sale",
            axes=(AxisSpec.from_path("$r", "region"),),
            aggregate=AggregateSpec("SUM", "@amount"),
        )
        assert "return SUM($b/@amount)." in query.to_flwor()
