"""Unit tests for the top-down family (Sec. 3.5)."""

from repro.core.cube import compute_cube
from repro.core.properties import PropertyOracle
from tests.conftest import small_workload


class TestTd:
    def test_correct_everywhere(self, fig1_table):
        naive = compute_cube(fig1_table, "NAIVE")
        td = compute_cube(fig1_table, "TD")
        assert td.same_contents(naive)

    def test_cost_scales_with_lattice_size(self):
        small = small_workload(n_axes=2, n_facts=100).fact_table()
        large = small_workload(n_axes=5, n_facts=100).fact_table()
        cheap = compute_cube(small, "TD")
        costly = compute_cube(large, "TD")
        # 2^5/2^2 = 8x the cuboids: at least several times the cost.
        assert costly.simulated_seconds > 4 * cheap.simulated_seconds

    def test_external_sorts_when_budget_tiny(self):
        table = small_workload(n_facts=200).fact_table()
        cube = compute_cube(table, "TD", memory_entries=64)
        roomy = compute_cube(table, "TD", memory_entries=1_000_000)
        assert cube.same_contents(roomy)
        assert cube.cost["page_writes"] > roomy.cost["page_writes"]


class TestTdOpt:
    def test_null_groups_fix_coverage(self):
        """TDOPT stays correct when coverage fails but disjointness
        holds — the paper applied it in exactly that setting (Fig. 4-6)."""
        table = small_workload(
            coverage=False, disjoint=True, n_facts=150, seed=31
        ).fact_table()
        naive = compute_cube(table, "NAIVE")
        tdopt = compute_cube(table, "TDOPT")
        assert tdopt.same_contents(naive)

    def test_double_counts_without_disjointness(self, fig1_table):
        naive = compute_cube(fig1_table, "NAIVE")
        tdopt = compute_cube(fig1_table, "TDOPT")
        point = fig1_table.lattice.point_by_description(
            "$n:LND, $p:rigid, $y:LND"
        )
        # Rolling up the (publisher, year) cuboid over year is fine, but
        # rolling up over the repeated-author axis double-counts pub1.
        author_point = fig1_table.lattice.point_by_description(
            "$n:LND, $p:LND, $y:LND"
        )
        assert tdopt.cuboids[author_point][()] > naive.cuboids[
            author_point
        ][()]
        assert point in tdopt.cuboids

    def test_cheaper_than_td(self):
        table = small_workload(n_facts=200, n_axes=4).fact_table()
        td = compute_cube(table, "TD")
        tdopt = compute_cube(table, "TDOPT")
        assert tdopt.simulated_seconds < td.simulated_seconds


class TestTdOptAll:
    def test_fast_on_dense_lnd_lattice(self):
        table = small_workload(
            density="dense", n_facts=300, n_axes=5
        ).fact_table()
        td = compute_cube(table, "TD")
        tdoptall = compute_cube(table, "TDOPTALL")
        assert tdoptall.same_contents(compute_cube(table, "NAIVE"))
        assert tdoptall.simulated_seconds < td.simulated_seconds / 5

    def test_undercounts_on_coverage_gap(self):
        """The paper's motivating roll-up failure, isolated: a fact
        missing one dimension never reaches the coarser cuboid via
        roll-up from the finer one."""
        from repro.core.axes import AxisSpec
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query
        from repro.xmlmodel.parser import parse

        doc = parse(
            "<r>"
            "<f><a>x</a><b>u</b></f>"
            "<f><b>u</b></f>"  # no <a>: the online-article analogue
            "</r>"
        )
        query = X3Query(
            fact_tag="f",
            axes=(
                AxisSpec.from_path("$a", "a"),
                AxisSpec.from_path("$b", "b"),
            ),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        naive = compute_cube(table, "NAIVE")
        tdoptall = compute_cube(table, "TDOPTALL")
        b_point = table.lattice.point_by_description("$a:LND, $b:rigid")
        assert naive.cuboids[b_point][("u",)] == 2.0
        assert tdoptall.cuboids[b_point][("u",)] == 1.0  # f2 lost

    def test_structural_twin_assumption(self, fig1_table):
        """TDOPTALL equates structurally relaxed points with their rigid
        twins - visibly wrong on Figure 1 (PC-AD finds Smith)."""
        naive = compute_cube(fig1_table, "NAIVE")
        tdoptall = compute_cube(fig1_table, "TDOPTALL")
        pcad_point = fig1_table.lattice.point_by_description(
            "$n:PC-AD, $p:LND, $y:LND"
        )
        rigid_point = fig1_table.lattice.point_by_description(
            "$n:rigid, $p:LND, $y:LND"
        )
        assert tdoptall.cuboids[pcad_point] == tdoptall.cuboids[rigid_point]
        assert naive.cuboids[pcad_point] != naive.cuboids[rigid_point]


class TestTdCust:
    def test_correct_with_schema_oracle(self):
        from repro.core.extract import extract_fact_table
        from repro.datagen.dblp import (
            DblpConfig, dblp_dtd, dblp_query, generate_dblp,
        )

        doc = generate_dblp(DblpConfig(n_articles=300, seed=8))
        table = extract_fact_table(doc, dblp_query())
        oracle = PropertyOracle.from_schema(
            table.lattice, dblp_dtd(), "article"
        )
        naive = compute_cube(table, "NAIVE")
        cust = compute_cube(table, "TDCUST", oracle=oracle)
        assert cust.same_contents(naive)

    def test_between_td_and_tdopt(self):
        from repro.core.extract import extract_fact_table
        from repro.datagen.dblp import (
            DblpConfig, dblp_dtd, dblp_query, generate_dblp,
        )

        doc = generate_dblp(DblpConfig(n_articles=400, seed=6))
        table = extract_fact_table(doc, dblp_query())
        oracle = PropertyOracle.from_schema(
            table.lattice, dblp_dtd(), "article"
        )
        td = compute_cube(table, "TD")
        tdopt = compute_cube(table, "TDOPT")
        cust = compute_cube(table, "TDCUST", oracle=oracle)
        assert tdopt.simulated_seconds < cust.simulated_seconds
        assert cust.simulated_seconds < td.simulated_seconds

    def test_pessimistic_oracle_degenerates_to_safe(self, fig1_table):
        naive = compute_cube(fig1_table, "NAIVE")
        cust = compute_cube(fig1_table, "TDCUST")  # default: nothing holds
        assert cust.same_contents(naive)
