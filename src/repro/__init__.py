"""repro — a full reproduction of *X^3: A Cube Operator for XML OLAP*
(Wiwatwattana, Jagadish, Lakshmanan, Srivastava; ICDE 2007).

Quickstart::

    from repro import (
        ExecutionOptions, parse_x3_query, extract_fact_table, compute_cube,
    )
    from repro.datagen.publications import figure1_document

    doc = figure1_document()
    query = parse_x3_query('''
        for $b in doc("book.xml")//publication,
            $n in $b/author/name,
            $p in $b//publisher/@id,
            $y in $b/year
        X^3 $b/@id by $n (LND, SP, PC-AD),
                    $p (LND, PC-AD),
                    $y (LND)
        return COUNT($b).
    ''')
    table = extract_fact_table(doc, query)
    cube = compute_cube(table, ExecutionOptions(algorithm="BUC"))

    # Parallel: fan the lattice out over 4 workers and merge.
    fast = compute_cube(
        table, ExecutionOptions(algorithm="BUC", workers=4, engine="thread")
    )
    assert fast.same_contents(cube)

:class:`ExecutionOptions` is the single options object for every
execution surface (``compute_cube``, ``CubeSession.compute``, the bench
harness, both CLIs); the legacy keyword form
``compute_cube(table, algorithm="BUC", ...)`` still works but emits a
``DeprecationWarning``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.core import (
    AggregateSpec,
    AxisSpec,
    CostSnapshot,
    CubeLattice,
    CubeResult,
    ExecutionOptions,
    FactTable,
    X3Query,
    compute_cube,
    extract_fact_table,
    parse_x3_query,
)
from repro.patterns import TreePattern, parse_pattern
from repro.timber import TimberDB
from repro.warehouse import CubeSession, XmlWarehouse
from repro.xmlmodel import Document, Element, parse

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "AxisSpec",
    "CostSnapshot",
    "CubeLattice",
    "CubeResult",
    "ExecutionOptions",
    "FactTable",
    "X3Query",
    "compute_cube",
    "extract_fact_table",
    "parse_x3_query",
    "TreePattern",
    "parse_pattern",
    "TimberDB",
    "XmlWarehouse",
    "CubeSession",
    "Document",
    "Element",
    "parse",
    "__version__",
]
