"""The X^3QL compiler: AST to the unified serving API.

Navigation statements compile against a :class:`CubeCatalog` into the
frozen :class:`repro.core.query.Query` both backends already speak, so
every language query inherits the provenance envelope, version fences
and the soundness ladder for free.  The FLWOR ``X^3`` form compiles to
an :class:`repro.core.query.X3Query` cube *definition* (it names no
catalog cube — it describes one).

Name resolution errors (:class:`~repro.errors.QueryCompileError`, a
subclass of :class:`~repro.errors.InvalidQuery`) carry the source
position of the offending clause and keep the HTTP 400 mapping;
:class:`~repro.errors.UnknownCube` passes through untouched (404).

The compile cost is folded into the serving model's simulated clock as
a deterministic token-count model (:func:`modeled_lang_seconds`): real
wall time would make the perfgate's ``lang_parse_compile_overhead_ratio``
metric machine-dependent, while a per-token charge is reproducible
bit-for-bit and still scales with statement complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import Query, X3Query
from repro.errors import (
    InvalidQuery,
    PatternError,
    QueryCompileError,
    QueryError,
    QueryParseError,
)
from repro.lang.ast import (
    NavStatement,
    Pos,
    Statement,
    X3Statement,
)
from repro.lang.parser import Parser
from repro.lang.tokens import TokenKind, tokenize
from repro.patterns.relaxation import Relaxation
from repro.server.model import BoundCube, CubeCatalog

#: Verb to :data:`repro.core.query.QUERY_KINDS` entry.
VERB_KINDS: Dict[str, str] = {
    "ROLLUP": "aggregate",
    "DRILLDOWN": "drilldown",
    "SLICE": "slice",
    "DICE": "dice",
    "CELL": "cell",
}

#: Deterministic modeled cost of compiling one statement (simulated
#: seconds), charged on the serving clock by the text endpoints.
LANG_SECONDS_PER_STATEMENT = 5e-7
#: Deterministic modeled cost per token of the statement.
LANG_SECONDS_PER_TOKEN = 5e-8


def modeled_lang_seconds(token_count: int) -> float:
    """The simulated parse+compile cost of a ``token_count`` statement."""
    return (
        LANG_SECONDS_PER_STATEMENT + LANG_SECONDS_PER_TOKEN * token_count
    )


@dataclass(frozen=True)
class CompiledQuery:
    """One navigation statement resolved against the catalog."""

    cube: str  #: catalog name the query addresses
    query: Query  #: the frozen serving request
    explain: bool  #: ``EXPLAIN`` prefix: plan, do not execute
    statement: NavStatement
    modeled_seconds: float  #: simulated parse+compile cost


@dataclass(frozen=True)
class CompiledDefinition:
    """One FLWOR ``X^3`` statement: a cube definition, not a request."""

    spec: X3Query
    statement: X3Statement
    modeled_seconds: float


Compiled = Union[CompiledQuery, CompiledDefinition]


def _fail(message: str, pos: Pos) -> QueryCompileError:
    return QueryCompileError(message, line=pos.line, column=pos.column)


# ======================================================================
# navigation statements -> Query
# ======================================================================
def compile_nav(
    statement: NavStatement, catalog: CubeCatalog
) -> CompiledQuery:
    """Resolve one navigation statement to a frozen :class:`Query`.

    Raises :class:`QueryCompileError` on name/shape errors and lets
    :class:`UnknownCube` propagate for the 404 mapping.
    """
    bound = catalog.get(statement.cube)
    point = _point(statement, bound)
    axis = _axis(statement, bound)
    filters = _filters(statement, bound)
    try:
        query = Query(
            point=point,
            kind=VERB_KINDS[statement.verb],
            axis=axis,
            value=statement.value,
            key=statement.key,
            filters=filters,
            measure=statement.measure,
            read_version=statement.at_version,
            deadline_seconds=statement.within_seconds,
        )
    except InvalidQuery as error:
        raise _fail(str(error), statement.pos) from None
    return CompiledQuery(
        cube=statement.cube,
        query=query,
        explain=statement.explain,
        statement=statement,
        modeled_seconds=0.0,
    )


def _point(statement: NavStatement, bound: BoundCube) -> str:
    group_by: Dict[str, str] = {}
    for assignment in statement.group_by:
        if assignment.name in group_by:
            raise _fail(
                f"dimension {assignment.name!r} assigned twice in BY",
                assignment.pos,
            )
        group_by[assignment.name] = assignment.level
    try:
        return bound.point_for(group_by)
    except InvalidQuery as error:
        pos = (
            statement.group_by[0].pos
            if statement.group_by
            else statement.pos
        )
        raise _fail(str(error), pos) from None


def _axis(statement: NavStatement, bound: BoundCube) -> Optional[str]:
    if statement.axis is None:
        return None
    try:
        return bound.axis_for(statement.axis)
    except InvalidQuery as error:
        raise _fail(str(error), statement.pos) from None


def _filters(
    statement: NavStatement, bound: BoundCube
) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    if not statement.where:
        return ()
    if statement.verb != "DICE":
        # Query only applies filters to dice; silently ignoring a WHERE
        # on the other verbs would lie about the answer.
        raise _fail(
            f"WHERE filters apply to DICE only, not {statement.verb} "
            f"(slice with ON axis = 'value', or use DICE)",
            statement.where[0].pos,
        )
    out: List[Tuple[str, Tuple[str, ...]]] = []
    seen: Dict[str, Pos] = {}
    for predicate in statement.where:
        if predicate.name in seen:
            raise _fail(
                f"dimension {predicate.name!r} filtered twice in WHERE "
                f"(use one IN (...) list)",
                predicate.pos,
            )
        seen[predicate.name] = predicate.pos
        try:
            axis = bound.axis_for(predicate.name)
        except InvalidQuery as error:
            raise _fail(str(error), predicate.pos) from None
        out.append((axis, predicate.values))
    return tuple(out)


# ======================================================================
# the FLWOR X^3 statement -> X3Query
# ======================================================================
def compile_x3(statement: X3Statement) -> X3Query:
    """Compile the FLWOR form to an :class:`X3Query` cube definition.

    Semantic errors (unbound variables, paths not relative to the fact
    variable, unknown relaxations, bad aggregates) raise
    :class:`QueryParseError` — the contract of the legacy
    :func:`repro.core.xq_parser.parse_x3_query` front end this backs.
    """
    fact_var = statement.fact_var
    paths: Dict[str, str] = {}
    for binding in statement.bindings:
        if binding.source_var != fact_var:
            raise QueryParseError(
                f"axis {binding.var} must be relative to the fact "
                f"variable {fact_var}",
                line=binding.pos.line,
                column=binding.pos.column,
            )
        paths[binding.var] = binding.path

    # Fact identity: "$b/@id" names the id path, bare "$b" means node
    # identity.
    measure = statement.measure
    if measure.var == fact_var:
        fact_id_path = measure.path
    else:
        fact_id_path = "@id"

    axes: List[AxisSpec] = []
    seen = set()
    for entry in statement.by:
        if entry.var not in paths:
            raise QueryParseError(
                f"X^3 clause names unbound variable {entry.var}",
                line=entry.pos.line,
                column=entry.pos.column,
            )
        try:
            relaxations = frozenset(
                Relaxation.from_text(name)
                for name in entry.relaxations
            )
            axes.append(
                AxisSpec.from_path(
                    entry.var, paths[entry.var], relaxations
                )
            )
        except QueryParseError:
            raise
        except (QueryError, PatternError) as error:
            raise QueryParseError(
                str(error),
                line=entry.pos.line,
                column=entry.pos.column,
            ) from None
        seen.add(entry.var)
    missing = [
        binding.var
        for binding in statement.bindings
        if binding.var not in seen
    ]
    if missing:
        raise QueryParseError(
            f"bound variables missing from the X^3 clause: {missing}",
            line=statement.pos.line,
            column=statement.pos.column,
        )

    arg = statement.aggregate_arg
    measure_path = ""
    if arg is not None and arg.var == fact_var:
        measure_path = arg.path
    try:
        return X3Query(
            fact_tag=statement.fact_tag,
            axes=tuple(axes),
            aggregate=AggregateSpec(statement.aggregate, measure_path),
            fact_id_path=fact_id_path,
            document=statement.document,
        )
    except QueryError as error:
        raise QueryParseError(
            str(error),
            line=statement.pos.line,
            column=statement.pos.column,
        ) from None


# ======================================================================
# entry points
# ======================================================================
def compile_statement(
    statement: Statement, catalog: CubeCatalog
) -> Compiled:
    """Compile one parsed statement (cost model not included — use
    :func:`compile_text` for the end-to-end form)."""
    if isinstance(statement, X3Statement):
        return CompiledDefinition(
            spec=compile_x3(statement),
            statement=statement,
            modeled_seconds=0.0,
        )
    return compile_nav(statement, catalog)


def compile_text(text: str, catalog: CubeCatalog) -> Compiled:
    """Parse and compile one statement of X^3QL text.

    Raises :class:`QueryParseError` on syntax, :class:`UnknownCube` on
    an unknown cube name, :class:`QueryCompileError` on any other name
    or shape mismatch.  The returned object carries the deterministic
    modeled parse+compile cost.
    """
    tokens = tokenize(text)
    parser = Parser(tokens)
    statement = parser.statement()
    while parser.peek().kind is TokenKind.SEMI:
        parser.advance()
    if parser.peek().kind is not TokenKind.EOF:
        parser.fail(
            f"unexpected {parser.peek().describe()} after the statement "
            f"(the text endpoints take one statement at a time)"
        )
    compiled = compile_statement(statement, catalog)
    cost = modeled_lang_seconds(len(tokens) - 1)  # EOF is free
    if isinstance(compiled, CompiledQuery):
        return CompiledQuery(
            cube=compiled.cube,
            query=compiled.query,
            explain=compiled.explain,
            statement=compiled.statement,
            modeled_seconds=cost,
        )
    return CompiledDefinition(
        spec=compiled.spec,
        statement=compiled.statement,
        modeled_seconds=cost,
    )
