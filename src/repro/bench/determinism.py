"""Byte-for-byte determinism differ for benchmark artifacts.

CI runs the benchmark writers twice in one job and pipes both outputs
through this module: every JSON artifact and JSONL event log the suite
produces must be **identical across runs** once the wall-clock noise is
stripped.  The modeled numbers (simulated seconds, cell counts, modeled
speedups, event sequences) are deterministic by construction — host
timing is the only thing allowed to differ — so any surviving diff is a
real nondeterminism bug (an unstable iteration order, an unseeded
random, a race) and fails the build.

Normalization: volatile keys are removed recursively, everything else
is re-serialized canonically (sorted keys) and compared byte for byte::

    python -m repro.bench.determinism a/BENCH_engine.json b/BENCH_engine.json
    python -m repro.bench.determinism --jsonl a/events.jsonl b/events.jsonl

A key is volatile when it measures host time: ``wall_seconds`` and any
``*_wall_seconds``, wall-derived ratios (``wall_speedup``), and the
engine's queueing/merge clocks.  Everything else — including every
``*sim_seconds`` and ``modeled_*`` value — must match exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

#: Keys stripped before comparison — host wall-clock measurements and
#: quantities derived from them.  Matching is exact or by suffix so duel
#: summaries (``buc_dict_wall_seconds``) normalize like run rows.
VOLATILE_KEYS = frozenset(
    {
        "wall_seconds",
        "wall_speedup",
        "merge_seconds",
        "queue_wait_seconds",
        "partition_seconds",
        "total_wall_seconds",
    }
)
VOLATILE_SUFFIXES = ("_wall_seconds", "_wall_speedup")


def is_volatile(key: str) -> bool:
    return key in VOLATILE_KEYS or key.endswith(VOLATILE_SUFFIXES)


def normalize(value: Any) -> Any:
    """Strip volatile keys recursively; leave everything else intact."""
    if isinstance(value, dict):
        return {
            key: normalize(item)
            for key, item in value.items()
            if not is_volatile(key)
        }
    if isinstance(value, list):
        return [normalize(item) for item in value]
    return value


def canonical(value: Any) -> str:
    """One canonical byte representation of a normalized document."""
    return json.dumps(normalize(value), sort_keys=True, separators=(",", ":"))


def diff_json(path_a: str, path_b: str) -> Optional[str]:
    """None when the two JSON documents normalize identically."""
    with open(path_a, "r", encoding="utf-8") as handle:
        doc_a = json.load(handle)
    with open(path_b, "r", encoding="utf-8") as handle:
        doc_b = json.load(handle)
    if canonical(doc_a) == canonical(doc_b):
        return None
    return _first_divergence(normalize(doc_a), normalize(doc_b), "$")


def diff_jsonl(path_a: str, path_b: str) -> Optional[str]:
    """None when the two JSON-Lines logs normalize identically."""
    lines_a = _read_jsonl(path_a)
    lines_b = _read_jsonl(path_b)
    if len(lines_a) != len(lines_b):
        return (
            f"line counts differ: {len(lines_a)} vs {len(lines_b)}"
        )
    for index, (doc_a, doc_b) in enumerate(zip(lines_a, lines_b)):
        if canonical(doc_a) != canonical(doc_b):
            where = _first_divergence(
                normalize(doc_a), normalize(doc_b), f"line {index + 1}"
            )
            return where
    return None


def _read_jsonl(path: str) -> List[Any]:
    documents: List[Any] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                documents.append(json.loads(line))
    return documents


def _first_divergence(a: Any, b: Any, path: str) -> str:
    """A human-readable pointer at the first differing element."""
    if isinstance(a, dict) and isinstance(b, dict):
        only_a = sorted(set(a) - set(b))
        only_b = sorted(set(b) - set(a))
        if only_a or only_b:
            return (
                f"{path}: key sets differ"
                f" (only in first: {only_a}, only in second: {only_b})"
            )
        for key in sorted(a):
            if canonical(a[key]) != canonical(b[key]):
                return _first_divergence(a[key], b[key], f"{path}.{key}")
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path}: lengths differ ({len(a)} vs {len(b)})"
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            if canonical(item_a) != canonical(item_b):
                return _first_divergence(
                    item_a, item_b, f"{path}[{index}]"
                )
    return f"{path}: {a!r} != {b!r}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.determinism",
        description=(
            "Compare two benchmark artifacts for determinism, ignoring"
            " wall-clock keys."
        ),
    )
    parser.add_argument("first", help="artifact from the first run")
    parser.add_argument("second", help="artifact from the second run")
    parser.add_argument(
        "--jsonl",
        action="store_true",
        help="compare as JSON Lines (one document per line)",
    )
    args = parser.parse_args(argv)
    differ = diff_jsonl if args.jsonl else diff_json
    problem = differ(args.first, args.second)
    if problem is not None:
        print(
            f"NONDETERMINISM {args.first} vs {args.second}: {problem}",
            file=sys.stderr,
        )
        return 1
    print(f"deterministic: {args.first} == {args.second} (normalized)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
