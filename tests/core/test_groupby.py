"""Unit tests for grouping primitives."""

from repro.core.aggregates import get_function
from repro.core.groupby import (
    aggregate_groups,
    augmented_keys,
    cuboid_from_rows,
    group_facts,
    strip_null_groups,
)
from repro.core.extract import extract_from_documents
from repro.datagen.publications import figure1_document, query1


def fig1_table():
    return extract_from_documents([figure1_document()], query1())


class TestGroupFacts:
    def test_paper_group_p1_2003(self):
        table = fig1_table()
        point = table.lattice.point_by_description(
            "$n:LND, $p:rigid, $y:rigid"
        )
        groups = group_facts(table, table.rows, point)
        # "the group (p1, 2003) contains only the first publication and
        # its count should be one"
        assert len(groups[("p1", "2003")]) == 1

    def test_multi_author_fact_in_two_groups(self):
        table = fig1_table()
        point = table.lattice.point_by_description(
            "$n:rigid, $p:LND, $y:LND"
        )
        groups = group_facts(table, table.rows, point)
        first = table.rows[0]
        assert first in groups[("John",)]
        assert first in groups[("Jane",)]


class TestAggregation:
    def test_count(self):
        table = fig1_table()
        point = table.lattice.point_by_description(
            "$n:LND, $p:LND, $y:rigid"
        )
        cuboid = cuboid_from_rows(
            table, table.rows, point, get_function("COUNT")
        )
        assert cuboid == {
            ("2003",): 2.0, ("2004",): 1.0, ("2005",): 1.0,
        }

    def test_aggregate_groups_direct(self):
        table = fig1_table()
        groups = {("k",): table.rows[:3]}
        cuboid = aggregate_groups(groups, get_function("COUNT"))
        assert cuboid == {("k",): 3.0}


class TestAugmentedKeys:
    def test_nulls_for_missing_axes(self):
        table = fig1_table()
        pub3 = table.rows[2]
        keys = augmented_keys(table, pub3, table.lattice.top)
        # pub3 has no rigid name, no publisher, a rigid year.
        assert keys == [(None, None, "2003")]

    def test_no_nulls_when_fully_bound(self):
        table = fig1_table()
        pub1 = table.rows[0]
        keys = augmented_keys(table, pub1, table.lattice.top)
        assert sorted(keys) == [
            ("Jane", "p1", "2003"), ("John", "p1", "2003"),
        ]

    def test_bottom_point_single_empty_key(self):
        table = fig1_table()
        assert augmented_keys(
            table, table.rows[0], table.lattice.bottom
        ) == [()]


class TestStripNullGroups:
    def test_strip(self):
        cuboid = {("a", "b"): 1.0, ("a", None): 2.0, (None,): 3.0}
        assert strip_null_groups(cuboid) == {("a", "b"): 1.0}

    def test_empty_key_kept(self):
        assert strip_null_groups({(): 5.0}) == {(): 5.0}
