"""The ``x3-server`` command line tool: the HTTP front door.

Usage::

    x3-server --query query.xq data.xml
    x3-server --query query.xq data.xml --port 8311 --serve-forever
    x3-server --query query.xq data.xml --backend cluster --shards 4
    x3-server --query query.xq data.xml --clients 8 --requests 25 \\
        --latency-jsonl latency.jsonl
    x3-server --query query.xq data.xml --auth-token s3cret=acme

Boots a :class:`~repro.server.http.X3HttpServer` over either a single
:class:`~repro.serve.CubeServer` or a sharded
:class:`~repro.cluster.ClusterCoordinator` — both behind the same
:class:`~repro.core.query.CubeBackend` API — registers the cube in the
catalog under ``--cube-name``, then either serves in the foreground
(``--serve-forever``) or drives itself with the deterministic
closed-loop load generator and reports the latency distribution,
admission stats and per-status counts before shutting down.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Union

from repro.cluster.coordinator import ClusterCoordinator
from repro.core.bindings import FactTable
from repro.core.cube import ENGINE_CHOICES, ExecutionOptions
from repro.core.properties import PropertyOracle
from repro.errors import X3Error
from repro.obs.live import LiveTelemetry
from repro.obs.trace_store import TraceStore
from repro.serve.cli import load_table
from repro.serve.server import CubeServer
from repro.server.http import (
    AdmissionController,
    TenantAuth,
    X3Api,
    X3HttpServer,
)
from repro.server.loadgen import LoadGenerator
from repro.server.model import CubeCatalog, LogicalCube


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="x3-server",
        description=(
            "Serve X^3 cube queries over HTTP/JSON (aggregate, "
            "drilldown, slice, dice, explain, /metrics) from either a "
            "single CubeServer or a sharded cluster."
        ),
    )
    parser.add_argument("files", nargs="+", help="XML input files")
    parser.add_argument(
        "--query", required=True, help="file holding the X^3 FLWOR text"
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0: pick a free one and print it)",
    )
    parser.add_argument(
        "--cube-name",
        default="default",
        help="catalog name of the served cube (default 'default')",
    )
    parser.add_argument(
        "--backend",
        choices=("serve", "cluster"),
        default="serve",
        help="single CubeServer or a sharded ClusterCoordinator",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --backend cluster (default 4)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replicas per shard for --backend cluster (default 2)",
    )
    parser.add_argument(
        "--cache-cells",
        type=int,
        default=4096,
        help="cuboid cache budget in cells (per replica on a cluster)",
    )
    parser.add_argument(
        "--oracle",
        choices=("data", "none"),
        default="data",
        help="property oracle for sound roll-ups (default data)",
    )
    parser.add_argument(
        "--algorithm",
        default="NAIVE",
        help="recompute algorithm (default NAIVE)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="execution engine for recomputes (default auto)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission budget: concurrent requests before 429s",
    )
    parser.add_argument(
        "--auth-token",
        action="append",
        metavar="TOKEN=TENANT",
        help="register a bearer token for a tenant; repeatable. With "
        "none registered the server is open (anonymous tenant)",
    )
    parser.add_argument(
        "--lang",
        metavar="STMT",
        help="boot, POST the X^3QL statement to /api/v1/query over "
        "the live socket, print the round-trip and exit (smoke mode)",
    )
    parser.add_argument(
        "--serve-forever",
        action="store_true",
        help="serve in the foreground instead of running the load "
        "generator and exiting",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="load-generator closed-loop clients (default 4)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=25,
        help="load-generator requests per client (default 25)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=17,
        help="load-generator base seed (default 17)",
    )
    parser.add_argument(
        "--latency-jsonl",
        metavar="PATH",
        help="write one JSON line per load-generator request",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable distributed tracing (traceparent propagation, "
        "GET /api/v1/traces, x3-trace explorer input)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="head sampling rate in [0, 1] (default 1.0; tail "
        "retention keeps error/slow traces regardless)",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed for deterministic trace/span id generation",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help="dump the retained traces as canonical JSONL on exit "
        "(implies --trace)",
    )
    return parser


def parse_tokens(pairs: Optional[List[str]]) -> TenantAuth:
    tokens: Dict[str, str] = {}
    for pair in pairs or []:
        token, sep, tenant = pair.partition("=")
        if not sep or not token or not tenant:
            raise X3Error(
                f"bad --auth-token {pair!r}; expected TOKEN=TENANT"
            )
        tokens[token] = tenant
    return TenantAuth(tokens)


def build_backend(
    args: argparse.Namespace,
    table: FactTable,
    trace_store: Optional[TraceStore] = None,
) -> Union[CubeServer, ClusterCoordinator]:
    oracle = (
        PropertyOracle.from_data(table) if args.oracle == "data" else None
    )
    options = ExecutionOptions(
        algorithm=args.algorithm, engine=args.engine
    )
    if args.backend == "cluster":
        return ClusterCoordinator(
            table,
            args.shards,
            args.replicas,
            oracle=oracle,
            options=options,
            cache_cells=args.cache_cells,
            hedge_deadline_seconds=None,
            trace_store=trace_store,
        )
    return CubeServer(
        table,
        oracle,
        options=options,
        cache_cells=args.cache_cells,
        trace_store=trace_store,
    )


def build_trace_store(
    args: argparse.Namespace,
) -> Optional[TraceStore]:
    if not (args.trace or args.trace_jsonl):
        return None
    return TraceStore(
        sample_rate=args.trace_sample, seed=args.trace_seed
    )


def run_lang_smoke(
    front: X3HttpServer, args: argparse.Namespace
) -> int:
    """POST ``--lang`` X^3QL text at the live socket and print the
    round-trip: the end-to-end smoke CI runs against the text front
    door (real HTTP, not the in-process API core)."""
    import json
    from urllib.error import HTTPError
    from urllib.request import Request, urlopen

    url = f"http://{front.host}:{front.port}/api/v1/query"
    request = Request(
        url,
        data=args.lang.encode("utf-8"),
        headers={"Content-Type": "text/plain"},
        method="POST",
    )
    token = next(iter(args.auth_token or []), None)
    if token:
        request.add_header(
            "Authorization", f"Bearer {token.partition('=')[0]}"
        )
    try:
        with urlopen(request, timeout=30.0) as reply:
            payload = json.loads(reply.read().decode("utf-8"))
            status = reply.status
    except HTTPError as error:
        payload = json.loads(error.read().decode("utf-8"))
        status = error.code
    print(f"lang: POST {url} -> {status}")
    print(json.dumps(payload, indent=1))
    return 0 if status == 200 else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        auth = parse_tokens(args.auth_token)
        table = load_table(args)
    except (OSError, X3Error) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    try:
        trace_store = build_trace_store(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    backend = build_backend(args, table, trace_store)
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice(
            args.cube_name,
            table.lattice,
            measure=table.aggregate.function.upper(),
            description=f"{len(table)} facts over "
            f"{table.lattice.size()} cuboids ({args.backend})",
        ),
        backend,
    )
    api = X3Api(
        catalog,
        auth=auth,
        admission=AdmissionController(args.max_inflight),
        trace_store=trace_store,
    )
    telemetry = LiveTelemetry()

    try:
        front = X3HttpServer(api, host=args.host, port=args.port)
        print(
            f"x3-server on http://{front.host}:{front.port} "
            f"({args.backend} backend, cube {args.cube_name!r}, "
            f"{len(table)} facts, {table.lattice.size()} cuboids)"
        )
        if args.lang:
            front.start()
            try:
                return run_lang_smoke(front, args)
            finally:
                front.close()
        if args.serve_forever:
            try:
                front.serve_forever()
            except KeyboardInterrupt:
                pass
            return 0
        front.start()
        try:
            token = next(iter(args.auth_token or []), None)
            generator = LoadGenerator(
                front.host,
                front.port,
                args.cube_name,
                table.lattice,
                clients=args.clients,
                requests_per_client=args.requests,
                seed=args.seed,
                token=token.partition("=")[0] if token else None,
                telemetry=telemetry,
            )
            report = generator.run()
        finally:
            front.close()
        print(f"loadgen: {report.summary()}")
        admission = api.admission.stats()
        print(
            f"admission: {admission['admitted']} admitted, "
            f"{admission['rejected']} rejected, peak "
            f"{admission['peak_inflight']}/"
            f"{admission['max_inflight']} in flight"
        )
        window = telemetry.snapshot()
        print(
            f"window: {window.requests} requests, hit ratio "
            f"{window.hit_ratio:.2f}, modeled p95 "
            f"{window.modeled_quantiles[0.95] * 1e3:.3f}ms"
        )
        if args.latency_jsonl:
            written = report.write_jsonl(args.latency_jsonl)
            print(
                f"wrote {written} latency records to "
                f"{args.latency_jsonl}"
            )
        if trace_store is not None:
            stats = trace_store.stats()
            print(
                f"tracing: {stats['started']} started, "
                f"{stats['sampled']} sampled, "
                f"{stats['retained']} tail-retained, "
                f"{stats['stored']} stored"
            )
            if args.trace_jsonl:
                count = trace_store.write_jsonl(args.trace_jsonl)
                print(
                    f"wrote {count} traces to {args.trace_jsonl}"
                )
        failed = sum(
            count
            for status, count in report.statuses.items()
            if status not in (200, 429)
        )
        return 1 if failed else 0
    finally:
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
