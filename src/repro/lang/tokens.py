"""The X^3QL tokenizer: hand-written, position-carrying.

Every token records the 1-based ``(line, column)`` where it begins, so
both the parser and the compiler can raise
:class:`~repro.errors.QueryParseError` pointing at the exact source
character.  The lexical vocabulary is shared by the two statement
families of the language — the paper's augmented FLWOR ``X^3`` clause
and the navigation verbs (``ROLLUP`` / ``DRILLDOWN`` / ``SLICE`` /
``DICE`` / ``CELL`` / ``EXPLAIN``):

- **names** start with a letter, ``_`` or ``@`` and may contain
  letters, digits, ``_``, ``+`` and ``-`` (so the lattice state labels
  ``PC-AD`` and ``SP+PC-AD`` lex as single names); a ``.`` is accepted
  mid-name only when a name character follows, which keeps the FLWOR
  terminator ``return COUNT($b).`` unambiguous;
- **variables** are ``$`` followed by a simple identifier (``$n``);
- **strings** use ``'`` or ``"`` with no escape sequences (a value
  containing both quote kinds is not representable — the domain is XML
  tag names and grouping values, which never need it);
- **numbers** are ``digits[.digits]`` (deadlines, version vectors);
- the ``X^3`` operator glyph also lexes from its OCR variants ``X~3``
  and ``X"3`` (plain ``X3`` is an ordinary name the parser accepts in
  operator position);
- ``--`` starts a comment running to end of line.

Keywords are *contextual*: the tokenizer emits plain NAME tokens and
the parser matches them case-insensitively, so a dimension named
``cell`` stays usable anywhere the grammar expects a bare name.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple, Union

from repro.errors import QueryParseError


class TokenKind(Enum):
    """Lexical classes of X^3QL."""

    NAME = "name"
    VAR = "variable"
    STRING = "string"
    NUMBER = "number"
    X3OP = "X^3"
    SLASH = "/"
    DSLASH = "//"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    COLON = ":"
    SEMI = ";"
    DOT = "."
    EQ = "="
    EOF = "end of input"


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position.

    ``value`` is the normalized payload: the name text for NAME/VAR,
    the unquoted body for STRING, the float for NUMBER, and the token
    text otherwise.
    """

    kind: TokenKind
    text: str
    value: Union[str, float]
    line: int
    column: int

    def describe(self) -> str:
        if self.kind is TokenKind.EOF:
            return "end of input"
        return f"{self.kind.value} {self.text!r}"


_NAME_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_@"
)
_NAME_CONT = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_+-"
)
_VAR_CONT = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
_DIGITS = frozenset("0123456789")

#: Single-character tokens (``/`` and ``-`` handled separately).
_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    "=": TokenKind.EQ,
}


def is_bare_name(text: str) -> bool:
    """Would ``text`` lex back as one NAME token (the pretty-printer's
    bare-vs-quoted decision)?"""
    if not text or text[0] not in _NAME_START:
        return False
    if text.startswith("--"):
        return False
    for position, char in enumerate(text[1:], start=1):
        if char in _NAME_CONT:
            continue
        if (
            char == "."
            and position + 1 < len(text)
            and text[position + 1] in _NAME_CONT
        ):
            continue
        return False
    # A name whose tail would open a comment does not survive a round
    # trip (``a--b`` lexes as ``a`` + comment).
    return "--" not in text


class Tokenizer:
    """Lexes one source text into a token list (see module docstring)."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def _fail(self, message: str, line: int, column: int) -> "QueryParseError":
        return QueryParseError(message, line=line, column=column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    # ------------------------------------------------------------------
    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                out.append(
                    Token(TokenKind.EOF, "", "", self.line, self.column)
                )
                return out
            out.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        # The X^3 operator glyph and its OCR variants.
        if char in "Xx" and self._peek(1) in '^~"' and self._peek(2) == "3":
            text = self.text[self.pos : self.pos + 3]
            self._advance(3)
            return Token(TokenKind.X3OP, text, "X^3", line, column)
        if char == "/":
            if self._peek(1) == "/":
                self._advance(2)
                return Token(TokenKind.DSLASH, "//", "//", line, column)
            self._advance()
            return Token(TokenKind.SLASH, "/", "/", line, column)
        if char in _PUNCT:
            self._advance()
            return Token(_PUNCT[char], char, char, line, column)
        if char in "'\"":
            return self._string(line, column)
        if char in _DIGITS:
            return self._number(line, column)
        if char == ".":
            self._advance()
            return Token(TokenKind.DOT, ".", ".", line, column)
        if char == "$":
            return self._variable(line, column)
        if char in _NAME_START:
            return self._name(line, column)
        raise self._fail(f"unexpected character {char!r}", line, column)

    # ------------------------------------------------------------------
    def _string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        begin = self.pos
        while self.pos < len(self.text) and self._peek() != quote:
            self._advance()
        if self.pos >= len(self.text):
            raise QueryParseError(
                "unterminated string literal",
                line=line,
                column=column,
                incomplete=True,
            )
        body = self.text[begin : self.pos]
        self._advance()
        return Token(
            TokenKind.STRING, quote + body + quote, body, line, column
        )

    def _number(self, line: int, column: int) -> Token:
        begin = self.pos
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        text = self.text[begin : self.pos]
        return Token(TokenKind.NUMBER, text, float(text), line, column)

    def _variable(self, line: int, column: int) -> Token:
        begin = self.pos
        self._advance()  # the '$'
        while self._peek() in _VAR_CONT:
            self._advance()
        text = self.text[begin : self.pos]
        if len(text) == 1:
            raise self._fail("'$' must start a variable name", line, column)
        return Token(TokenKind.VAR, text, text, line, column)

    def _name(self, line: int, column: int) -> Token:
        begin = self.pos
        self._advance()
        while True:
            char = self._peek()
            if char in _NAME_CONT:
                # '--' opens a comment even mid-name.
                if char == "-" and self._peek(1) == "-":
                    break
                self._advance()
            elif char == "." and self._peek(1) in _NAME_CONT:
                self._advance()
            else:
                break
        text = self.text[begin : self.pos]
        return Token(TokenKind.NAME, text, text, line, column)


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens ending with EOF.

    Raises :class:`~repro.errors.QueryParseError` (only) on lexically
    invalid input, with the position of the offending character.
    """
    if not isinstance(text, str):
        raise QueryParseError(
            f"query text must be a string, got {type(text).__name__}"
        )
    return Tokenizer(text).tokens()


def statement_spans(tokens: List[Token]) -> List[Tuple[int, int]]:
    """Split a token list into per-statement ``[begin, end)`` spans on
    top-level semicolons (empty statements are dropped)."""
    spans: List[Tuple[int, int]] = []
    begin = 0
    for index, token in enumerate(tokens):
        if token.kind is TokenKind.SEMI or token.kind is TokenKind.EOF:
            if index > begin:
                spans.append((begin, index))
            begin = index + 1
    return spans
