"""The cost-aware cuboid cache backing :class:`repro.serve.CubeServer`.

The policy is GreedyDual-Size (Cao & Irani), the canonical cost-aware
generalization of LRU: each resident cuboid carries a priority

    H(entry) = L + benefit(entry),   benefit = recompute_cost / size

where ``L`` is a logical clock that rises to the priority of whatever
was last evicted.  Recency, modeled recompute cost *saved* and space all
feed the same scalar: a recently touched entry has a high clock
component, a cheap-to-recompute or huge cuboid has a low benefit
density, and eviction always removes the minimum-priority entry.  With
uniform costs and sizes the policy degrades to exact LRU.

Sizes are measured in cuboid cells — the same unit
:func:`repro.core.materialize.cuboid_sizes` reports and the view
advisor budgets with, so cache budgets and materialization budgets are
directly comparable.  Costs are modeled simulated seconds from the
deterministic cost model, so admission decisions are reproducible
across hosts.

The cache is thread-safe; all statistics are kept under the same lock
that guards the entries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.core.groupby import Cuboid
from repro.core.lattice import LatticePoint
from repro.errors import CubeError


@dataclass
class CacheStats:
    """Monotonic counters describing cache behaviour."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejections: int = 0
    invalidations: int = 0
    patches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "invalidations": self.invalidations,
            "patches": self.patches,
        }

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Entry:
    cuboid: Cuboid
    size: int
    cost: float
    priority: float
    sequence: int
    hits: int = 0


@dataclass(frozen=True)
class CacheEntryInfo:
    """Read-only view of one resident entry (introspection / CLI)."""

    point: LatticePoint
    size: int
    cost: float
    priority: float
    hits: int


#: Audit callback: ``(kind, point, priority, cells)`` where ``kind`` is
#: ``admitted`` / ``evicted`` / ``rejected`` / ``invalidated``,
#: ``priority`` the entry's GreedyDual priority at that moment and
#: ``cells`` its resident size.  Invoked with the cache lock held, so
#: observers must not call back into the cache.
AuditObserver = Callable[[str, LatticePoint, float, int], None]


class CuboidCache:
    """Cost-aware LRU over cuboids, budgeted in cells.

    Args:
        budget_cells: maximum total resident cells; ``0`` disables
            caching entirely (every ``put`` is rejected).
        observer: optional audit hook receiving every cache-state
            change (admission, budget eviction with the victim's
            GreedyDual priority and cells freed, admission rejection,
            write-path invalidation) — the serving layer routes these
            into its request log, so evictions are never silent.
    """

    def __init__(
        self,
        budget_cells: int,
        observer: Optional[AuditObserver] = None,
    ) -> None:
        if budget_cells < 0:
            raise CubeError(
                f"cache budget must be >= 0 cells, got {budget_cells}"
            )
        self.budget_cells = budget_cells
        self.observer = observer
        self._entries: Dict[LatticePoint, _Entry] = {}
        self._clock = 0.0
        self._sequence = 0
        self._used_cells = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def _audit(
        self, kind: str, point: LatticePoint, priority: float, cells: int
    ) -> None:
        if self.observer is not None:
            self.observer(kind, point, priority, cells)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, point: LatticePoint) -> Optional[Cuboid]:
        """The cached cuboid, refreshing its priority; ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(point)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            entry.hits += 1
            entry.priority = self._clock + self._benefit(entry)
            self._sequence += 1
            entry.sequence = self._sequence
            return entry.cuboid

    def peek(self, point: LatticePoint) -> Optional[Cuboid]:
        """Like :meth:`get` but touching neither stats nor priorities."""
        with self._lock:
            entry = self._entries.get(point)
            return None if entry is None else entry.cuboid

    def __contains__(self, point: LatticePoint) -> bool:
        with self._lock:
            return point in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_cells(self) -> int:
        with self._lock:
            return self._used_cells

    def points(self) -> List[LatticePoint]:
        with self._lock:
            return list(self._entries)

    def entries(self) -> Iterator[CacheEntryInfo]:
        with self._lock:
            infos = [
                CacheEntryInfo(
                    point=point,
                    size=entry.size,
                    cost=entry.cost,
                    priority=entry.priority,
                    hits=entry.hits,
                )
                for point, entry in self._entries.items()
            ]
        return iter(infos)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, point: LatticePoint, cuboid: Cuboid, cost: float) -> bool:
        """Admit a cuboid with the given modeled recompute cost.

        Returns True when the entry is resident afterwards.  The entry
        enters at priority ``clock + cost/size``; eviction then removes
        minimum-priority entries until the budget holds — which may
        reject the newcomer itself when everything resident is more
        valuable (counted as a rejection, not an eviction).
        """
        size = max(1, len(cuboid))
        with self._lock:
            old = self._entries.pop(point, None)
            if old is not None:
                self._used_cells -= old.size
            if size > self.budget_cells:
                # A stale smaller version must not linger either.
                self.stats.rejections += 1
                self._audit("rejected", point, 0.0, size)
                return False
            self._sequence += 1
            entry = _Entry(
                cuboid=cuboid,
                size=size,
                cost=max(0.0, cost),
                priority=0.0,
                sequence=self._sequence,
            )
            entry.priority = self._clock + self._benefit(entry)
            self._entries[point] = entry
            self._used_cells += size
            self.stats.insertions += 1
            admitted = True
            while self._used_cells > self.budget_cells:
                victim_point = self._victim()
                victim = self._entries.pop(victim_point)
                self._used_cells -= victim.size
                self._clock = max(self._clock, victim.priority)
                if victim_point == point:
                    admitted = False
                    self.stats.rejections += 1
                    self.stats.insertions -= 1
                    self._audit(
                        "rejected", victim_point, victim.priority,
                        victim.size,
                    )
                else:
                    self.stats.evictions += 1
                    obs.count("x3_serve_cache_evictions_total")
                    self._audit(
                        "evicted", victim_point, victim.priority,
                        victim.size,
                    )
            if admitted:
                self._audit("admitted", point, entry.priority, entry.size)
            return admitted

    def invalidate(self, point: LatticePoint) -> bool:
        """Drop one entry (write-path eviction of an affected point)."""
        with self._lock:
            entry = self._entries.pop(point, None)
            if entry is None:
                return False
            self._used_cells -= entry.size
            self.stats.invalidations += 1
            self._audit("invalidated", point, entry.priority, entry.size)
            return True

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._used_cells = 0
            self.stats.invalidations += dropped
            return dropped

    def mutate(
        self, point: LatticePoint, patch: Callable[[Cuboid], None]
    ) -> bool:
        """Patch a resident cuboid in place (incremental maintenance).

        Re-measures the entry size afterwards and re-balances the budget
        if the patch grew it.  Returns False when the point is absent.
        """
        with self._lock:
            entry = self._entries.get(point)
            if entry is None:
                return False
            patch(entry.cuboid)
            new_size = max(1, len(entry.cuboid))
            self._used_cells += new_size - entry.size
            entry.size = new_size
            entry.priority = self._clock + self._benefit(entry)
            self.stats.patches += 1
            while self._used_cells > self.budget_cells:
                victim_point = self._victim()
                victim = self._entries.pop(victim_point)
                self._used_cells -= victim.size
                self._clock = max(self._clock, victim.priority)
                self.stats.evictions += 1
                obs.count("x3_serve_cache_evictions_total")
                self._audit(
                    "evicted", victim_point, victim.priority, victim.size
                )
            return point in self._entries

    # ------------------------------------------------------------------
    # internals (call with the lock held)
    # ------------------------------------------------------------------
    @staticmethod
    def _benefit(entry: _Entry) -> float:
        return entry.cost / entry.size

    def _victim(self) -> LatticePoint:
        """Minimum-priority entry; ties broken least-recently-touched
        first, so with uniform costs and sizes the policy is exact LRU
        and eviction is fully deterministic."""
        return min(
            self._entries,
            key=lambda point: (
                self._entries[point].priority,
                self._entries[point].sequence,
            ),
        )


def entry_totals(cache: CuboidCache) -> Tuple[int, int]:
    """(resident entries, resident cells) — convenience for reports."""
    return len(cache), cache.used_cells
