"""Golden tests for ``POST /api/v1/query`` — the X^3QL text endpoint.

Drives :meth:`repro.server.X3Api.handle` directly (no socket) on the
Fig. 1 workload, covering every body form the endpoint accepts, the
error-kind to status mapping (with source positions on 400s), and the
modeled parse+compile cost folded into the serving envelope.
"""

import json

import pytest

from repro.core.extract import extract_fact_table
from repro.core.properties import PropertyOracle
from repro.datagen.publications import (
    QUERY1_TEXT,
    figure1_document,
    query1,
)
from repro.lang.compiler import modeled_lang_seconds
from repro.serve import CubeServer
from repro.server import CubeCatalog, LogicalCube, TenantAuth, X3Api

ENDPOINT = "/api/v1/query"


@pytest.fixture()
def api():
    table = extract_fact_table(figure1_document(), query1())
    server = CubeServer(table, PropertyOracle.from_data(table))
    catalog = CubeCatalog()
    catalog.register(
        LogicalCube.from_lattice("pubs", table.lattice, measure="COUNT"),
        server,
    )
    return X3Api(catalog)


def post(api, body, headers=None):
    encoded = body.encode("utf-8") if isinstance(body, str) else body
    response = api.handle("POST", ENDPOINT, encoded, headers)
    return response, json.loads(response.body)


class TestBodyForms:
    def test_raw_text(self, api):
        response, decoded = post(
            api, "ROLLUP pubs BY n:detail, y:detail"
        )
        assert response.status == 200
        assert decoded["kind"] == "aggregate"
        assert decoded["cube"] == "pubs"
        assert decoded["point"] == "$n:rigid, $p:LND, $y:rigid"
        assert decoded["query"] == {
            "point": "$n:rigid, $p:LND, $y:rigid",
            "kind": "aggregate",
        }

    def test_json_envelope(self, api):
        response, decoded = post(
            api, json.dumps({"query": "ROLLUP pubs BY y:detail"})
        )
        assert response.status == 200
        assert decoded["point"] == "$n:LND, $p:LND, $y:rigid"

    def test_json_string(self, api):
        response, decoded = post(
            api, json.dumps("ROLLUP pubs BY y:detail")
        )
        assert response.status == 200
        assert decoded["point"] == "$n:LND, $p:LND, $y:rigid"

    def test_envelope_without_query_field(self, api):
        response, decoded = post(api, json.dumps({"stmt": "ROLLUP"}))
        assert response.status == 400
        assert decoded["error"]["kind"] == "invalid_query"

    def test_empty_body(self, api):
        response, decoded = post(api, b"")
        assert response.status == 400
        assert decoded["error"]["kind"] == "invalid_query"

    def test_non_utf8_body(self, api):
        response, decoded = post(api, b"\xff\xfe")
        assert response.status == 400
        assert decoded["error"]["kind"] == "parse_error"

    def test_get_is_not_allowed(self, api):
        response = api.handle("GET", ENDPOINT, None, None)
        assert response.status == 405


class TestErrorMapping:
    def test_syntax_error_is_parse_error_with_position(self, api):
        response, decoded = post(api, "ROLLUP pubs BY :detail")
        assert response.status == 400
        error = decoded["error"]
        assert error["kind"] == "parse_error"
        assert error["line"] == 1
        assert error["column"] == 16
        assert "line 1" in error["message"]

    def test_compile_error_is_invalid_query(self, api):
        response, decoded = post(api, "ROLLUP pubs BY bogus:detail")
        assert response.status == 400
        assert decoded["error"]["kind"] == "invalid_query"
        assert "bogus" in decoded["error"]["message"]

    def test_where_on_rollup_is_invalid_query(self, api):
        response, decoded = post(api, "ROLLUP pubs WHERE y = '2003'")
        assert response.status == 400
        assert "DICE only" in decoded["error"]["message"]

    def test_unknown_cube_is_404(self, api):
        response, decoded = post(api, "ROLLUP nope")
        assert response.status == 404
        assert decoded["error"]["kind"] == "unknown_cube"

    def test_stale_version_is_409(self, api):
        response, decoded = post(api, "ROLLUP pubs AT VERSION 7")
        assert response.status == 409
        assert decoded["error"]["kind"] == "stale_version"

    def test_measure_mismatch_is_400(self, api):
        response, decoded = post(api, "ROLLUP pubs MEASURE SUM")
        assert response.status == 400
        assert decoded["error"]["kind"] == "invalid_query"

    def test_multiple_statements_are_rejected(self, api):
        response, decoded = post(api, "ROLLUP pubs; ROLLUP pubs")
        assert response.status == 400
        assert decoded["error"]["kind"] == "parse_error"


class TestAnswers:
    def test_rollup_golden_groups(self, api):
        _, decoded = post(api, "ROLLUP pubs BY y:detail")
        assert decoded["groups"] == [
            {"key": ["2003"], "value": 2.0},
            {"key": ["2004"], "value": 1.0},
            {"key": ["2005"], "value": 1.0},
        ]

    def test_dice(self, api):
        _, decoded = post(
            api,
            "DICE pubs BY n:detail, y:detail "
            "WHERE y IN ('2003', '2004')",
        )
        assert decoded["kind"] == "dice"
        assert all("2005" not in key for key in decoded["groups"])

    def test_cell(self, api):
        _, decoded = post(
            api, "CELL pubs KEY ('John', '2003') BY n:detail, y:detail"
        )
        assert decoded["kind"] == "cell"
        assert decoded["value"] == 1.0

    def test_explain_does_not_execute(self, api):
        response, decoded = post(api, "EXPLAIN ROLLUP pubs BY y:detail")
        assert response.status == 200
        assert "rungs" in decoded
        assert "groups" not in decoded
        assert decoded["cube"] == "pubs"

    def test_flwor_answers_with_the_definition(self, api):
        response, decoded = post(api, QUERY1_TEXT)
        assert response.status == 200
        assert decoded["kind"] == "definition"
        assert decoded["fact_tag"] == "publication"
        assert decoded["lattice_points"] == 30
        assert decoded["axes"] == ["$n", "$p", "$y"]
        assert "for $b in doc" in decoded["flwor"]

    def test_deadline_flag_carried_through(self, api):
        _, decoded = post(
            api, "ROLLUP pubs BY n:detail WITHIN 1ms"
        )
        assert decoded["deadline_exceeded"] is True


class TestCostModel:
    def test_lang_cost_folded_into_modeled_seconds(self, api):
        text = "ROLLUP pubs BY n:detail"  # 6 tokens
        _, decoded = post(api, text)
        lang = decoded["lang_modeled_seconds"]
        assert lang == modeled_lang_seconds(6)
        # The envelope's modeled_seconds includes the language charge
        # on top of the backend's own cost.
        assert decoded["modeled_seconds"] > lang

    def test_explain_reports_the_cost_without_serving(self, api):
        _, decoded = post(api, "EXPLAIN ROLLUP pubs")
        assert decoded["lang_modeled_seconds"] == modeled_lang_seconds(3)


class TestMetricsAndAuth:
    def test_statement_counter_by_verb(self, api):
        post(api, "ROLLUP pubs BY y:detail")
        post(api, "SLICE pubs ON y = '2003' BY y:detail")
        metrics = api.handle("GET", "/metrics", None, None).body
        if isinstance(metrics, bytes):
            metrics = metrics.decode("utf-8")
        assert (
            'x3_http_lang_statements_total{verb="ROLLUP"} 1' in metrics
        )
        assert (
            'x3_http_lang_statements_total{verb="SLICE"} 1' in metrics
        )

    def test_auth_enforced_when_configured(self):
        table = extract_fact_table(figure1_document(), query1())
        server = CubeServer(table, PropertyOracle.from_data(table))
        catalog = CubeCatalog()
        catalog.register(
            LogicalCube.from_lattice("pubs", table.lattice), server
        )
        api = X3Api(catalog, auth=TenantAuth({"sekrit": "team-a"}))
        denied, _ = post(api, "ROLLUP pubs")
        assert denied.status == 401
        allowed, _ = post(
            api,
            "ROLLUP pubs",
            headers={"Authorization": "Bearer sekrit"},
        )
        assert allowed.status == 200
