"""The annotated fact table: what one evaluation of the most relaxed
fully instantiated pattern materializes (paper Sec. 3.4 / Sec. 4, "we
pre-evaluated the query tree pattern, and materialized the results").

Each :class:`FactRow` is one fact (one match of the fact binding) with,
per axis, the list of :class:`AnnotatedValue`s: a grouping value plus a
bitmask over the axis's structural states saying under which states the
value binds.  All cube algorithms consume this table; none of them goes
back to the raw documents (exactly the paper's measurement protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.lattice import CubeLattice, LatticePoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.columnar import ColumnarFactTable

GroupKey = Tuple[Optional[str], ...]


@dataclass(frozen=True)
class AnnotatedValue:
    """One axis binding of one fact.

    Attributes:
        value: the grouping value (element text or attribute value).
        mask: bit ``i`` set iff the value binds under structural state
            index ``i`` of the axis (monotone upward: a value matching a
            state also matches every superset state).
    """

    value: str
    mask: int

    def matches(self, state_index: int) -> bool:
        return bool(self.mask & (1 << state_index))


@dataclass(frozen=True)
class FactRow:
    """One fact with annotated bindings for every axis."""

    fact_id: Tuple[int, int]
    measure: float
    axes: Tuple[Tuple[AnnotatedValue, ...], ...]

    def values_under(self, axis_position: int, state_index: int) -> List[str]:
        """Distinct values the axis binds under the given structural state.

        Memoized per (axis, state): a cube sweep asks the same question
        for every lattice point that keeps the axis in the same state, so
        the distinct-scan runs once per row instead of once per (row,
        point) pair.  The returned list is shared — callers must treat it
        as read-only (every in-tree caller only iterates or indexes it).
        """
        cache: Optional[
            Dict[Tuple[int, int], List[str]]
        ] = self.__dict__.get("_values_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_values_cache", cache)
        key = (axis_position, state_index)
        cached = cache.get(key)
        if cached is not None:
            return cached
        seen = set()
        out: List[str] = []
        for annotated in self.axes[axis_position]:
            if annotated.matches(state_index) and annotated.value not in seen:
                seen.add(annotated.value)
                out.append(annotated.value)
        cache[key] = out
        return out

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the memo cache (process-pool engine workers)."""
        state = dict(self.__dict__)
        state.pop("_values_cache", None)
        return state


class FactTable:
    """The materialized, annotated input of cube computation."""

    def __init__(
        self,
        lattice: CubeLattice,
        rows: Sequence[FactRow],
        aggregate: Optional["AggregateSpec"] = None,
    ) -> None:
        from repro.core.aggregates import AggregateSpec

        self.lattice = lattice
        self.rows: List[FactRow] = list(rows)
        self.aggregate: "AggregateSpec" = aggregate or AggregateSpec()
        self._columnar_cache: Optional[
            Tuple[Tuple[int, int], "ColumnarFactTable"]
        ] = None

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # columnar twin
    # ------------------------------------------------------------------
    def columnar(self) -> "ColumnarFactTable":
        """The dictionary-encoded columnar twin of this table, built once.

        The encoding is cached against the identity and length of
        ``self.rows``; the incremental maintenance helpers rebind or
        extend that list and additionally call
        :meth:`invalidate_columnar`, so the cache never serves a stale
        encoding.  The cache is dropped on pickling (engine process
        pools re-encode on the worker side if they need it).
        """
        from repro.core.columnar import ColumnarFactTable

        stamp = (id(self.rows), len(self.rows))
        cached = self._columnar_cache
        if cached is not None and cached[0] == stamp:
            return cached[1]
        encoded = ColumnarFactTable.from_table(self)
        self._columnar_cache = (stamp, encoded)
        return encoded

    def invalidate_columnar(self) -> None:
        """Drop the cached columnar encoding (call after mutating rows)."""
        self._columnar_cache = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_columnar_cache"] = None
        return state

    def __iter__(self) -> Iterator[FactRow]:
        return iter(self.rows)

    # ------------------------------------------------------------------
    # membership / keys at a lattice point
    # ------------------------------------------------------------------
    def key_combinations(
        self, row: FactRow, point: LatticePoint
    ) -> List[GroupKey]:
        """All group keys the fact contributes to at a lattice point.

        The key has one component per *kept* axis.  A fact with several
        values on a kept axis contributes the cross product of values
        (the paper's combinatorial incrementing, Sec. 3.3); a fact with
        *no* value on a kept axis contributes nothing (the coverage gap).
        """
        per_axis: List[List[str]] = []
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            values = row.values_under(position, state)
            if not values:
                return []
            per_axis.append(values)
        if not per_axis:
            return [()]
        keys: List[GroupKey] = [()]
        for values in per_axis:
            keys = [key + (value,) for key in keys for value in values]
        return keys

    def participates(self, row: FactRow, point: LatticePoint) -> bool:
        """Does the fact appear in any group of the cuboid at ``point``?"""
        for position, states in enumerate(self.lattice.axis_states):
            state = point[position]
            if states.is_dropped(state):
                continue
            if not row.values_under(position, state):
                return False
        return True

    # ------------------------------------------------------------------
    # observed summarizability (ground truth for experiments and tests)
    # ------------------------------------------------------------------
    def observed_disjointness(self, point: LatticePoint) -> bool:
        """True iff no fact lands in two groups of this cuboid."""
        for row in self.rows:
            if len(self.key_combinations(row, point)) > 1:
                return False
        return True

    def observed_coverage(
        self, finer: LatticePoint, coarser: LatticePoint
    ) -> bool:
        """True iff every fact of the coarser cuboid also appears in the
        finer one (total coverage along the edge finer -> coarser)."""
        for row in self.rows:
            if self.participates(row, coarser) and not self.participates(
                row, finer
            ):
                return False
        return True

    def axis_cardinality(self, axis_position: int, state_index: int) -> int:
        """Distinct values of an axis under a structural state (cube
        density estimation)."""
        values = set()
        for row in self.rows:
            values.update(row.values_under(axis_position, state_index))
        return len(values)
