"""Tests for the analytic cost estimator: ranking fidelity vs. reality."""

import pytest

from repro.core.cube import compute_cube
from repro.core.estimate import CostEstimator, TableStatistics
from tests.conftest import small_workload


def prepared(**overrides):
    defaults = dict(n_facts=200, n_axes=4, density="dense", seed=8)
    defaults.update(overrides)
    return small_workload(**defaults).fact_table()


class TestStatistics:
    def test_counts(self, fig1_table):
        stats = TableStatistics.collect(fig1_table)
        assert stats.n_facts == 4
        # $y rigid (position 2): three facts bind a year.
        assert stats.coverage_rate[2][0] == pytest.approx(3 / 4)
        # $n rigid: pub1 has two names -> multiplicity > 1.
        assert stats.avg_multiplicity[0][0] > 1.0
        assert stats.cardinality[0][0] == 3  # John, Jane, Anna

    def test_empty_table(self):
        from repro.core.bindings import FactTable
        from repro.datagen.publications import query1

        stats = TableStatistics.collect(FactTable(query1().lattice(), []))
        assert stats.n_facts == 0


class TestExpectations:
    def test_expected_cells_close_to_actual(self):
        table = prepared()
        estimator = CostEstimator(table)
        cube = compute_cube(table, "NAIVE")
        actual = cube.total_cells()
        predicted = estimator.total_cells()
        assert predicted == pytest.approx(actual, rel=0.8)

    def test_expected_rows_at_bottom(self):
        table = prepared()
        estimator = CostEstimator(table)
        assert estimator.expected_rows(table.lattice.bottom) == len(table)


class TestRankingFidelity:
    """The estimator must predict the figures' winners."""

    def _actual(self, table, algorithms, memory):
        return {
            name: compute_cube(
                table, name, memory_entries=memory
            ).simulated_seconds
            for name in algorithms
        }

    def test_dense_summarizable_ranking(self):
        table = prepared(density="dense", coverage=True, disjoint=True)
        estimator = CostEstimator(table, memory_entries=4000)
        algorithms = ["COUNTER", "BUC", "TD", "TDOPTALL"]
        actual = self._actual(table, algorithms, 4000)
        # Whoever is predicted fastest must actually be in the top 2,
        # and TD must be predicted (and be) the slowest.
        predicted_order = estimator.rank(algorithms)
        actual_order = sorted(algorithms, key=actual.get)
        assert predicted_order[0] in actual_order[:2]
        assert predicted_order[-1] == actual_order[-1] == "TD"

    def test_sparse_ranking_prefers_buc_over_td(self):
        table = prepared(
            density="sparse", coverage=False, disjoint=True, n_facts=300
        )
        estimator = CostEstimator(table, memory_entries=4000)
        assert estimator.estimate("BUC") < estimator.estimate("TD")
        actual = self._actual(table, ["BUC", "TD"], 4000)
        assert actual["BUC"] < actual["TD"]

    def test_counter_thrash_predicted(self):
        table = prepared(
            density="sparse", coverage=False, disjoint=True,
            n_facts=300, n_axes=5,
        )
        starved = CostEstimator(table, memory_entries=500)
        roomy = CostEstimator(table, memory_entries=10**6)
        assert starved.estimate("COUNTER") > 2 * roomy.estimate("COUNTER")

    def test_tdoptall_predicted_cheaper_than_tdopt(self):
        table = prepared(density="dense", coverage=False, disjoint=True)
        estimator = CostEstimator(table)
        assert estimator.estimate("TDOPTALL") < estimator.estimate("TDOPT")
        assert estimator.estimate("TDOPT") < estimator.estimate("TD")

    def test_unknown_algorithm_rejected(self):
        table = prepared()
        with pytest.raises(ValueError):
            CostEstimator(table).estimate("MAGIC")
