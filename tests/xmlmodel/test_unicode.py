"""Unicode handling across parser, serializer, store and grouping."""

from repro.timber.database import TimberDB
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


class TestUnicodeContent:
    def test_non_ascii_text_round_trips(self):
        doc = parse("<a>héllo wörld — ünïcode ✓</a>")
        assert doc.root.text == "héllo wörld — ünïcode ✓"
        again = parse(serialize(doc))
        assert again.root.text == doc.root.text

    def test_cjk_and_emoji(self):
        doc = parse("<名前>山田🌸</名前>")
        assert doc.root.tag == "名前"
        assert doc.root.text == "山田🌸"
        assert parse(serialize(doc)).root.text == "山田🌸"

    def test_character_references_beyond_bmp(self):
        doc = parse("<a>&#x1F338;</a>")
        assert doc.root.text == "🌸"

    def test_unicode_attribute_values(self):
        doc = parse('<a name="Ünïcode &#233;"/>')
        assert doc.root.attrs["name"] == "Ünïcode é"
        assert parse(serialize(doc)).root.attrs["name"] == "Ünïcode é"


class TestUnicodeThroughTheStore:
    def test_store_preserves_unicode(self):
        db = TimberDB()
        db.load("<r><w>čeština</w><w>Ελληνικά</w></r>")
        texts = sorted(
            db.record_of(posting).text for posting in db.postings("w")
        )
        assert texts == ["čeština", "Ελληνικά"]  # codepoint order

    def test_value_index_on_unicode(self):
        db = TimberDB()
        db.load("<r><w>čeština</w><w>english</w></r>")
        postings = db.postings_with_value("w", "čeština")
        assert len(postings) == 1


class TestUnicodeGroupingValues:
    def test_cube_keys_preserve_unicode(self):
        from repro.core.axes import AxisSpec
        from repro.core.cube import compute_cube
        from repro.core.extract import extract_fact_table
        from repro.core.query import X3Query

        doc = parse(
            "<r><f><g>日本</g></f><f><g>日本</g></f><f><g>España</g></f></r>"
        )
        query = X3Query(
            fact_tag="f",
            axes=(AxisSpec.from_path("$g", "g"),),
            fact_id_path="",
        )
        table = extract_fact_table(doc, query)
        cube = compute_cube(table, "BUC")
        cuboid = cube.cuboid_by_description("$g:rigid")
        assert cuboid == {("日本",): 2.0, ("España",): 1.0}
