"""The determinism differ: wall-clock keys ignored, everything else exact."""

import json

import pytest

from repro.bench.determinism import (
    diff_json,
    diff_jsonl,
    is_volatile,
    main,
    normalize,
)


class TestVolatileKeys:
    def test_wall_clock_keys_are_volatile(self):
        for key in (
            "wall_seconds",
            "total_wall_seconds",
            "buc_dict_wall_seconds",
            "td_columnar_wall_seconds",
            "wall_speedup",
            "buc_wall_speedup",
            "merge_seconds",
            "queue_wait_seconds",
            "partition_seconds",
        ):
            assert is_volatile(key), key

    def test_modeled_keys_are_not_volatile(self):
        for key in (
            "sim_seconds",
            "buc_columnar_sim_seconds",
            "modeled_seconds",
            "buc_modeled_speedup",
            "cells",
            "seq",
        ):
            assert not is_volatile(key), key

    def test_normalize_strips_recursively(self):
        doc = {
            "wall_seconds": 1.0,
            "runs": [{"sim_seconds": 2.0, "wall_seconds": 0.1}],
            "duel": {"buc_wall_speedup": 9.0, "buc_modeled_speedup": 3.0},
        }
        assert normalize(doc) == {
            "runs": [{"sim_seconds": 2.0}],
            "duel": {"buc_modeled_speedup": 3.0},
        }


class TestDiffJson:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_wall_clock_noise_is_ignored(self, tmp_path):
        a = self._write(
            tmp_path / "a.json",
            {"cells": 42, "wall_seconds": 0.5},
        )
        b = self._write(
            tmp_path / "b.json",
            {"cells": 42, "wall_seconds": 0.9},
        )
        assert diff_json(a, b) is None

    def test_modeled_difference_is_reported_with_location(self, tmp_path):
        a = self._write(
            tmp_path / "a.json", {"runs": [{"sim_seconds": 1.0}]}
        )
        b = self._write(
            tmp_path / "b.json", {"runs": [{"sim_seconds": 2.0}]}
        )
        problem = diff_json(a, b)
        assert problem is not None
        assert "runs[0].sim_seconds" in problem

    def test_extra_key_is_reported(self, tmp_path):
        a = self._write(tmp_path / "a.json", {"cells": 1})
        b = self._write(tmp_path / "b.json", {"cells": 1, "extra": 2})
        problem = diff_json(a, b)
        assert problem is not None
        assert "extra" in problem


class TestDiffJsonl:
    def _write(self, path, docs):
        path.write_text("".join(json.dumps(d) + "\n" for d in docs))
        return str(path)

    def test_identical_modulo_wall_clock(self, tmp_path):
        a = self._write(
            tmp_path / "a.jsonl",
            [{"seq": 1, "wall_seconds": 0.1}, {"seq": 2}],
        )
        b = self._write(
            tmp_path / "b.jsonl",
            [{"seq": 1, "wall_seconds": 0.7}, {"seq": 2}],
        )
        assert diff_jsonl(a, b) is None

    def test_line_count_mismatch(self, tmp_path):
        a = self._write(tmp_path / "a.jsonl", [{"seq": 1}])
        b = self._write(tmp_path / "b.jsonl", [{"seq": 1}, {"seq": 2}])
        problem = diff_jsonl(a, b)
        assert problem is not None
        assert "line counts differ" in problem

    def test_divergent_line_is_located(self, tmp_path):
        a = self._write(tmp_path / "a.jsonl", [{"seq": 1}, {"op": "read"}])
        b = self._write(tmp_path / "b.jsonl", [{"seq": 1}, {"op": "write"}])
        problem = diff_jsonl(a, b)
        assert problem is not None
        assert problem.startswith("line 2")


class TestCli:
    def test_exit_zero_on_match(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"cells": 3, "wall_seconds": 0.2}')
        b.write_text('{"cells": 3, "wall_seconds": 0.4}')
        assert main([str(a), str(b)]) == 0
        assert "deterministic" in capsys.readouterr().out

    def test_exit_one_on_mismatch(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"cells": 3}')
        b.write_text('{"cells": 4}')
        assert main([str(a), str(b)]) == 1
        assert "NONDETERMINISM" in capsys.readouterr().err

    def test_jsonl_mode(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"seq": 1}\n')
        b.write_text('{"seq": 1}\n')
        assert main(["--jsonl", str(a), str(b)]) == 0

    def test_real_engine_artifacts_are_deterministic(self, tmp_path):
        """End to end: two smoke-shaped duels produce identical artifacts."""
        pytest.importorskip("repro.bench.harness")
        from repro.bench.harness import run_buc_td_duel
        from repro.bench.runner import write_bench_artifact

        for sub in ("one", "two"):
            (tmp_path / sub).mkdir()
            _, summary = run_buc_td_duel(n_facts=300)
            write_bench_artifact("duel", {"buc_td_duel": summary}, tmp_path / sub)
        assert (
            diff_json(
                str(tmp_path / "one" / "BENCH_duel.json"),
                str(tmp_path / "two" / "BENCH_duel.json"),
            )
            is None
        )
