"""Unit tests for the TimberDB facade."""

import pytest

from repro.errors import XmlParseError
from repro.timber.database import TimberDB
from repro.xmlmodel.parser import parse


class TestLoading:
    def test_load_text_and_document(self):
        db = TimberDB()
        first = db.load("<a><b/></a>", name="text")
        second = db.load(parse("<c/>"))
        assert (first, second) == (0, 1)
        assert db.document_count == 2

    def test_malformed_text_raises(self):
        db = TimberDB()
        with pytest.raises(XmlParseError):
            db.load("<a><b></a>")

    def test_load_many(self):
        db = TimberDB()
        assert db.load_many(["<a/>", "<b/>"]) == [0, 1]


class TestIndexing:
    def test_lazy_index_build(self):
        db = TimberDB()
        db.load("<a><b/><b/></a>")
        assert db.tag_cardinality("b") == 2

    def test_index_refresh_after_new_load(self):
        db = TimberDB()
        db.load("<a><b/></a>")
        assert db.tag_cardinality("b") == 1
        db.load("<a><b/></a>")
        assert db.tag_cardinality("b") == 2

    def test_postings_and_records(self):
        db = TimberDB()
        db.load("<a><b>hi</b></a>")
        posting = db.postings("b")[0]
        record = db.record_of(posting)
        assert record.text == "hi"

    def test_tags(self):
        db = TimberDB()
        db.load("<a><b/></a>")
        assert db.tags() == ["a", "b"]


class TestAccounting:
    def test_cold_cache_forces_rereads(self):
        db = TimberDB(buffer_pages=16)
        db.load("<a>" + "<b/>" * 50 + "</a>")
        db.build_index()
        db.reset_cost()
        db.postings("b")
        warm = db.cost.io.page_reads
        db.postings("b")
        still_warm = db.cost.io.page_reads
        db.cold_cache()
        db.postings("b")
        assert db.cost.io.page_reads > still_warm
        assert still_warm == warm  # warm rescan was free

    def test_reset_cost(self):
        db = TimberDB()
        db.load("<a/>")
        db.build_index()
        db.reset_cost()
        assert db.cost.simulated_seconds() == 0.0

    def test_stats_merge_store_and_cost(self):
        db = TimberDB()
        db.load("<a><b/></a>")
        stats = db.stats()
        assert stats["documents"] == 1
        assert "simulated_seconds" in stats

    def test_new_budget(self):
        db = TimberDB(memory_entries=123)
        budget = db.new_budget()
        assert budget.capacity_entries == 123
        assert db.new_budget(7).capacity_entries == 7
