"""Synthetic Treebank-style workload generator (paper Sec. 4).

The paper uses the UW Treebank dataset — deep, recursive, heterogeneous
parse trees of Wall Street Journal text — and *controls* the queries so
that the matching input trees exhibit a chosen summarizability regime
(coverage x disjointness) and cube density.  This generator produces the
controlled match population directly:

- each *fact* is a ``sentence`` element whose grouping axes are marked-up
  children ``m1..mk`` (the paper groups "a marked-up element by the value
  of the marked-up text under it");
- ``coverage=False`` makes axis elements optional *and* sometimes nests
  them under an intervening ``phrase`` wrapper, so the rigid pattern
  misses them but the PC-AD relaxed pattern recovers them — in this
  regime the axes therefore permit PC-AD, giving the lattice "one more
  degree of relaxation" exactly as the paper describes for its
  coverage-fails settings;
- ``disjoint=False`` duplicates axis elements with a second value;
- ``density`` sets per-axis value domains: a handful of values (dense
  cube) or a domain proportional to the fact count (sparse cube);
- recursion/depth filler (``np``/``vp``/``pp`` chains) mimics Treebank's
  depth profile so extraction walks realistic trees.

The generator *guarantees* the declared regime (it never violates a
property it promised to hold), matching the paper's controlled inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.core.aggregates import AggregateSpec
from repro.core.axes import AxisSpec
from repro.core.query import X3Query
from repro.patterns.relaxation import Relaxation
from repro.xmlmodel.nodes import Document, Element

FILLER_TAGS = ("np", "vp", "pp", "adjp", "sbar")


@dataclass(frozen=True)
class TreebankConfig:
    """Knobs of one controlled Treebank workload.

    Attributes:
        n_facts: matching input trees (the paper sweeps 10^4-10^6; the
            pure-Python default scale is lower, shapes are preserved).
        n_axes: grouping axes (the figures sweep 2-7).
        density: ``"sparse"`` or ``"dense"``.
        coverage: whether total coverage holds.
        disjoint: whether disjointness holds.
        seed: RNG seed (generation is fully deterministic).
        p_missing: probability an axis element is absent entirely
            (only when ``coverage`` is False).
        p_nested: probability an axis element hides under a wrapper
            (only when ``coverage`` is False; rigid misses, PC-AD finds).
        p_repeat: probability an axis carries two values
            (only when ``disjoint`` is False).
        filler_depth: extra recursive depth per fact.
    """

    n_facts: int = 1000
    n_axes: int = 3
    density: str = "sparse"
    coverage: bool = True
    disjoint: bool = True
    seed: int = 42
    p_missing: float = 0.15
    p_nested: float = 0.15
    p_repeat: float = 0.25
    filler_depth: int = 3

    def __post_init__(self) -> None:
        if self.density not in ("sparse", "dense"):
            raise ValueError(f"density must be sparse|dense: {self.density}")
        if not 2 <= self.n_axes <= 12:
            raise ValueError("n_axes must be within 2..12")

    def domain_size(self) -> int:
        if self.density == "dense":
            return 4
        return max(8, self.n_facts // 3)


def axis_tags(config: TreebankConfig) -> List[str]:
    return [f"m{index + 1}" for index in range(config.n_axes)]


def generate_treebank(config: TreebankConfig) -> Document:
    """Generate the controlled match population as one document."""
    rng = random.Random(config.seed)
    root = Element("treebank")
    domain = config.domain_size()
    for fact_number in range(config.n_facts):
        sentence = root.make_child(
            "sentence", attrs={"id": str(fact_number)}
        )
        _add_filler(sentence, rng, config.filler_depth)
        for tag in axis_tags(config):
            values = [_value(rng, tag, domain)]
            if not config.disjoint and rng.random() < config.p_repeat:
                values.append(_value(rng, tag, domain))
            if not config.coverage and rng.random() < config.p_missing:
                continue  # the axis is absent: coverage gap
            nest = (
                not config.coverage and rng.random() < config.p_nested
            )
            holder = (
                sentence.make_child("phrase") if nest else sentence
            )
            for value in values:
                holder.make_child(tag, text=value)
    return Document(root, name=f"treebank-{config.density}-{config.seed}")


def _value(rng: random.Random, tag: str, domain: int) -> str:
    return f"{tag}v{rng.randrange(domain)}"


def _add_filler(node: Element, rng: random.Random, depth: int) -> None:
    cursor = node
    for _ in range(rng.randrange(depth + 1)):
        cursor = cursor.make_child(rng.choice(FILLER_TAGS))
    cursor.make_child("w", text="tok")


def treebank_query(config: TreebankConfig) -> X3Query:
    """The cube query matching the generated data.

    Coverage-fails settings permit PC-AD per axis (the extra relaxation
    degree); coverage-holds settings are LND-only, mirroring the paper's
    "one step less" remark in Sec. 4.2.
    """
    if config.coverage:
        permitted = frozenset({Relaxation.LND})
    else:
        permitted = frozenset({Relaxation.LND, Relaxation.PC_AD})
    axes = tuple(
        AxisSpec.from_path(f"$m{index + 1}", tag, permitted)
        for index, tag in enumerate(axis_tags(config))
    )
    return X3Query(
        fact_tag="sentence",
        axes=axes,
        aggregate=AggregateSpec("COUNT"),
        fact_id_path="@id",
        document="treebank.xml",
    )
