"""Parser for an XML Schema (XSD) subset, mapped onto the DTD model.

Sec. 3.7: "In many cases, XML data comes with a schema (DTD or XML
Schema).  The lattice properties are thus inferrable from the knowledge
of schema that is available."  The property reasoning only needs child
cardinalities and attribute requiredness, so an XSD is reduced to the
same :class:`~repro.schema.dtd.Dtd` model the DTD parser produces.

Supported subset::

    <xs:schema xmlns:xs="...">
      <xs:element name="publication">
        <xs:complexType>
          <xs:sequence>
            <xs:element ref="author" minOccurs="0" maxOccurs="unbounded"/>
            <xs:element name="year" type="xs:string"/>
            <xs:choice> ... </xs:choice>
          </xs:sequence>
          <xs:attribute name="id" use="required"/>
        </xs:complexType>
      </xs:element>
      ...
    </xs:schema>

Cardinalities come from ``minOccurs``/``maxOccurs`` (defaults 1/1);
members of an ``xs:choice`` are at least optional; nested element
declarations are registered globally (the property reasoning keys on
tag names, like the DTD model).  Simple-typed elements
(``type="xs:..."`` or an ``xs:simpleType`` child) are marked as text.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemaError
from repro.schema.dtd import AttributeDecl, Cardinality, Dtd, ElementDecl
from repro.xmlmodel.nodes import Document, Element
from repro.xmlmodel.parser import parse


def _local(tag: str) -> str:
    return tag.rsplit(":", 1)[-1]


def _cardinality(min_occurs: str, max_occurs: str) -> Cardinality:
    try:
        minimum = int(min_occurs)
    except ValueError as error:
        raise SchemaError(f"bad minOccurs {min_occurs!r}") from error
    if max_occurs == "unbounded":
        maximum = None
    else:
        try:
            maximum = int(max_occurs)
        except ValueError as error:
            raise SchemaError(f"bad maxOccurs {max_occurs!r}") from error
    absent = minimum == 0
    repeat = maximum is None or maximum > 1
    if absent and repeat:
        return Cardinality.STAR
    if absent:
        return Cardinality.OPTIONAL
    if repeat:
        return Cardinality.PLUS
    return Cardinality.ONE


def parse_xsd(text: str, root: str = "") -> Dtd:
    """Parse XSD text into a :class:`Dtd`."""
    doc: Document = parse(text)
    if _local(doc.root.tag) != "schema":
        raise SchemaError("not an XML Schema document (no xs:schema root)")
    dtd = Dtd(root=root or None)
    top_level: Optional[str] = None
    for child in doc.root.children:
        if _local(child.tag) == "element":
            name = _register_element(dtd, child)
            if top_level is None:
                top_level = name
    if not dtd.tags:
        raise SchemaError("the schema declares no elements")
    # Nested declarations register before their parents; the schema's
    # root is the first *top-level* element unless overridden.
    dtd.root = root or top_level
    return dtd


def _register_element(dtd: Dtd, element_el: Element) -> str:
    """Register one xs:element (returns the tag name)."""
    name = element_el.attrs.get("name") or element_el.attrs.get("ref")
    if not name:
        raise SchemaError("xs:element needs a name or ref")
    name = _local(name)
    if "ref" in element_el.attrs and "name" not in element_el.attrs:
        return name  # reference only; declaration lives elsewhere
    decl = dtd.get(name) or ElementDecl(name)
    type_attr = element_el.attrs.get("type", "")
    if type_attr.startswith("xs:") or type_attr.startswith("xsd:"):
        decl.has_text = True
    for child in element_el.children:
        local = _local(child.tag)
        if local == "complexType":
            _walk_complex_type(dtd, decl, child, in_choice=False)
        elif local == "simpleType":
            decl.has_text = True
    dtd.declare(decl)
    return name


def _walk_complex_type(
    dtd: Dtd, decl: ElementDecl, node: Element, in_choice: bool
) -> None:
    for child in node.children:
        local = _local(child.tag)
        if local in ("sequence", "all"):
            _walk_complex_type(dtd, decl, child, in_choice)
        elif local == "choice":
            group_card = _cardinality(
                child.attrs.get("minOccurs", "1"),
                child.attrs.get("maxOccurs", "1"),
            )
            _walk_complex_type(
                dtd, decl, child, in_choice=True
            )
            if group_card.may_repeat:
                # A repeated choice lets every member repeat.
                for tag in list(decl.children):
                    decl.children[tag] = Cardinality.join(
                        decl.children[tag], Cardinality.STAR
                    )
        elif local == "element":
            tag = _register_element(dtd, child)
            card = _cardinality(
                child.attrs.get("minOccurs", "1"),
                child.attrs.get("maxOccurs", "1"),
            )
            if in_choice:
                card = Cardinality.join(card, Cardinality.OPTIONAL)
            existing = decl.children.get(tag)
            if existing is None:
                decl.children[tag] = card
            else:
                decl.children[tag] = Cardinality.join(
                    Cardinality.join(existing, card), Cardinality.PLUS
                )
        elif local == "attribute":
            attr_name = child.attrs.get("name")
            if attr_name:
                decl.attributes[attr_name] = AttributeDecl(
                    attr_name,
                    required=child.attrs.get("use") == "required",
                )
        elif local == "simpleContent":
            decl.has_text = True
            _walk_complex_type(dtd, decl, child, in_choice)
        elif local == "extension":
            _walk_complex_type(dtd, decl, child, in_choice)
