"""One experiment definition per figure of the paper (Figs. 4-10).

Every spec records the paper's setting and the workload that reproduces
it; :func:`run_figure` executes the sweep and returns the series the
paper plots (algorithm -> [(x, simulated seconds)]).

Scale note: the paper runs 10^4-10^6 matching trees on a 2007 disk-bound
C++ system; this pure-Python reproduction defaults to a few hundred to a
few thousand facts.  The *shapes* (winner ordering, crossovers, blow-ups)
are scale-free here because they are driven by lattice size, cube
density and the summarizability regime, all of which are preserved.  Use
``scale`` to grow the fact count and ``axes`` to extend the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import AlgorithmRun, run_config
from repro.datagen.workload import WorkloadConfig

Series = Dict[str, List[Tuple[int, float]]]

DEFAULT_AXES: Tuple[int, ...] = (2, 3, 4, 5, 6)
DEFAULT_MEMORY_ENTRIES = 4000
"""Operator memory: sized so COUNTER starts multi-pass thrashing at high
axis counts, like the paper's 2 GB Windows process limit did."""


@dataclass(frozen=True)
class FigureSpec:
    """A paper figure and the workload sweep that regenerates it."""

    figure_id: str
    title: str
    kind: str  # "treebank" | "dblp"
    density: str
    coverage: bool
    disjoint: bool
    algorithms: Tuple[str, ...]
    base_facts: int
    axes: Tuple[int, ...] = DEFAULT_AXES
    expected_shape: str = ""
    memory_entries: int = DEFAULT_MEMORY_ENTRIES
    #: Each algorithm is timed once per encoding; the duel figures race
    #: the legacy dict kernels against the columnar ones.
    encodings: Tuple[str, ...] = ("auto",)

    def configs(self, scale: float = 1.0) -> List[WorkloadConfig]:
        n_facts = max(50, int(self.base_facts * scale))
        if self.kind == "dblp":
            return [
                WorkloadConfig(kind="dblp", n_facts=n_facts, n_axes=4)
            ]
        return [
            WorkloadConfig(
                kind="treebank",
                n_facts=n_facts,
                n_axes=n_axes,
                density=self.density,
                coverage=self.coverage,
                disjoint=self.disjoint,
            )
            for n_axes in self.axes
        ]


FIGURES: Dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec(
            figure_id="fig4",
            title="Sparse cubes, 10^4 trees; coverage fails, disjointness holds",
            kind="treebank",
            density="sparse",
            coverage=False,
            disjoint=True,
            algorithms=("COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"),
            base_facts=200,
            expected_shape=(
                "BUC family lowest and flattest; TD/TDOPT blow up with the"
                " exponential number of sorts; COUNTER fine until thrash"
            ),
        ),
        FigureSpec(
            figure_id="fig5",
            title="Sparse cubes, 10^5 trees; coverage fails, disjointness holds",
            kind="treebank",
            density="sparse",
            coverage=False,
            disjoint=True,
            algorithms=("COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"),
            base_facts=800,
            expected_shape=(
                "same ordering as fig4 at ~4x the scale; optimized variants"
                " gain more at larger scale"
            ),
        ),
        FigureSpec(
            figure_id="fig6",
            title="Dense cubes, 10^5 trees; coverage fails, disjointness holds",
            kind="treebank",
            density="dense",
            coverage=False,
            disjoint=True,
            algorithms=("COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"),
            base_facts=800,
            expected_shape=(
                "COUNTER/TD/TDOPT blow up at high axes (the paper's DNF at"
                " 7); BUC family survives"
            ),
        ),
        FigureSpec(
            figure_id="fig7",
            title="Sparse cubes, 10^5 trees; coverage and disjointness hold",
            kind="treebank",
            density="sparse",
            coverage=True,
            disjoint=True,
            algorithms=("COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"),
            base_facts=800,
            expected_shape="bottom-up best for sparse, like the relational case",
        ),
        FigureSpec(
            figure_id="fig8",
            title="Dense cubes, 10^5 trees; coverage and disjointness hold",
            kind="treebank",
            density="dense",
            coverage=True,
            disjoint=True,
            algorithms=("COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"),
            base_facts=800,
            expected_shape="top-down (TDOPTALL) best for dense cubes",
        ),
        FigureSpec(
            figure_id="fig9",
            title=(
                "Dense cubes, 10^5 trees; neither property holds "
                "(optimized variants timed although incorrect)"
            ),
            kind="treebank",
            density="dense",
            coverage=False,
            disjoint=False,
            algorithms=(
                "COUNTER", "BUC", "BUCOPT", "TD", "TDOPT", "TDOPTALL",
            ),
            base_facts=800,
            expected_shape=(
                "BUCOPT/TDOPT give little benefit despite wrong results;"
                " TDOPTALL very fast (and wrong); COUNTER comparable at low"
                " dimensions then melts down"
            ),
        ),
        FigureSpec(
            figure_id="fig10",
            title=(
                "DBLP: cube article by /author, /month, /year, /journal"
                " (bar chart, all algorithms)"
            ),
            kind="dblp",
            density="dense",
            coverage=False,
            disjoint=False,
            algorithms=(
                "COUNTER",
                "BUC",
                "BUCOPT",
                "BUCCUST",
                "TD",
                "TDOPT",
                "TDOPTALL",
                "TDCUST",
            ),
            base_facts=2000,
            axes=(4,),
            memory_entries=30_000,
            expected_shape=(
                "COUNTER wins (dense, 4 dims); BUCCUST between BUCOPT and"
                " BUC while correct; TDCUST a little better than TD but"
                " below TDOPT/TDOPTALL (both incorrect here)"
            ),
        ),
        FigureSpec(
            figure_id="figC",
            title=(
                "Columnar duel: COUNTER vs COLUMNAR at 10^5 facts"
                " (dense, both properties hold)"
            ),
            kind="treebank",
            density="dense",
            coverage=True,
            disjoint=True,
            algorithms=("COUNTER", "COLUMNAR"),
            base_facts=100_000,
            axes=(3,),
            memory_entries=50_000,
            expected_shape=(
                "COLUMNAR >=5x below COUNTER in modeled and wall time:"
                " dictionary compression packs ~8x more entries per page"
                " and the vectorized sweep folds 8 rows per modeled op"
            ),
        ),
        FigureSpec(
            figure_id="figD",
            title=(
                "BUC/TD kernel duel: dict vs columnar encoding at 10^5"
                " facts (dense, both properties hold)"
            ),
            kind="treebank",
            density="dense",
            coverage=True,
            disjoint=True,
            algorithms=("BUC", "TD"),
            base_facts=100_000,
            axes=(3,),
            memory_entries=50_000,
            encodings=("dict", "auto"),
            expected_shape=(
                "each algorithm's columnar run >=2x below its dict run:"
                " BUC partitions by code-range slicing with vectorized"
                " gathers instead of re-bucketing FactRow lists, TD"
                " replaces per-point placement sorts with linear"
                " counting folds over integer group ids"
            ),
        ),
    )
}


def run_figure(
    figure_id: str,
    scale: float = 1.0,
    axes: Optional[Sequence[int]] = None,
    memory_entries: Optional[int] = None,
    validate: bool = False,
    workers: int = 1,
    engine: str = "auto",
) -> Tuple[FigureSpec, List[AlgorithmRun]]:
    """Run one figure's sweep; returns the spec and all runs.

    ``memory_entries=None`` uses the figure's own budget (Fig. 10 gets a
    pool that fits its dense low-dimensional cube, as the paper's did).
    ``workers``/``engine`` route every run through the parallel engine.
    """
    spec = FIGURES[figure_id]
    if memory_entries is None:
        memory_entries = spec.memory_entries
    runs: List[AlgorithmRun] = []
    configs = spec.configs(scale=scale)
    if axes is not None and spec.kind != "dblp":
        wanted = set(axes)
        configs = [config for config in configs if config.n_axes in wanted]
    for config in configs:
        runs.extend(
            run_config(
                config,
                spec.algorithms,
                memory_entries=memory_entries,
                validate=validate,
                workers=workers,
                engine=engine,
                encodings=spec.encodings,
            )
        )
    return spec, runs


def series_of(runs: List[AlgorithmRun]) -> Series:
    """Pivot runs into algorithm -> [(n_axes, simulated seconds)].

    Runs pinned to a non-default encoding get their own series
    (``BUC[dict]``) so a duel figure keeps both kernels visible.
    """
    series: Series = {}
    for run in runs:
        name = (
            run.algorithm
            if run.encoding == "auto"
            else f"{run.algorithm}[{run.encoding}]"
        )
        series.setdefault(name, []).append(
            (run.n_axes, run.simulated_seconds)
        )
    for points in series.values():
        points.sort()
    return series
