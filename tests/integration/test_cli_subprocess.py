"""End-to-end CLI tests through real subprocesses (the installed
console-script entry points, exercised as a user would)."""

import subprocess
import sys

import pytest

from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.xmlmodel.serializer import serialize


def run_module(module, *args):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


class TestX3CubeProcess:
    def test_basic_run(self, inputs):
        query, data = inputs
        proc = run_module("repro.cli", "--query", query, data)
        assert proc.returncode == 0, proc.stderr
        assert "4 facts, 30 cuboids" in proc.stdout

    def test_error_exit_code(self, inputs, tmp_path):
        query, _ = inputs
        broken = tmp_path / "broken.xml"
        broken.write_text("<a><b></a>")
        proc = run_module("repro.cli", "--query", query, str(broken))
        assert proc.returncode == 1
        assert "error:" in proc.stderr


class TestX3BenchProcess:
    def test_single_figure(self):
        proc = run_module(
            "repro.bench.runner",
            "--figure", "fig4", "--scale", "0.25", "--axes", "2",
        )
        assert proc.returncode == 0, proc.stderr
        assert "fig4" in proc.stdout

    def test_no_args_usage(self):
        proc = run_module("repro.bench.runner")
        assert proc.returncode == 2
        assert "usage" in proc.stdout
