"""Unit tests for the x3-serve CLI."""

import json

import pytest

from repro.datagen.publications import QUERY1_TEXT, figure1_document
from repro.serve.cli import main
from repro.xmlmodel.serializer import serialize


@pytest.fixture()
def inputs(tmp_path):
    query_path = tmp_path / "query.xq"
    query_path.write_text(QUERY1_TEXT)
    data_path = tmp_path / "data.xml"
    data_path.write_text(serialize(figure1_document()))
    return str(query_path), str(data_path)


class TestReplay:
    def test_default_replay(self, inputs, capsys):
        query, data = inputs
        assert main(["--query", query, data, "--requests", "50"]) == 0
        out = capsys.readouterr().out
        assert "4 facts, 30 cuboids" in out
        assert "50 requests" in out
        assert "hit rate" in out
        assert "tiers: cache=" in out

    def test_replay_is_deterministic(self, inputs, capsys):
        query, data = inputs
        args = ["--query", query, data, "--requests", "40", "--seed", "3"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_tiny_cache_recomputes_more(self, inputs, capsys):
        query, data = inputs
        assert (
            main(
                [
                    "--query", query, data,
                    "--requests", "40", "--cache-cells", "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache=0," in out.split("tiers: ")[1]

    def test_views_and_warm(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--requests", "30", "--view-cells", "40", "--warm",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed" in out
        assert "views" in out


class TestCuboidMode:
    def test_prints_requested_cuboid(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "--query", query, data,
                "--cuboid", "$n:LND, $p:LND, $y:rigid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(2003): 2" in out

    def test_unknown_cuboid(self, inputs, capsys):
        query, data = inputs
        assert (
            main(["--query", query, data, "--cuboid", "$n:warp"]) == 1
        )
        assert "error:" in capsys.readouterr().err


class TestProfile:
    def test_profile_summary_and_trace(self, inputs, tmp_path, capsys):
        query, data = inputs
        target = tmp_path / "trace.json"
        code = main(
            [
                "--query", query, data, "--requests", "10",
                "--profile", "--trace-out", str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile (top spans by wall time):" in out
        assert "serve.request" in out
        document = json.loads(target.read_text())
        assert any(
            event["ph"] == "X" and event["name"] == "serve.request"
            for event in document["traceEvents"]
        )

    def test_trace_out_requires_profile(self, inputs, capsys):
        query, data = inputs
        code = main(
            ["--query", query, data, "--trace-out", "/tmp/never.json"]
        )
        assert code == 1
        assert "--profile" in capsys.readouterr().err


class TestErrors:
    def test_missing_query_file(self, inputs, capsys):
        _, data = inputs
        assert main(["--query", "/nope/query.xq", data]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_xml(self, tmp_path, inputs, capsys):
        query, _ = inputs
        broken = tmp_path / "broken.xml"
        broken.write_text("<a><b></a>")
        assert main(["--query", query, str(broken)]) == 1

    def test_unknown_algorithm(self, inputs, capsys):
        query, data = inputs
        assert (
            main(["--query", query, data, "--algorithm", "WARP"]) == 1
        )


class TestEventLogExport:
    def test_log_jsonl_writes_one_line_per_request(
        self, inputs, tmp_path, capsys
    ):
        query, data = inputs
        target = tmp_path / "events.jsonl"
        code = main(
            [
                "--query", query, data, "--requests", "25",
                "--log-jsonl", str(target),
            ]
        )
        assert code == 0
        assert f"wrote 25 events to {target}" in capsys.readouterr().out
        lines = target.read_text().splitlines()
        assert len(lines) == 25
        events = [json.loads(line) for line in lines]
        assert [event["seq"] for event in events] == list(range(25))
        assert all(event["type"] == "request" for event in events)
        assert all(len(event["rungs"]) == 5 for event in events)


class TestProfileRungBreakdown:
    def test_profile_prints_rung_table(self, inputs, capsys):
        query, data = inputs
        code = main(
            ["--query", query, data, "--requests", "20", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rungs (from the request log):" in out
        breakdown = out.split("rungs (from the request log):")[1]
        assert "cache" in breakdown
        assert "recompute" in breakdown
        assert "modeled_s" in breakdown


class TestExplainSubcommand:
    def test_explain_single_cuboid(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "explain", "--query", query, data,
                "--cuboid", "$n:LND, $p:LND, $y:rigid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "explain cuboid $n:LND, $p:LND, $y:rigid" in out
        assert "-> recompute" in out
        assert "1. cache       x not resident" in out
        assert "DESIGN.md Sec. 5c" in out

    def test_explain_replay_verify_agrees(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "explain", "--query", query, data,
                "--requests", "100", "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified 100 queries: 100 agree, 0 mismatch" in out
        assert "MISMATCH" not in out

    def test_explain_warm_sees_cache(self, inputs, capsys):
        query, data = inputs
        code = main(
            [
                "explain", "--query", query, data, "--warm",
                "--cuboid", "$n:rigid, $p:rigid, $y:rigid",
            ]
        )
        assert code == 0
        assert "-> cache" in capsys.readouterr().out

    def test_explain_unknown_cuboid(self, inputs, capsys):
        query, data = inputs
        code = main(
            ["explain", "--query", query, data, "--cuboid", "$n:warp"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_missing_query_file(self, inputs, capsys):
        _, data = inputs
        code = main(["explain", "--query", "/nope/query.xq", data])
        assert code == 1
        assert "error:" in capsys.readouterr().err
