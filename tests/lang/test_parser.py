"""Unit tests for the X^3QL recursive-descent parser."""

import pytest

from repro.datagen.publications import QUERY1_TEXT
from repro.errors import QueryParseError
from repro.lang.ast import (
    Assignment,
    AxisBinding,
    NavStatement,
    PathExpr,
    Predicate,
    X3Statement,
    pretty,
)
from repro.lang.parser import parse_statement, parse_statements


class TestFlwor:
    def test_query1(self):
        statement = parse_statement(QUERY1_TEXT)
        assert isinstance(statement, X3Statement)
        assert statement.document == "book.xml"
        assert statement.fact_tag == "publication"
        assert statement.fact_var == "$b"
        assert [b.var for b in statement.bindings] == ["$n", "$p", "$y"]
        assert statement.bindings[0] == AxisBinding(
            "$n", "$b", "author/name"
        )
        assert statement.measure == PathExpr("$b", "@id")
        assert statement.by[0].var == "$n"
        assert statement.aggregate == "COUNT"
        assert statement.aggregate_arg == PathExpr("$b", "")

    def test_relaxations_uppercased(self):
        text = (
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b/@id by $n (lnd, sp, pc-ad) return COUNT()."
        )
        statement = parse_statement(text)
        assert statement.by[0].relaxations == ("LND", "SP", "PC-AD")

    def test_descendant_step_preserved(self):
        text = (
            'for $b in doc("d.xml")//f, $n in $b//a/b '
            "X^3 $b by $n (LND) return COUNT()."
        )
        statement = parse_statement(text)
        assert statement.bindings[0].path == "//a/b"
        assert statement.measure.path == ""

    def test_aggregate_argument(self):
        text = (
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b/@id by $n (LND) return SUM($b/price)."
        )
        statement = parse_statement(text)
        assert statement.aggregate == "SUM"
        assert statement.aggregate_arg == PathExpr("$b", "price")

    def test_trailing_dot_optional(self):
        base = (
            'for $b in doc("d.xml")//f, $n in $b/a '
            "X^3 $b by $n (LND) return COUNT()"
        )
        assert parse_statement(base) == parse_statement(base + ".")

    def test_first_binding_must_be_doc(self):
        with pytest.raises(QueryParseError, match="doc"):
            parse_statement(
                "for $b in $x/f X^3 $b by $b (LND) return COUNT()."
            )

    def test_unfinished_flwor_is_incomplete(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_statement('for $b in doc("d.xml")//f, $n in $b/a')
        assert excinfo.value.incomplete

    def test_x3_operator_spellings(self):
        tail = " $b by $n (LND) return COUNT()."
        head = 'for $b in doc("d.xml")//f, $n in $b/a '
        reference = parse_statement(head + "X^3" + tail)
        for glyph in ("X~3", 'X"3', "X3", "x3"):
            assert parse_statement(head + glyph + tail) == reference


class TestNav:
    def test_rollup(self):
        statement = parse_statement("ROLLUP pubs BY n:detail, y:all")
        assert statement == NavStatement(
            verb="ROLLUP",
            cube="pubs",
            group_by=(
                Assignment("n", "detail"),
                Assignment("y", "all"),
            ),
        )

    def test_keywords_case_insensitive(self):
        lowered = parse_statement("rollup pubs by n:detail")
        assert lowered.verb == "ROLLUP"
        assert lowered == parse_statement("ROLLUP pubs BY n:detail")

    def test_drilldown(self):
        statement = parse_statement("DRILLDOWN pubs ON n BY y:detail")
        assert statement.verb == "DRILLDOWN"
        assert statement.axis == "n"

    def test_slice(self):
        statement = parse_statement("SLICE pubs ON y = '2003'")
        assert statement.axis == "y"
        assert statement.value == "2003"

    def test_dice(self):
        statement = parse_statement(
            "DICE pubs WHERE y IN ('2003', '2004') AND n = 'John'"
        )
        assert statement.where == (
            Predicate("y", ("2003", "2004")),
            Predicate("n", ("John",)),
        )

    def test_cell_with_null_key(self):
        statement = parse_statement("CELL pubs KEY ('John', NULL)")
        assert statement.key == ("John", None)

    def test_explain_prefix(self):
        statement = parse_statement("EXPLAIN ROLLUP pubs BY n:detail")
        assert statement.explain
        assert statement.verb == "ROLLUP"

    def test_at_version_vector(self):
        statement = parse_statement("ROLLUP pubs AT VERSION 3, 1, 4")
        assert statement.at_version == (3, 1, 4)

    def test_within_units(self):
        assert (
            parse_statement("ROLLUP pubs WITHIN 50ms").within_seconds
            == 0.05
        )
        assert (
            parse_statement("ROLLUP pubs WITHIN 2s").within_seconds
            == 2.0
        )
        # No unit means seconds.
        assert (
            parse_statement("ROLLUP pubs WITHIN 0.5").within_seconds
            == 0.5
        )

    def test_within_unknown_unit(self):
        with pytest.raises(QueryParseError, match="duration unit"):
            parse_statement("ROLLUP pubs WITHIN 5 fortnights")

    def test_unitless_within_then_clause(self):
        statement = parse_statement(
            "ROLLUP pubs WITHIN 0.5 MEASURE count"
        )
        assert statement.within_seconds == 0.5
        assert statement.measure == "COUNT"

    def test_measure_uppercased(self):
        assert (
            parse_statement("ROLLUP pubs MEASURE count").measure
            == "COUNT"
        )

    def test_quoted_level(self):
        statement = parse_statement("ROLLUP pubs BY y:'SP+PC-AD'")
        assert statement.group_by == (Assignment("y", "SP+PC-AD"),)

    def test_assignment_accepts_equals(self):
        assert parse_statement(
            "ROLLUP pubs BY n = detail"
        ) == parse_statement("ROLLUP pubs BY n:detail")

    def test_duplicate_clause_rejected(self):
        with pytest.raises(QueryParseError, match="duplicate BY"):
            parse_statement("ROLLUP pubs BY n:detail BY y:detail")

    def test_version_must_be_integer(self):
        with pytest.raises(QueryParseError, match="integer"):
            parse_statement("ROLLUP pubs AT VERSION 1.5")

    def test_slice_requires_value(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_statement("SLICE pubs ON y")
        assert excinfo.value.incomplete

    def test_cell_requires_key(self):
        with pytest.raises(QueryParseError, match="KEY"):
            parse_statement("CELL pubs BY n:detail")


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(QueryParseError, match="empty"):
            parse_statement("   -- just a comment")

    def test_unknown_verb_names_the_alternatives(self):
        with pytest.raises(QueryParseError, match="ROLLUP"):
            parse_statement("FROBNICATE pubs")

    def test_error_carries_position(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_statement("ROLLUP pubs BY :detail")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 16
        assert "line 1" in str(excinfo.value)

    def test_trailing_garbage(self):
        with pytest.raises(QueryParseError, match="after the statement"):
            parse_statement("ROLLUP pubs BY n:detail; extra")

    def test_garbage_clause(self):
        with pytest.raises(QueryParseError, match="expected a clause"):
            parse_statement("ROLLUP pubs BY n:detail ROLLUP")

    def test_complete_statement_is_not_incomplete(self):
        with pytest.raises(QueryParseError) as excinfo:
            parse_statement("ROLLUP pubs nonsense here")
        assert not excinfo.value.incomplete


class TestScripts:
    def test_semicolon_separated(self):
        statements = parse_statements(
            "ROLLUP pubs; SLICE pubs ON y = '2003';"
        )
        assert [s.verb for s in statements] == ["ROLLUP", "SLICE"]

    def test_empty_script(self):
        assert parse_statements(" ; ; -- nothing") == []

    def test_trailing_semicolon_on_single(self):
        statement = parse_statement("ROLLUP pubs;")
        assert statement.verb == "ROLLUP"

    def test_missing_separator(self):
        with pytest.raises(QueryParseError, match="';'"):
            parse_statements(
                'for $b in doc("d.xml")//f, $n in $b/a '
                "X^3 $b by $n (LND) return COUNT(). ROLLUP pubs"
            )


class TestRoundTrip:
    CASES = [
        "ROLLUP pubs",
        "ROLLUP pubs BY n:detail, y:SP",
        "DRILLDOWN pubs ON n BY y:detail",
        "SLICE pubs ON y = '2003' BY n:detail",
        "DICE pubs BY n:detail WHERE y IN ('2003', '2004')",
        "CELL pubs KEY ('John', NULL) BY n:detail, y:detail",
        "EXPLAIN ROLLUP pubs BY n:detail AT VERSION 0, 1 "
        "WITHIN 0.05s MEASURE COUNT",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_nav_round_trip(self, text):
        statement = parse_statement(text)
        assert pretty(statement) == text
        assert parse_statement(pretty(statement)) == statement

    def test_query1_round_trip(self):
        statement = parse_statement(QUERY1_TEXT)
        assert parse_statement(pretty(statement)) == statement

    def test_positions_do_not_affect_equality(self):
        a = parse_statement("ROLLUP pubs BY n:detail")
        b = parse_statement("ROLLUP\n    pubs\n    BY n:detail")
        assert a == b
        assert a.pos != b.pos or a.group_by[0].pos != b.group_by[0].pos
