"""The engine proper: partition, dispatch, run, merge.

``execute`` is what :func:`repro.core.cube.compute_cube` calls.  One
worker (or a one-point lattice) takes the deterministic serial path —
the registered algorithm runs exactly as it always has, so serial results
and costs are bit-identical to the pre-engine code.  More workers fan the
partitions out over ``concurrent.futures`` pools:

- ``thread``: cheap dispatch, shared memory; the GIL serializes pure
  Python, so wall-clock gains need multiple cores mostly for the I/O-ish
  parts — but the *modeled* speedup (cost-model critical path) is exact
  either way.
- ``process``: true parallelism at the price of forking and pickling the
  fact table once per worker; wins for CPU-bound cubes on multi-core
  hosts.  Falls back to threads (with a ``RuntimeWarning``) where the
  host cannot create worker processes.

Every partition is an ordinary ``algorithm.run(points=...)`` call, so any
registered algorithm — including AUTO's delegation — parallelizes without
knowing about the engine.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.bindings import FactTable
from repro.core.cube import CubeResult, ExecutionOptions
from repro.core.engine.merge import (
    PartitionOutcome,
    merge_costs,
    merge_cuboids,
    merge_passes,
    merged_algorithm_name,
)
from repro.core.engine.metrics import EngineMetrics, PartitionStats
from repro.core.engine.partition import Partition, partition_points
from repro.core.lattice import LatticePoint
from repro.core.lattice_graph import partition_cut_edges
from repro.core.properties import PropertyOracle

PARTITIONS_PER_WORKER = 2
"""Oversubscription factor: more partitions than workers lets the pool
rebalance when partitions turn out unequal."""


def _worker_id() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def _run_partition(
    table: FactTable,
    partition_index: int,
    algorithm: str,
    oracle: Optional[PropertyOracle],
    memory_entries: Optional[int],
    min_support: float,
    points: Tuple[LatticePoint, ...],
    submitted_at: float,
) -> PartitionOutcome:
    """One partition, run by whichever worker picks it up.

    Module-level so process pools can pickle it; clocks use
    ``time.monotonic`` (system-wide on Linux) so queue wait is comparable
    across processes.  A *fresh* algorithm instance per partition: the
    registry's singletons keep per-run state on ``self``, which thread
    pools would race on.
    """
    from repro.core.algorithms.registry import new_instance

    started = time.monotonic()
    result = new_instance(algorithm).run(
        table,
        oracle=oracle,
        memory_entries=memory_entries,
        points=list(points),
        min_support=min_support,
    )
    finished = time.monotonic()
    return PartitionOutcome(
        index=partition_index,
        points=len(points),
        cuboids=result.cuboids,
        cost=result.cost.as_dict(),
        passes=result.passes,
        algorithm=result.algorithm,
        worker=_worker_id(),
        queue_wait_seconds=max(0.0, started - submitted_at),
        wall_seconds=finished - started,
    )


def _serial_result(
    table: FactTable,
    options: ExecutionOptions,
    points: List[LatticePoint],
    total_begin: float,
) -> CubeResult:
    """The deterministic fallback: one direct algorithm run."""
    from repro.core.algorithms.registry import get_algorithm

    result = get_algorithm(options.algorithm).run(
        table,
        oracle=options.oracle,
        memory_entries=options.memory_entries,
        points=points,
        min_support=options.min_support,
    )
    wall = time.perf_counter() - total_begin
    result.metrics = EngineMetrics(
        engine="serial",
        strategy=options.partition_strategy,
        requested_workers=options.workers,
        workers_used=1,
        partitions=(
            PartitionStats(
                index=0,
                points=len(points),
                weight=float(len(points)),
                worker="serial",
                queue_wait_seconds=0.0,
                wall_seconds=result.cost.wall_seconds,
                simulated_seconds=result.cost.simulated_seconds,
            ),
        ),
        cut_edges=0,
        partition_seconds=0.0,
        merge_seconds=0.0,
        total_wall_seconds=wall,
    )
    return result


def _make_pool(engine: str, max_workers: int) -> Executor:
    if engine == "process":
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
            # Surface broken multiprocessing (sandboxes without /dev/shm,
            # missing sem_open) now, not at first submit.
            pool.submit(os.getpid).result()
            return pool
        except (OSError, PermissionError, RuntimeError) as error:
            warnings.warn(
                f"process pool unavailable ({error}); falling back to "
                f"threads",
                RuntimeWarning,
                stacklevel=3,
            )
    return ThreadPoolExecutor(
        max_workers=max_workers, thread_name_prefix="x3-engine"
    )


def execute(table: FactTable, options: ExecutionOptions) -> CubeResult:
    """Run one cube computation under the given options."""
    total_begin = time.perf_counter()
    points: List[LatticePoint] = (
        list(options.points)
        if options.points is not None
        else list(table.lattice.points())
    )
    engine = options.effective_engine
    if engine == "serial" or options.workers <= 1 or len(points) <= 1:
        return _serial_result(table, options, points, total_begin)

    lattice = table.lattice
    partition_begin = time.perf_counter()
    partitions: List[Partition] = partition_points(
        lattice,
        points,
        n_partitions=min(
            len(points), options.workers * PARTITIONS_PER_WORKER
        ),
        strategy=options.partition_strategy,
    )
    cut_edges = partition_cut_edges(
        lattice, [list(part.points) for part in partitions]
    )
    partition_seconds = time.perf_counter() - partition_begin

    max_workers = min(options.workers, len(partitions))
    outcomes: List[PartitionOutcome] = []
    pool = _make_pool(engine, max_workers)
    try:
        futures = []
        for part in partitions:
            futures.append(
                pool.submit(
                    _run_partition,
                    table,
                    part.index,
                    options.algorithm,
                    options.oracle,
                    options.memory_entries,
                    options.min_support,
                    part.points,
                    time.monotonic(),
                )
            )
        outcomes = [future.result() for future in futures]
    finally:
        pool.shutdown(wait=True)

    merge_begin = time.perf_counter()
    cuboids = merge_cuboids(outcomes)
    merge_seconds = time.perf_counter() - merge_begin
    total_wall = time.perf_counter() - total_begin
    cost = merge_costs(outcomes, merge_seconds, total_wall)

    by_index = {outcome.index: outcome for outcome in outcomes}
    stats = tuple(
        PartitionStats(
            index=part.index,
            points=len(part.points),
            weight=part.weight,
            worker=by_index[part.index].worker,
            queue_wait_seconds=by_index[part.index].queue_wait_seconds,
            wall_seconds=by_index[part.index].wall_seconds,
            simulated_seconds=by_index[part.index].simulated_seconds,
        )
        for part in partitions
    )
    metrics = EngineMetrics(
        engine=engine,
        strategy=options.partition_strategy,
        requested_workers=options.workers,
        workers_used=len({outcome.worker for outcome in outcomes}),
        partitions=stats,
        cut_edges=cut_edges,
        partition_seconds=partition_seconds,
        merge_seconds=merge_seconds,
        total_wall_seconds=total_wall,
    )
    return CubeResult(
        lattice=lattice,
        cuboids=cuboids,
        algorithm=merged_algorithm_name(outcomes),
        cost=cost,
        passes=merge_passes(outcomes),
        aggregate=table.aggregate.function.upper(),
        metrics=metrics,
    )
